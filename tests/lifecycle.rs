//! Whole-system lifecycle: a durable ArchIS lives through three sessions —
//! load + archive, compress + more updates, reopen — and must answer every
//! benchmark query exactly like an in-memory twin that replayed the same
//! stream in one go.

use archis::{queries, ArchConfig, ArchIS, Change, RelationSpec};
use dataset::{DatasetConfig, Op};
use relstore::Value;
use temporal::Date;

fn to_change(op: &Op) -> Change {
    match op {
        Op::Hire {
            id,
            name,
            salary,
            title,
            deptno,
            at,
        } => Change::Insert {
            relation: "employee".into(),
            key: *id,
            values: vec![
                ("name".into(), Value::Str(name.clone())),
                ("salary".into(), Value::Int(*salary)),
                ("title".into(), Value::Str(title.clone())),
                ("deptno".into(), Value::Str(deptno.clone())),
            ],
            at: *at,
        },
        Op::Raise { id, salary, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("salary".into(), Value::Int(*salary))],
            at: *at,
        },
        Op::TitleChange { id, title, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("title".into(), Value::Str(title.clone()))],
            at: *at,
        },
        Op::DeptChange { id, deptno, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("deptno".into(), Value::Str(deptno.clone()))],
            at: *at,
        },
        Op::Leave { id, at } => Change::Delete {
            relation: "employee".into(),
            key: *id,
            at: *at,
        },
    }
}

#[test]
fn durable_segmented_compressed_lifecycle_matches_in_memory_twin() {
    let ops = dataset::generate(&DatasetConfig {
        employees: 25,
        years: 12,
        seed: 1234,
        ..Default::default()
    });
    let (a_end, b_end) = (ops.len() / 3, 2 * ops.len() / 3);
    let path = std::env::temp_dir().join(format!("archis-lifecycle-{}.db", std::process::id()));
    std::fs::remove_file(&path).ok();
    let cfg = || ArchConfig::default().with_umin(0.4);

    // Session 1: first third, usefulness-driven archival, checkpoint.
    {
        let mut db = ArchIS::open_file(&path, cfg()).unwrap();
        db.create_relation(RelationSpec::employee()).unwrap();
        for op in &ops[..a_end] {
            db.apply(&to_change(op)).unwrap();
            db.maybe_archive("employee", op.at()).unwrap();
        }
        db.checkpoint().unwrap();
    }
    // Session 2: compress what is archived, then keep living.
    {
        let mut db = ArchIS::open_file(&path, cfg()).unwrap();
        db.compress_archived("employee").unwrap();
        for op in &ops[a_end..b_end] {
            db.apply(&to_change(op)).unwrap();
            db.maybe_archive("employee", op.at()).unwrap();
        }
        db.checkpoint().unwrap();
    }
    // Session 3: final third, compress again (incremental), checkpoint.
    {
        let mut db = ArchIS::open_file(&path, cfg()).unwrap();
        for op in &ops[b_end..] {
            db.apply(&to_change(op)).unwrap();
            db.maybe_archive("employee", op.at()).unwrap();
        }
        db.force_archive("employee", ops.last().unwrap().at())
            .unwrap();
        db.compress_archived("employee").unwrap();
        db.checkpoint().unwrap();
    }

    // The in-memory twin: one uninterrupted replay, never archived.
    let mut twin = ArchIS::new(ArchConfig::default());
    twin.create_relation(RelationSpec::employee()).unwrap();
    for op in &ops {
        twin.apply(&to_change(op)).unwrap();
    }

    let db = ArchIS::open_file(&path, cfg()).unwrap();
    // The published views are byte-identical.
    assert_eq!(
        db.publish("employee").unwrap().to_xml(),
        twin.publish("employee").unwrap().to_xml(),
        "published H-documents diverged"
    );
    // Scalar benchmark queries agree (through translation on both sides).
    let d = Date::from_ymd(1990, 7, 1).unwrap();
    let w2 = Date::from_ymd(1991, 7, 1).unwrap();
    for q in [
        queries::q2_xquery(d),
        queries::q4_xquery(),
        queries::q5_xquery(45_000, d, w2),
    ] {
        let lhs = db.query(&q).unwrap().scalar_rows().unwrap();
        let rhs = twin.query(&q).unwrap().scalar_rows().unwrap();
        assert_eq!(lhs, rhs, "query {q}");
    }
    // The compressed store answers point lookups across generations.
    let store = db.compressed_store("employee").unwrap();
    let probe_rows = db.database().table("employee_id").unwrap().scan().unwrap();
    let probe = probe_rows
        .iter()
        .find(|r| r[1].as_date().unwrap() <= d && r[2].as_date().unwrap() >= d)
        .and_then(|r| r[0].as_int())
        .expect("someone employed");
    let via_store = queries::q1_compressed(&db, store, probe, d).unwrap();
    let via_twin = twin.query(&queries::q1_xquery(probe, d)).unwrap();
    let twin_xml = via_twin.xml_fragments().join("");
    match via_store {
        Some(s) => assert!(twin_xml.contains(&format!(">{s}<")), "{s} vs {twin_xml}"),
        None => assert!(twin_xml.is_empty(), "twin found a salary the store missed"),
    }
    std::fs::remove_file(&path).ok();
}
