//! Transaction-abort poisoning (`Database::abort`): after a mutation
//! fails inside a WAL bracket, the handle refuses to commit or checkpoint
//! — a later commit would seal the half-applied state — and recovery is
//! reopening, which replays the WAL to the last commit boundary.

use archis::{ArchConfig, ArchIS, Change, RelationSpec};
use relstore::Value;
use temporal::Date;

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

fn hire(id: i64, name: &str, at: &str) -> Change {
    Change::Insert {
        relation: "employee".into(),
        key: id,
        values: vec![
            ("name".into(), Value::Str(name.into())),
            ("salary".into(), Value::Int(50_000)),
            ("title".into(), Value::Str("Engineer".into())),
            ("deptno".into(), Value::Str("d001".into())),
        ],
        at: d(at),
    }
}

#[test]
fn aborted_handle_refuses_commit_and_recovers_on_reopen() {
    let dir = std::env::temp_dir().join(format!("archis-abort-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("abort.db");
    let wal = dir.join("abort.db.wal");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);

    {
        let mut a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        a.create_relation(RelationSpec::employee()).unwrap();
        a.apply(&hire(1, "Alice", "1995-01-01")).unwrap();

        // Poison the handle as ArchIS::txn_abort does after a failed
        // mutation. Everything buffered after the last commit is suspect.
        a.database().abort();
        assert!(a.database().is_aborted());
        let commit = a.database().commit();
        assert!(
            commit.is_err(),
            "commit on an aborted handle must refuse, got {commit:?}"
        );
        assert!(
            a.database().checkpoint().is_err(),
            "checkpoint on an aborted handle must refuse"
        );
        // Further applies fail at their txn_commit, not silently succeed.
        assert!(a.apply(&hire(2, "Bob", "1995-02-01")).is_err());
    }

    // Reopen: WAL replay lands on the last commit boundary — Alice's hire
    // is durable, nothing after the abort leaked in.
    let a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
    assert!(!a.database().is_aborted(), "a fresh handle is not poisoned");
    let rows = a.execute_sql("SELECT name FROM employee").unwrap().rows;
    assert_eq!(rows.len(), 1, "exactly the committed hire survives");
    assert_eq!(
        rows[0][0],
        sqlxml::engine::SqlValue::Rel(Value::Str("Alice".into()))
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn abort_is_a_noop_without_a_wal_bracket() {
    // In-memory instances apply writes in place: there is no bracket to
    // tear, so abort must not poison them.
    let mut a = ArchIS::with_defaults();
    a.create_relation(RelationSpec::employee()).unwrap();
    a.apply(&hire(1, "Alice", "1995-01-01")).unwrap();
    a.database().abort();
    assert!(!a.database().is_aborted());
    a.apply(&hire(2, "Bob", "1995-02-01")).unwrap();
    let rows = a.execute_sql("SELECT name FROM employee").unwrap().rows;
    assert_eq!(rows.len(), 2);
}
