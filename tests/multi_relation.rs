//! Multi-relation histories: the paper's employee + dept pair, archived
//! side by side, queried through both paths (including the paper's
//! QUERY 2, the snapshot over depts.xml).

use archis::{ArchConfig, ArchIS, RelationSpec};
use relstore::Value;
use temporal::Date;
use xquery::{Engine, MapResolver};

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

/// Build the paper's Table 2 dept history (keys surrogated to ints).
fn setup() -> ArchIS {
    let mut a = ArchIS::new(ArchConfig::default());
    a.create_relation(RelationSpec::employee()).unwrap();
    a.create_relation(RelationSpec::dept()).unwrap();
    // d01 QA mgr 2501, 1994-01-01 .. 1998-12-31 (closed by delete).
    a.insert(
        "dept",
        1,
        vec![
            ("deptno".into(), Value::Str("d01".into())),
            ("deptname".into(), Value::Str("QA".into())),
            ("mgrno".into(), Value::Int(2501)),
        ],
        d("1994-01-01"),
    )
    .unwrap();
    // d02 RD mgr 3402 then 1009.
    a.insert(
        "dept",
        2,
        vec![
            ("deptno".into(), Value::Str("d02".into())),
            ("deptname".into(), Value::Str("RD".into())),
            ("mgrno".into(), Value::Int(3402)),
        ],
        d("1992-01-01"),
    )
    .unwrap();
    a.update(
        "dept",
        2,
        vec![("mgrno".into(), Value::Int(1009))],
        d("1997-01-01"),
    )
    .unwrap();
    // d03 Sales mgr 4748, later dissolved.
    a.insert(
        "dept",
        3,
        vec![
            ("deptno".into(), Value::Str("d03".into())),
            ("deptname".into(), Value::Str("Sales".into())),
            ("mgrno".into(), Value::Int(4748)),
        ],
        d("1993-01-01"),
    )
    .unwrap();
    a.delete("dept", 3, d("1998-01-01")).unwrap();
    // One employee so the employee H-tables are non-trivial too.
    a.insert(
        "employee",
        1001,
        vec![
            ("name".into(), Value::Str("Bob".into())),
            ("salary".into(), Value::Int(60000)),
            ("title".into(), Value::Str("Engineer".into())),
            ("deptno".into(), Value::Str("d01".into())),
        ],
        d("1995-01-01"),
    )
    .unwrap();
    a
}

#[test]
fn paper_query2_translates_and_matches_native() {
    let a = setup();
    // The paper's QUERY 2: managers on 1994-05-06.
    let q = r#"for $m in doc("depts.xml")/depts/dept/mgrno
                   [tstart(.) <= xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]
               return $m"#;
    let sql = a.translate(q).unwrap();
    assert!(sql.contains("dept_mgrno"), "{sql}");
    let via_sql = a.query(q).unwrap().xml_fragments().join("\n");
    // Managers on that date: 2501 (d01), 3402 (d02), 4748 (d03).
    for m in ["2501", "3402", "4748"] {
        assert!(via_sql.contains(m), "missing manager {m} in {via_sql}");
    }
    assert!(!via_sql.contains("1009"), "1009 starts 1997: {via_sql}");

    let mut resolver = MapResolver::new();
    resolver.insert("depts.xml", a.publish("dept").unwrap());
    let engine = Engine::new(resolver);
    let native = engine.eval_to_xml(q).unwrap();
    assert_eq!(native, via_sql);
}

#[test]
fn relations_catalog_tracks_both() {
    let a = setup();
    let rels = a.database().table("relations").unwrap().scan().unwrap();
    assert_eq!(rels.len(), 2);
    let names: Vec<String> = rels.iter().map(|r| r[0].to_string()).collect();
    assert!(names.contains(&"employee".to_string()));
    assert!(names.contains(&"dept".to_string()));
}

#[test]
fn dept_history_publication_matches_table2() {
    let a = setup();
    let doc = a.publish("dept").unwrap();
    assert_eq!(doc.name, "depts");
    let d02 = doc
        .children_named("dept")
        .find(|e| e.first_child("deptno").unwrap().text_content() == "d02")
        .unwrap();
    let mgrs: Vec<String> = d02
        .children_named("mgrno")
        .map(|e| e.text_content())
        .collect();
    assert_eq!(mgrs, vec!["3402".to_string(), "1009".to_string()]);
    let first = d02.children_named("mgrno").next().unwrap();
    assert_eq!(first.attr("tend"), Some("1996-12-31"));
    // The dissolved dept's periods are all closed.
    let d03 = doc
        .children_named("dept")
        .find(|e| e.first_child("deptno").unwrap().text_content() == "d03")
        .unwrap();
    assert_eq!(d03.attr("tend"), Some("1997-12-31"));
}

#[test]
fn cross_relation_join_runs_natively() {
    // The paper's QUERY 4 (temporal join across documents) on published
    // views — the shape the translator does not cover runs natively.
    let a = setup();
    let mut resolver = MapResolver::new();
    resolver.insert("depts.xml", a.publish("dept").unwrap());
    resolver.insert("employees.xml", a.publish("employee").unwrap());
    let engine = Engine::new(resolver);
    let out = engine
        .eval_to_xml(
            r#"element manages {
                for $dep in doc("depts.xml")/depts/dept[deptno = "d01"]
                for $m in $dep/mgrno
                return element manage {
                    string($m),
                    for $e in doc("employees.xml")/employees/employee
                    where $e/deptno = "d01" and not(empty(overlapinterval($e, $m)))
                    return ($e/name, overlapinterval($e, $m)) } }"#,
        )
        .unwrap();
    assert!(out.contains("2501"), "{out}");
    assert!(out.contains("Bob"), "{out}");
    assert!(out.contains("interval"), "{out}");
}

#[test]
fn per_relation_archival_is_independent() {
    let a = setup();
    a.force_archive("dept", d("1999-12-31")).unwrap();
    // dept attributes got archived; employee ones did not.
    let dept_segs = a.segments_of("dept", "mgrno").unwrap();
    assert_eq!(dept_segs.len(), 2, "one archived + live");
    let emp_segs = a.segments_of("employee", "salary").unwrap();
    assert_eq!(emp_segs.len(), 1, "live only");
    // Queries still correct after dept archival.
    let q = r#"for $m in doc("depts.xml")/depts/dept/mgrno
                   [tstart(.) <= xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]
               return $m"#;
    let sql = a.translate(q).unwrap();
    assert!(
        sql.contains(".segno = 1"),
        "snapshot restricted to segment 1: {sql}"
    );
    let out = a.query(q).unwrap().xml_fragments().join("\n");
    assert!(out.contains("2501") && out.contains("3402") && out.contains("4748"));
}
