//! Property test (ISSUE satellite 2): random insert / update / delete /
//! archive interleavings, crashed at *every* fsync boundary in turn, must
//! recover to a state byte-identical to one of the shadow run's commit
//! snapshots — WAL replay equals the in-memory model, never a hybrid.
//!
//! The shadow model is the same workload executed on fault-free media with
//! a full table dump captured after every transaction; a crash at fsync
//! `n` (group commit batch 1 ⇒ one fsync per commit) must land exactly on
//! one of those dumps, or on the empty pre-creation store.

use archis::{ArchConfig, ArchIS, RelationSpec};
use proptest::prelude::*;
use relstore::failpoint::{FailLog, FailPager, Failpoints};
use relstore::pager::MemPager;
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use temporal::Date;

/// Canonical whole-store image: every table, rows rendered and sorted.
type Dump = BTreeMap<String, Vec<String>>;

fn dump(db: &Database) -> Dump {
    let mut out = Dump::new();
    for name in db.table_names() {
        let mut rows: Vec<String> = db
            .table(&name)
            .expect("cataloged table opens")
            .scan()
            .expect("scan succeeds")
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        rows.sort();
        out.insert(name, rows);
    }
    out
}

struct Media {
    fp: Arc<Failpoints>,
    base: Arc<FailPager>,
    log: Arc<FailLog>,
}

fn media(seed: u64) -> Media {
    let fp = Failpoints::new(seed);
    let base = Arc::new(FailPager::new(fp.clone(), Arc::new(MemPager::new())));
    let log = Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new())));
    Media { fp, base, log }
}

fn archis_on(m: &Media) -> archis::Result<ArchIS> {
    let pager = Arc::new(WalPager::open(
        m.base.clone(),
        m.log.clone(),
        WalConfig::with_group_commit(1),
    )?);
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 256)))?;
    ArchIS::open_with_database(db, ArchConfig::default())
}

/// Deterministically replay the raw op stream. Kinds: 0/1 = upsert (insert
/// if the key is new, salary update otherwise), 2 = delete if alive,
/// 3 = archival pass. Dates advance five days per op so periods coalesce.
/// When `snapshots` is given, a full dump is pushed after every op — those
/// are the only states a crash is ever allowed to recover to.
fn workload(
    m: &Media,
    raw: &[(u8, i64)],
    mut snapshots: Option<&mut Vec<Dump>>,
) -> archis::Result<()> {
    let base_day = Date::parse("1990-01-01").unwrap().day_number();
    let mut a = archis_on(m)?;
    a.create_relation(RelationSpec::employee())?;
    if let Some(s) = snapshots.as_deref_mut() {
        s.push(dump(a.database()));
    }
    let mut alive = BTreeSet::new();
    for (i, (kind, key)) in raw.iter().enumerate() {
        let at = Date::from_day_number(base_day + i as i32 * 5);
        match kind {
            0 | 1 => {
                if alive.insert(*key) {
                    a.insert(
                        "employee",
                        *key,
                        vec![
                            ("name".into(), Value::Str(format!("e{key}"))),
                            ("salary".into(), Value::Int(1000 + i as i64)),
                            ("title".into(), Value::Str("Engineer".into())),
                            ("deptno".into(), Value::Str("d001".into())),
                        ],
                        at,
                    )?;
                } else {
                    a.update(
                        "employee",
                        *key,
                        vec![("salary".into(), Value::Int(1000 + i as i64))],
                        at,
                    )?;
                }
            }
            2 => {
                if alive.remove(key) {
                    a.delete("employee", *key, at)?;
                }
            }
            _ => {
                a.maybe_archive("employee", at)?;
            }
        }
        if let Some(s) = snapshots.as_deref_mut() {
            s.push(dump(a.database()));
        }
    }
    let end = Date::from_day_number(base_day + raw.len() as i32 * 5 + 30);
    a.force_archive("employee", end)?;
    if let Some(s) = snapshots.as_deref_mut() {
        s.push(dump(a.database()));
    }
    a.checkpoint()?;
    if let Some(s) = snapshots {
        s.push(dump(a.database()));
    }
    Ok(())
}

/// Reopen crashed media at the raw Database level and dump it.
fn recovered_dump(m: &Media) -> Dump {
    let pager = Arc::new(
        WalPager::open(
            m.base.clone(),
            m.log.clone(),
            WalConfig::with_group_commit(1),
        )
        .expect("recovery open"),
    );
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 256))).expect("catalog reload");
    dump(&db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn crash_at_every_fsync_recovers_a_shadow_snapshot(
        raw in proptest::collection::vec((0u8..4, 0i64..6), 1..20)
    ) {
        // Shadow run: fault-free (disarmed failpoints), collect the legal
        // post-commit states and the total fsync count.
        let shadow = media(0);
        let mut snapshots: Vec<Dump> = vec![Dump::new()]; // pre-creation store
        workload(&shadow, &raw, Some(&mut snapshots)).expect("shadow run is fault-free");
        let total_syncs = shadow.fp.syncs();
        prop_assert!(total_syncs > 0);

        for n in 1..=total_syncs {
            let m = media(n);
            m.fp.crash_after_syncs(n);
            match workload(&m, &raw, None) {
                Ok(()) => {} // the n-th sync was the workload's last
                Err(_) => prop_assert!(m.fp.crashed(), "sync {}: non-injected failure", n),
            }
            m.fp.revive();
            let got = recovered_dump(&m);
            prop_assert!(
                snapshots.contains(&got),
                "crash at fsync {}/{} recovered a state outside the shadow model:\n{:#?}",
                n, total_syncs, got
            );
        }
    }
}
