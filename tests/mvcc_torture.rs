//! MVCC concurrency torture (ISSUE 7 tentpole): snapshot readers against
//! a committing writer, deterministically.
//!
//! The invariant under test is the whole point of the snapshot layer:
//! a reader's view at snapshot LSN `S` must be **byte-identical to a
//! serial execution stopped at `S`** — never a torn page, never an
//! uncommitted row, never a hybrid of two commits. The writer itself is
//! the serial oracle: after every operation it records a canonical dump
//! of the live store keyed by the WAL commit LSN, and every concurrent
//! reader checks its frozen dump against the recorded one for its LSN.
//!
//! Three layers of torture:
//!  * one long run (≥ 1000 committed batches) with several readers,
//!  * a 200-seed sweep of shorter runs (`--features failpoints` builds,
//!    where the CI gate runs it),
//!  * crash-at-every-fsync while readers are in flight: recovery must
//!    land on a committed prefix that covers every snapshot the store
//!    ever returned (pins force durability, so a returned snapshot can
//!    never be lost to a crash).
//!
//! Plus the PR-5 degradation regression: a quarantined compressed block
//! read while a snapshot is open must not leak the live view's data loss
//! into the snapshot's pristine pinned bytes.

use archis::{ArchConfig, ArchIS, RelationSpec};
use relstore::pager::MemPager;
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use temporal::Date;

/// Canonical whole-store image: every table, rows rendered and sorted,
/// folded into one string (the "bytes" of byte-identical). `None` when
/// the media died underneath the scan (crash torture only).
fn try_dump(db: &Database) -> Option<String> {
    let mut out = String::new();
    for name in db.table_names() {
        let mut rows: Vec<String> = db
            .table(&name)
            .ok()?
            .scan()
            .ok()?
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        rows.sort();
        out.push_str(&name);
        out.push('\n');
        for r in rows {
            out.push_str(&r);
            out.push('\n');
        }
    }
    Some(out)
}

fn dump(db: &Database) -> String {
    try_dump(db).expect("dump on good media")
}

/// FNV-1a over the dump: cheap to store once per commit LSN.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn archis_mem(group_commit: usize) -> ArchIS {
    let pager = Arc::new(
        WalPager::open(
            Arc::new(MemPager::new()),
            Arc::new(MemLog::new()),
            WalConfig::with_group_commit(group_commit),
        )
        .unwrap(),
    );
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 512))).unwrap();
    ArchIS::open_with_database(db, ArchConfig::default()).unwrap()
}

/// Deterministic op stream: multiplicative LCG, kinds weighted toward
/// upserts so the history keeps growing.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// One writer op against the live store. Kinds: 0..=3 upsert, 4 delete,
/// 5 archival pass. Dates advance five days per op so periods coalesce.
fn writer_op(
    a: &ArchIS,
    alive: &mut std::collections::BTreeSet<i64>,
    i: usize,
    kind: u64,
    key: i64,
) -> archis::Result<()> {
    let base_day = Date::parse("1990-01-01").unwrap().day_number();
    let at = Date::from_day_number(base_day + i as i32 * 5);
    match kind {
        0..=3 => {
            if alive.insert(key) {
                a.insert(
                    "employee",
                    key,
                    vec![
                        ("name".into(), Value::Str(format!("e{key}"))),
                        ("salary".into(), Value::Int(1000 + i as i64)),
                        ("title".into(), Value::Str("Engineer".into())),
                        ("deptno".into(), Value::Str("d001".into())),
                    ],
                    at,
                )?;
            } else {
                a.update(
                    "employee",
                    key,
                    vec![("salary".into(), Value::Int(1000 + i as i64))],
                    at,
                )?;
            }
        }
        4 => {
            if alive.remove(&key) {
                a.delete("employee", key, at)?;
            }
        }
        _ => {
            a.maybe_archive("employee", at)?;
        }
    }
    Ok(())
}

/// Run `ops` writer operations with `readers` concurrent snapshot readers
/// and fail on the first divergence. Returns how many snapshot-vs-serial
/// comparisons actually happened.
fn torture(seed: u64, ops: usize, readers: usize, keys: i64) -> u64 {
    let mut a = archis_mem(1);
    a.create_relation(RelationSpec::employee()).unwrap();

    // Serial oracle: commit LSN -> hash of the canonical dump at that LSN.
    // Recorded by the writer after every op, for every LSN the op sealed
    // (an `ArchIS::checkpoint` seals twice; both land on the same state).
    let recorded: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());
    let done = AtomicBool::new(false);
    let compared = AtomicU64::new(0);
    {
        let mut rec = recorded.lock().unwrap();
        let h = fnv(&dump(a.database()));
        for l in 0..=a.database().commit_lsn() {
            rec.insert(l, h);
        }
    }

    let a = &a;
    let recorded = &recorded;
    let done = &done;
    let compared = &compared;
    std::thread::scope(|s| {
        for r in 0..readers {
            s.spawn(move || {
                let mut rng = Lcg(seed ^ (0x9e37 + r as u64));
                while !done.load(Ordering::Acquire) {
                    let snap = a.begin_snapshot().expect("pin never fails on good media");
                    let lsn = snap.commit_lsn();
                    let got = fnv(&dump(snap.database()));
                    // The writer records an op's LSNs after the op returns;
                    // a reader can pin the newest commit first. Spin until
                    // the oracle catches up, but give up once the writer is
                    // finished and the entry still hasn't appeared — that
                    // means the writer panicked mid-run, and spinning
                    // forever would turn its failure into a hang.
                    let want = loop {
                        if let Some(&w) = recorded.lock().unwrap().get(&lsn) {
                            break w;
                        }
                        if done.load(Ordering::Acquire) {
                            match recorded.lock().unwrap().get(&lsn) {
                                Some(&w) => break w,
                                None => return,
                            }
                        }
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    };
                    assert_eq!(
                        got,
                        want,
                        "seed {seed} reader {r}: snapshot at LSN {lsn} diverged from \
                         serial execution at that LSN:\n{}",
                        dump(snap.database())
                    );
                    compared.fetch_add(1, Ordering::Relaxed);
                    // Vary pin lifetimes so unpin-time pruning gets hit at
                    // many interleavings, and back off briefly — every
                    // snapshot page read shares the WAL state mutex with
                    // the writer, so an unthrottled pin/dump loop would
                    // starve the very commits it is checking against.
                    let pause = 20 + rng.next() % 100;
                    std::thread::sleep(std::time::Duration::from_micros(pause));
                    drop(snap);
                }
            });
        }

        // Set `done` even if the writer panics below — otherwise the
        // readers spin forever and a writer failure reads as a hang.
        struct DoneGuard<'a>(&'a AtomicBool);
        impl Drop for DoneGuard<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }
        let _guard = DoneGuard(done);

        let mut rng = Lcg(seed);
        let mut alive = std::collections::BTreeSet::new();
        let mut prev = a.database().commit_lsn();
        for i in 0..ops {
            let kind = rng.next() % 6;
            let key = (rng.next() % keys as u64) as i64;
            writer_op(a, &mut alive, i, kind, key).unwrap();
            if i == ops / 2 {
                // One mid-run checkpoint: folds the WAL into the base file
                // while pins are live (the checkpoint's version-capture
                // path).
                a.checkpoint().unwrap();
            }
            let cur = a.database().commit_lsn();
            if cur > prev {
                let h = fnv(&dump(a.database()));
                let mut rec = recorded.lock().unwrap();
                for l in prev + 1..=cur {
                    rec.insert(l, h);
                }
                prev = cur;
            }
        }
    });
    compared.load(Ordering::Relaxed)
}

/// Tentpole acceptance: ≥ 1000 committed batches with several concurrent
/// snapshot readers, zero divergences from serial re-execution.
#[test]
fn snapshot_readers_match_serial_execution_over_1000_batches() {
    let compared = torture(42, 1000, 3, 8);
    assert!(
        compared >= 30,
        "only {compared} snapshot comparisons — readers never overlapped the writer"
    );
}

/// CI sweep gate: 200 deterministic seeds of shorter runs. Compiled into
/// the failpoints configuration so plain `cargo test` stays fast; the
/// ordered gate in scripts/ci.sh runs it explicitly.
#[test]
#[cfg(feature = "failpoints")]
fn snapshot_sweep_200_seeds() {
    for seed in 0..200 {
        let compared = torture(seed, 25, 2, 5);
        assert!(compared > 0, "seed {seed}: no comparison ever completed");
    }
}

/// Q1-style temporal queries on a frozen snapshot while ingest proceeds:
/// the same XQuery, translated once per view, answers from the pinned
/// commit on the snapshot and from the newest commit on the live store.
#[test]
fn temporal_query_on_snapshot_ignores_concurrent_ingest() {
    let mut a = archis_mem(1);
    a.create_relation(RelationSpec::employee()).unwrap();
    let base_day = Date::parse("1992-01-01").unwrap().day_number();
    a.insert(
        "employee",
        1,
        vec![
            ("name".into(), Value::Str("alice".into())),
            ("salary".into(), Value::Int(5000)),
            ("title".into(), Value::Str("Engineer".into())),
            ("deptno".into(), Value::Str("d001".into())),
        ],
        Date::from_day_number(base_day),
    )
    .unwrap();

    let snap = a.begin_snapshot().unwrap();

    // Concurrent "ingest": a raise lands after the pin.
    a.update(
        "employee",
        1,
        vec![("salary".into(), Value::Int(9000))],
        Date::from_day_number(base_day + 10),
    )
    .unwrap();

    let q = archis::queries::q1_xquery(1, Date::from_day_number(base_day + 20));
    let live = a.query(&q).unwrap();
    let frozen = snap.query(&q).unwrap();
    let render = |r: &sqlxml::QueryResult| {
        r.rows
            .iter()
            .map(|row| format!("{row:?}"))
            .collect::<Vec<_>>()
            .join("|")
    };
    assert!(render(&live).contains("9000"), "{:?}", live.rows);
    assert!(render(&frozen).contains("5000"), "{:?}", frozen.rows);
    assert!(!render(&frozen).contains("9000"), "{:?}", frozen.rows);
}

// ---------------------------------------------------------------------------
// Crash torture: fsync-by-fsync, with readers in flight.
// ---------------------------------------------------------------------------

#[cfg(feature = "failpoints")]
mod crash {
    use super::*;
    use relstore::failpoint::{FailLog, FailPager, Failpoints};

    struct Media {
        fp: Arc<Failpoints>,
        base: Arc<FailPager>,
        log: Arc<FailLog>,
    }

    fn media(seed: u64) -> Media {
        let fp = Failpoints::new(seed);
        let base = Arc::new(FailPager::new(fp.clone(), Arc::new(MemPager::new())));
        let log = Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new())));
        Media { fp, base, log }
    }

    fn archis_on(m: &Media, group_commit: usize) -> archis::Result<ArchIS> {
        let pager = Arc::new(WalPager::open(
            m.base.clone(),
            m.log.clone(),
            WalConfig::with_group_commit(group_commit),
        )?);
        let db = Database::open_pool(Arc::new(BufferPool::new(pager, 256)))?;
        ArchIS::open_with_database(db, ArchConfig::default())
    }

    /// Fault-free serial run of `ops` seeded operations; records the dump
    /// at every commit LSN. This is the full oracle: any crashed
    /// concurrent run of the same seed executes a prefix of exactly this
    /// LSN/state sequence (readers never change LSN assignment — pins
    /// only force flushes).
    fn shadow(seed: u64, ops: usize, group_commit: usize) -> (BTreeMap<u64, String>, u64) {
        let m = media(0);
        let mut a = archis_on(&m, group_commit).unwrap();
        let mut states = BTreeMap::new();
        // LSN 0 is the fresh, pre-creation store (what recovery yields
        // when the crash beat the first commit).
        states.insert(0u64, String::new());
        a.create_relation(RelationSpec::employee()).unwrap();
        let mut prev = 0u64;
        let mut record = |a: &ArchIS, prev: &mut u64| {
            let cur = a.database().commit_lsn();
            if cur > *prev {
                let d = dump(a.database());
                for l in *prev + 1..=cur {
                    states.insert(l, d.clone());
                }
                *prev = cur;
            }
        };
        record(&a, &mut prev);
        let mut rng = Lcg(seed);
        let mut alive = std::collections::BTreeSet::new();
        for i in 0..ops {
            let kind = rng.next() % 6;
            let key = (rng.next() % 5) as i64;
            writer_op(&a, &mut alive, i, kind, key).unwrap();
            record(&a, &mut prev);
        }
        // Flush the group-commit remainder so the sync count covers the
        // whole workload.
        a.database().pool().pager().sync().unwrap();
        (states, m.fp.syncs())
    }

    /// Reopen crashed media and dump the recovered store.
    fn recovered_dump(m: &Media, group_commit: usize) -> String {
        let pager = Arc::new(
            WalPager::open(
                m.base.clone(),
                m.log.clone(),
                WalConfig::with_group_commit(group_commit),
            )
            .expect("recovery open"),
        );
        let db =
            Database::open_pool(Arc::new(BufferPool::new(pager, 256))).expect("catalog reload");
        dump(&db)
    }

    /// Crash at every fsync boundary while snapshot readers run. Recovery
    /// must land on a state the serial oracle produced, at an LSN at
    /// least as new as every snapshot the store returned before the crash
    /// — returned pins are durable by construction, so no crash may
    /// "unhappen" them.
    #[test]
    fn crash_at_every_fsync_recovers_prefix_covering_returned_snapshots() {
        const SEED: u64 = 7;
        const OPS: usize = 12;
        const GROUP: usize = 2; // >1 so reader pins force real flushes
        let (states, total_syncs) = shadow(SEED, OPS, GROUP);
        assert!(total_syncs > 0);

        for n in 1..=total_syncs {
            let m = media(n);
            m.fp.crash_after_syncs(n);
            // Highest snapshot LSN any reader was ever handed; 0 = none.
            let max_returned = AtomicU64::new(0);
            let done = AtomicBool::new(false);

            let setup = (|| {
                let mut a = archis_on(&m, GROUP)?;
                a.create_relation(RelationSpec::employee())?;
                Ok::<_, archis::ArchError>(a)
            })();

            if let Ok(a) = setup {
                let a = &a;
                let max_returned = &max_returned;
                let done = &done;
                let states = &states;
                std::thread::scope(|s| {
                    for _ in 0..2 {
                        s.spawn(move || {
                            while !done.load(Ordering::Acquire) {
                                // A successful pin was forced durable, so it
                                // counts as "returned" even if the media dies
                                // before the dump below finishes.
                                let snap = match a.begin_snapshot() {
                                    Ok(s) => s,
                                    Err(_) => break, // media crashed mid-pin
                                };
                                let lsn = snap.commit_lsn();
                                max_returned.fetch_max(lsn, Ordering::Relaxed);
                                let Some(d) = try_dump(snap.database()) else {
                                    break; // media crashed mid-read
                                };
                                assert_eq!(
                                    Some(&d),
                                    states.get(&lsn),
                                    "crash {n}: snapshot at LSN {lsn} diverged from the \
                                     serial oracle"
                                );
                            }
                        });
                    }

                    let mut rng = Lcg(SEED);
                    let mut alive = std::collections::BTreeSet::new();
                    for i in 0..OPS {
                        let kind = rng.next() % 6;
                        let key = (rng.next() % 5) as i64;
                        if writer_op(a, &mut alive, i, kind, key).is_err() {
                            break; // injected crash
                        }
                    }
                    let _ = a.database().pool().pager().sync();
                    done.store(true, Ordering::Release);
                });
            }

            m.fp.revive();
            let got = recovered_dump(&m, GROUP);
            let recovered_lsn = states
                .iter()
                .filter(|(_, v)| **v == got)
                .map(|(k, _)| *k)
                .max()
                .unwrap_or_else(|| {
                    panic!(
                        "crash at fsync {n}/{total_syncs}: recovered a state outside \
                         the serial oracle:\n{got}"
                    )
                });
            let max_ret = max_returned.load(Ordering::Relaxed);
            assert!(
                recovered_lsn >= max_ret,
                "crash at fsync {n}/{total_syncs}: recovery landed at LSN {recovered_lsn}, \
                 older than returned snapshot LSN {max_ret} — a durable pin was lost"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// PR-5 degradation regression: quarantined block vs. open snapshot.
// ---------------------------------------------------------------------------

/// A compressed block that rots *after* a snapshot was pinned: the live
/// query loses the block (quarantined, warned once), while the open
/// snapshot — whose pinned pages still hold the pristine bytes — keeps
/// answering in full. The empty quarantine result must not be cached into
/// the snapshot's read path.
#[test]
fn quarantined_block_read_during_open_snapshot_stays_pristine() {
    let mut a = archis_mem(1);
    a.create_relation(RelationSpec::employee()).unwrap();
    let base_day = Date::parse("1995-01-01").unwrap().day_number();
    for i in 0..40i64 {
        a.insert(
            "employee",
            i,
            vec![
                ("name".into(), Value::Str(format!("e{i}"))),
                ("salary".into(), Value::Int(1000 + i)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str("d001".into())),
            ],
            Date::from_day_number(base_day + i as i32),
        )
        .unwrap();
    }
    let end = Date::from_day_number(base_day + 400);
    a.force_archive("employee", end).unwrap();
    a.compress_archived("employee").unwrap();

    let sql = "SELECT id FROM employee_salary";
    let pristine = a.execute_sql(sql).unwrap().rows.len();
    assert!(pristine >= 40, "fixture must have archived salary history");

    // Pin the pristine state, then rot every blob part in the live store:
    // truncated BLOB bytes fail BlockZIP framing, which is the quarantine
    // path (not a fatal error). Evict the warm decompressed blocks so the
    // next live read really hits the damaged bytes.
    let snap = a.begin_snapshot().unwrap();
    let blob = a.database().table("employee_salary_blob").unwrap();
    let damaged = blob
        .update_where(|_| true, |row| row[6] = Value::Blob(vec![0xDE, 0xAD]))
        .unwrap();
    assert!(damaged > 0);
    a.database().commit().unwrap();
    a.compressed_store("employee").unwrap().clear_cache();

    // Live query: the blocks are gone — quarantined, counted, warned.
    let live = a.execute_sql(sql).unwrap().rows.len();
    assert!(
        live < pristine,
        "damaged blocks must drop rows from the live view"
    );
    assert!(a.quarantined_blocks() > 0);
    let warnings = a.take_corruption_warnings();
    assert!(
        warnings.iter().any(|w| w.contains("employee_salary_blob")),
        "{warnings:?}"
    );

    // Snapshot query: same store, same block cache, pinned pages — full
    // pristine answer (the quarantined empty result was *not* cached), and
    // no new quarantines from resolving it.
    let before = a.quarantined_blocks();
    let via_snap = snap.execute_sql(sql).unwrap().rows.len();
    assert_eq!(
        via_snap, pristine,
        "open snapshot must keep serving the pre-damage bytes"
    );
    assert_eq!(a.quarantined_blocks(), before);

    // The quarantine record survives for operators even though the
    // snapshot's pristine decode re-warmed the cache (blocks are
    // immutable, so cached content *is* the block's true content).
    assert!(a.quarantined_blocks() > 0);
}
