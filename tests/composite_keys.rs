//! Composite natural keys (paper §5.1): a surrogate integer key plus the
//! composite columns stored in the key table —
//! `lineitem_id(id, supplierno, itemno, tstart, tend)`.

use archis::{ArchConfig, ArchIS, RelationSpec};
use relstore::{DataType, Value};
use temporal::Date;

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

fn lineitem_spec() -> RelationSpec {
    RelationSpec::new("lineitem", "lineitems", "id", vec![("qty", DataType::Int)])
        .with_composite_key(vec![
            ("supplierno", DataType::Str),
            ("itemno", DataType::Int),
        ])
}

fn setup() -> ArchIS {
    let mut a = ArchIS::new(ArchConfig::default());
    a.create_relation(lineitem_spec()).unwrap();
    a.insert(
        "lineitem",
        1,
        vec![
            ("supplierno".into(), Value::Str("S01".into())),
            ("itemno".into(), Value::Int(42)),
            ("qty".into(), Value::Int(10)),
        ],
        d("1995-01-01"),
    )
    .unwrap();
    a.insert(
        "lineitem",
        2,
        vec![
            ("supplierno".into(), Value::Str("S02".into())),
            ("itemno".into(), Value::Int(42)),
            ("qty".into(), Value::Int(5)),
        ],
        d("1995-02-01"),
    )
    .unwrap();
    a.update(
        "lineitem",
        1,
        vec![("qty".into(), Value::Int(20))],
        d("1995-06-01"),
    )
    .unwrap();
    a
}

#[test]
fn key_table_carries_composite_columns() {
    let a = setup();
    let kt = a.database().table("lineitem_id").unwrap();
    assert_eq!(kt.schema().arity(), 5, "id + 2 composite + tstart + tend");
    let rows = kt.scan().unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][1], Value::Str("S01".into()));
    assert_eq!(rows[0][2], Value::Int(42));
}

#[test]
fn composite_columns_are_immutable() {
    let a = setup();
    let err = a
        .update(
            "lineitem",
            1,
            vec![("supplierno".into(), Value::Str("S09".into()))],
            d("1996-01-01"),
        )
        .unwrap_err();
    assert!(matches!(err, archis::ArchError::BadUpdate(_)), "{err}");
}

#[test]
fn publication_includes_composite_children() {
    let a = setup();
    let doc = a.publish("lineitem").unwrap();
    let li = doc.children_named("lineitem").next().unwrap();
    assert_eq!(li.first_child("supplierno").unwrap().text_content(), "S01");
    assert_eq!(li.first_child("itemno").unwrap().text_content(), "42");
    // Composite columns carry the tuple's full period.
    assert_eq!(
        li.first_child("supplierno").unwrap().interval(),
        li.interval(),
    );
    assert_eq!(
        li.children_named("qty").count(),
        2,
        "attribute history still grouped"
    );
}

#[test]
fn queries_filter_on_composite_columns() {
    let a = setup();
    // Through the translator (composite column resolves to the key table).
    let q = r#"for $q in doc("lineitems.xml")/lineitems/lineitem[supplierno = "S01"]/qty
               return $q"#;
    let sql = a.translate(q).unwrap();
    assert!(sql.contains("supplierno = 'S01'"), "{sql}");
    let xml = a.query(q).unwrap().xml_fragments().join("");
    assert!(xml.contains("10") && xml.contains("20"), "{xml}");
    assert!(!xml.contains(">5<"), "other supplier excluded: {xml}");
    // And natively over the published view.
    let mut resolver = xquery::MapResolver::new();
    resolver.insert("lineitems.xml", a.publish("lineitem").unwrap());
    let engine = xquery::Engine::new(resolver);
    let native = engine.eval_to_xml(q).unwrap().replace('\n', "");
    assert_eq!(native, xml);
}

#[test]
fn deletion_closes_composite_tuple() {
    let a = setup();
    a.delete("lineitem", 2, d("1996-01-01")).unwrap();
    let doc = a.publish("lineitem").unwrap();
    let closed = doc
        .children_named("lineitem")
        .find(|e| e.first_child("supplierno").unwrap().text_content() == "S02")
        .unwrap();
    assert_eq!(closed.attr("tend"), Some("1995-12-31"));
}
