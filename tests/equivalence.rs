//! Randomized translator equivalence: for random histories and random
//! instances of the paper's query families, the translated SQL/XML on the
//! H-tables must produce exactly what the native XQuery engine produces on
//! the published H-document. This is the property the whole ArchIS design
//! rests on (paper §5.3: the translation is semantics-preserving).

use archis::{ArchConfig, ArchIS, Change, RelationSpec};
use proptest::prelude::*;
use relstore::Value;
use temporal::Date;
use xquery::{Engine, MapResolver};

fn day(off: i32) -> Date {
    Date::from_ymd(1990, 1, 1).unwrap() + off
}

#[derive(Debug, Clone)]
enum Ev {
    Hire { id: i64, salary: i64, title: u8 },
    Raise { id: i64, salary: i64 },
    Retitle { id: i64, title: u8 },
    Fire { id: i64 },
    Archive,
}

fn titles(i: u8) -> String {
    ["Engineer", "Sr Engineer", "Manager"][i as usize % 3].to_string()
}

fn arb_events() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1i64..6, 30_000i64..100_000, 0u8..3)
                .prop_map(|(id, salary, title)| Ev::Hire { id, salary, title }),
            4 => (1i64..6, 30_000i64..100_000).prop_map(|(id, salary)| Ev::Raise { id, salary }),
            2 => (1i64..6, 0u8..3).prop_map(|(id, title)| Ev::Retitle { id, title }),
            1 => (1i64..6).prop_map(|id| Ev::Fire { id }),
            1 => Just(Ev::Archive),
        ],
        1..40,
    )
}

/// Replay events with one day between each; skip the impossible ones.
fn build(events: &[Ev]) -> ArchIS {
    let mut a = ArchIS::new(ArchConfig::default().with_umin(0.5));
    a.create_relation(RelationSpec::employee()).unwrap();
    let mut hired = std::collections::HashSet::new();
    for (i, ev) in events.iter().enumerate() {
        let at = day(i as i32);
        let r = match ev {
            Ev::Hire { id, salary, title } => {
                if hired.contains(id) {
                    continue;
                }
                hired.insert(*id);
                a.apply(&Change::Insert {
                    relation: "employee".into(),
                    key: *id,
                    values: vec![
                        ("name".into(), Value::Str(format!("emp{id}"))),
                        ("salary".into(), Value::Int(*salary)),
                        ("title".into(), Value::Str(titles(*title))),
                        ("deptno".into(), Value::Str(format!("d{:02}", id % 3))),
                    ],
                    at,
                })
            }
            Ev::Raise { id, salary } => {
                if !hired.contains(id) {
                    continue;
                }
                a.apply(&Change::Update {
                    relation: "employee".into(),
                    key: *id,
                    changes: vec![("salary".into(), Value::Int(*salary))],
                    at,
                })
            }
            Ev::Retitle { id, title } => {
                if !hired.contains(id) {
                    continue;
                }
                a.apply(&Change::Update {
                    relation: "employee".into(),
                    key: *id,
                    changes: vec![("title".into(), Value::Str(titles(*title)))],
                    at,
                })
            }
            Ev::Fire { id } => {
                if !hired.remove(id) {
                    continue;
                }
                a.apply(&Change::Delete {
                    relation: "employee".into(),
                    key: *id,
                    at,
                })
            }
            Ev::Archive => a.force_archive("employee", at).map(|_| ()),
        };
        r.expect("replay");
    }
    a
}

fn native_engine(a: &ArchIS) -> Engine {
    let mut resolver = MapResolver::new();
    resolver.insert("employees.xml", a.publish("employee").unwrap());
    let mut e = Engine::new(resolver);
    e.set_now(a.now());
    e
}

fn render_sql(a: &ArchIS, q: &str) -> String {
    let out = a.query(q).expect("translated query");
    let xml = out.xml_fragments().join("\n");
    if xml.is_empty() {
        out.rows
            .iter()
            .flat_map(|r| r.iter().map(|v| v.render()))
            .collect::<Vec<_>>()
            .join("\n")
    } else {
        xml
    }
}

/// The observable facts of a snapshot result: sorted (tstart, value)
/// pairs, each checked to actually cover the probe date.
fn snapshot_facts(xml: &str, d: Date) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for frag in xml.split('\n').filter(|s| !s.trim().is_empty()) {
        let e = xmldom::parse(frag).expect("fragment parses");
        let iv = e.interval().expect("timestamped");
        assert!(
            iv.contains_date(d),
            "returned period {iv:?} does not cover {d}"
        );
        out.push((e.attr("tstart").unwrap().to_string(), e.text_content()));
    }
    out.sort();
    out
}

fn normalize_number(s: &str) -> String {
    // AVG renders as f64 on both sides but with possibly different
    // trailing forms ("75000" vs "75000.0"); normalize numerics.
    if let Ok(f) = s.trim().parse::<f64>() {
        format!("{f:.6}")
    } else {
        s.trim().to_string()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_queries_agree(events in arb_events(), probe_day in 0i32..45) {
        let a = build(&events);
        let engine = native_engine(&a);
        let d = day(probe_day);
        let q = format!(
            r#"for $s in doc("employees.xml")/employees/employee/salary
                   [tstart(.) <= xs:date("{d}") and tend(.) >= xs:date("{d}")]
               return $s"#
        );
        // A segment-restricted snapshot may return the archived copy of a
        // then-open tuple, whose `tend` is still `9999-12-31` (the paper's
        // §6.1 example stores exactly such copies). The snapshot *content*
        // — (value, tstart), valid at d — must agree; tend may be the
        // archived form.
        let native = snapshot_facts(&engine.eval_to_xml(&q).unwrap(), d);
        let sql = snapshot_facts(&render_sql(&a, &q), d);
        prop_assert_eq!(native, sql);
    }

    #[test]
    fn per_employee_projection_agrees(events in arb_events(), id in 1i64..6) {
        let a = build(&events);
        let engine = native_engine(&a);
        let q = format!(
            r#"for $t in doc("employees.xml")/employees/employee[id = {id}]/title
               return $t"#
        );
        prop_assert_eq!(engine.eval_to_xml(&q).unwrap(), render_sql(&a, &q));
    }

    #[test]
    fn history_counts_agree(events in arb_events()) {
        let a = build(&events);
        let engine = native_engine(&a);
        for attr in ["salary", "title", "deptno"] {
            let q = format!(
                r#"count(for $s in doc("employees.xml")/employees/employee/{attr} return $s)"#
            );
            prop_assert_eq!(
                engine.eval_to_xml(&q).unwrap(),
                render_sql(&a, &q),
                "attribute {}", attr
            );
        }
    }

    #[test]
    fn slicing_counts_agree(events in arb_events(), lo in 0i32..40, len in 1i32..20) {
        let a = build(&events);
        let engine = native_engine(&a);
        let (d1, d2) = (day(lo), day(lo + len));
        let q = format!(
            r#"count(distinct-values(
                 for $e in doc("employees.xml")/employees/employee
                 for $s in $e/salary[. > 50000 and
                     toverlaps(., telement(xs:date("{d1}"), xs:date("{d2}")))]
                 return $e/id))"#
        );
        prop_assert_eq!(engine.eval_to_xml(&q).unwrap(), render_sql(&a, &q));
    }

    #[test]
    fn aggregates_agree(events in arb_events(), probe_day in 0i32..45) {
        let a = build(&events);
        let engine = native_engine(&a);
        let d = day(probe_day);
        let q = format!(
            r#"avg(for $s in doc("employees.xml")/employees/employee/salary
                   [tstart(.) <= xs:date("{d}") and tend(.) >= xs:date("{d}")]
               return number($s))"#
        );
        let native = normalize_number(&engine.eval_to_xml(&q).unwrap());
        let sql = normalize_number(&render_sql(&a, &q));
        // Empty results render differently (empty seq vs NULL); both count
        // as "no answer".
        let none = |s: &str| s.is_empty() || s == "NULL";
        if none(&native) || none(&sql) {
            prop_assert!(none(&native) && none(&sql), "native={native:?} sql={sql:?}");
        } else {
            prop_assert_eq!(native, sql);
        }
    }
}
