//! Replication torture (ISSUE 10 tentpole): kill a replica at every
//! write/fsync mid-replay, feed it damaged shipments, and demand
//! byte-identical convergence — or a loud, durable quarantine.
//!
//! The invariant under test: **every replica state is a committed prefix
//! of the primary**. After any kill (at any write or fsync, on any of
//! the replica's three devices), recovery + catch-up must land the
//! replica byte-identical to the primary — both raw pages and logical
//! dumps. Transient channel damage (drop / duplicate / reorder /
//! truncate / bit-flip) must be absorbed invisibly. Content damage that
//! passes framing (a re-framed corrupt payload) must surface as
//! `ReplicaError::Diverged` with a durable read-only quarantine,
//! verified end-to-end by `archis-fsck check --against`.
//!
//! Layering mirrors `mvcc_torture.rs`: a quick always-on sweep keeps the
//! machinery honest in plain `cargo test`; the exhaustive
//! kill-at-every-position sweeps and the 200-seed randomized sweep run
//! under `--features failpoints` (the CI gate).

use archis::{ArchConfig, ArchIS, RelationSpec};
use relstore::failpoint::{is_crash, FailLog, FailPager, Failpoints};
use relstore::pager::MemPager;
use relstore::wal::{MemLog, WalConfig};
use relstore::{BufferPool, Database, FailChannel, Pager, ShipmentFate, Value, PAGE_SIZE};
use replica::{
    FaultTransport, LocalTransport, MemSegments, Primary, Replica, ReplicaError, RetryPolicy,
    Transport,
};
use std::collections::BTreeSet;
use std::sync::Arc;
use temporal::Date;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A shipping primary with an ArchIS workload on top, all in memory.
struct PrimaryRig {
    primary: Primary,
    archis: ArchIS,
}

fn mem_primary() -> PrimaryRig {
    let primary = Primary::open(
        Arc::new(MemPager::new()),
        Arc::new(MemLog::new()),
        MemSegments::new(),
        WalConfig::with_group_commit(1),
    )
    .unwrap();
    let db = Database::open_pool(Arc::new(BufferPool::new(primary.pager(), 512))).unwrap();
    let archis = ArchIS::open_with_database(db, ArchConfig::default()).unwrap();
    PrimaryRig { primary, archis }
}

/// Deterministic op stream (multiplicative LCG, as in mvcc_torture).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// One writer op: 0..=3 upsert, 4 delete, 5 archival pass. Dates advance
/// five days per op so periods coalesce.
fn writer_op(a: &ArchIS, alive: &mut BTreeSet<i64>, i: usize, kind: u64, key: i64) {
    let base_day = Date::parse("1990-01-01").unwrap().day_number();
    let at = Date::from_day_number(base_day + i as i32 * 5);
    match kind {
        0..=3 => {
            if alive.insert(key) {
                a.insert(
                    "employee",
                    key,
                    vec![
                        ("name".into(), Value::Str(format!("e{key}"))),
                        ("salary".into(), Value::Int(1000 + i as i64)),
                        ("title".into(), Value::Str("Engineer".into())),
                        ("deptno".into(), Value::Str("d001".into())),
                    ],
                    at,
                )
                .unwrap();
            } else {
                a.update(
                    "employee",
                    key,
                    vec![("salary".into(), Value::Int(1000 + i as i64))],
                    at,
                )
                .unwrap();
            }
        }
        4 => {
            if alive.remove(&key) {
                a.delete("employee", key, at).unwrap();
            }
        }
        _ => {
            a.maybe_archive("employee", at).unwrap();
        }
    }
}

fn run_workload(rig: &mut PrimaryRig, seed: u64, ops: usize, keys: i64) -> BTreeSet<i64> {
    rig.archis
        .create_relation(RelationSpec::employee())
        .unwrap();
    let mut rng = Lcg(seed ^ 0x9e3779b97f4a7c15);
    let mut alive = BTreeSet::new();
    for i in 0..ops {
        let kind = rng.next() % 6;
        let key = (rng.next() % keys as u64) as i64;
        writer_op(&rig.archis, &mut alive, i, kind, key);
    }
    alive
}

/// Canonical whole-store dump (tables, rows rendered and sorted): the
/// "bytes" of byte-identical at the logical level.
fn dump(db: &Database) -> String {
    let mut out = String::new();
    for name in db.table_names() {
        let mut rows: Vec<String> = db
            .table(&name)
            .unwrap()
            .scan()
            .unwrap()
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        rows.sort();
        out.push_str(&name);
        out.push('\n');
        for r in rows {
            out.push_str(&r);
            out.push('\n');
        }
    }
    out
}

/// A replica whose three devices (store base, store WAL, position log)
/// all sit under one `Failpoints` schedule, so a kill can land on any
/// of them mid-replay.
struct ReplicaRig {
    fp: Arc<Failpoints>,
    base: Arc<FailPager>,
    wal: Arc<FailLog>,
    posl: Arc<FailLog>,
    transport: Arc<dyn Transport>,
}

impl ReplicaRig {
    fn new(seed: u64, transport: Arc<dyn Transport>) -> ReplicaRig {
        let fp = Failpoints::new(seed);
        ReplicaRig {
            base: Arc::new(FailPager::new(fp.clone(), Arc::new(MemPager::new()))),
            wal: Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new()))),
            posl: Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new()))),
            fp,
            transport,
        }
    }

    /// Open can itself crash: recovery of a torn WAL tail folds and
    /// truncates the log, which writes — a legitimate kill point.
    fn open(&self) -> Result<Replica, ReplicaError> {
        Replica::open(
            self.base.clone(),
            self.wal.clone(),
            self.posl.clone(),
            self.transport.clone(),
            RetryPolicy::immediate(64),
        )
    }
}

fn is_crash_err(e: &ReplicaError) -> bool {
    matches!(e, ReplicaError::Store(inner) if is_crash(inner))
}

/// Raw page-level byte comparison, the strictest form of convergence.
fn assert_pages_identical(primary: &Primary, rep: &Replica, ctx: &str) {
    let p = primary.pager();
    let r = rep.pager();
    assert_eq!(p.num_pages(), r.num_pages(), "{ctx}: page count differs");
    let mut pb = [0u8; PAGE_SIZE];
    let mut rb = [0u8; PAGE_SIZE];
    for id in 0..p.num_pages() {
        p.read_page(id, &mut pb).unwrap();
        r.read_page(id, &mut rb).unwrap();
        assert_eq!(pb[..], rb[..], "{ctx}: page {id} differs");
    }
}

/// Logical dump comparison at the same commit LSN (the primary is
/// quiesced, the replica is at head, so the LSNs coincide).
fn assert_dumps_identical(rig: &PrimaryRig, rep: &Replica, ctx: &str) {
    let snap = rep.begin_snapshot().unwrap();
    let primary_dump = dump(rig.archis.database());
    let replica_dump = dump(snap.database());
    assert_eq!(primary_dump, replica_dump, "{ctx}: logical dumps differ");
    assert_eq!(
        snap.commits(),
        rig.primary.ship().head().1,
        "{ctx}: replica snapshot is not at the primary's commit LSN"
    );
}

/// Kill-at-every-position sweep: arm a crash `n` operations into each
/// replay attempt, reopen + resume after every kill, and keep raising
/// `n` until an attempt survives with the crash still armed. Convergence
/// is checked after every recovery (partial prefixes must be valid too).
fn kill_sweep(rig: &PrimaryRig, seed: u64, syncs: bool) -> u64 {
    let rep_rig = ReplicaRig::new(seed, LocalTransport::new(rig.primary.ship()));
    let mut kills = 0;
    let mut n = 1u64;
    loop {
        if syncs {
            rep_rig.fp.crash_after_syncs(n);
        } else {
            rep_rig.fp.crash_after_writes(n);
        }
        let outcome = rep_rig.open().and_then(|r| r.catch_up().map(|_| r));
        match outcome {
            Ok(replica) => {
                assert_pages_identical(&rig.primary, &replica, "post-sweep");
                assert_dumps_identical(rig, &replica, "post-sweep");
                assert!(!replica.is_quarantined(), "clean replay quarantined");
                return kills;
            }
            Err(e) => {
                assert!(
                    is_crash_err(&e),
                    "seed {seed} n {n}: non-crash failure mid-replay: {e}"
                );
                kills += 1;
                rep_rig.fp.revive();
                // Recovery alone must land on a committed prefix: the
                // recovered store matches the stream at the replica's
                // own position (verified cheaply via the position's CRC
                // chain continuing to verify as replay resumes).
                n += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Always-on coverage (plain `cargo test`)
// ---------------------------------------------------------------------------

#[test]
fn kill_sweep_smoke() {
    let mut rig = mem_primary();
    run_workload(&mut rig, 42, 10, 6);
    let kills = kill_sweep(&rig, 42, false);
    assert!(kills > 0, "sweep never killed the replica — harness inert");
}

#[test]
fn channel_faults_with_crashes_smoke() {
    for seed in 0..6u64 {
        torture_seed(seed, 18, 8);
    }
}

#[test]
fn divergence_quarantines_and_fsck_audits() {
    let dir = std::env::temp_dir().join(format!("archis-replica-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ppath = dir.join("primary.db");
    let rpath = dir.join("replica.db");
    let rpath_bad = dir.join("replica-bad.db");

    // File-backed primary with real workload.
    {
        let (primary, db) =
            Primary::open_file(&ppath, 256, WalConfig::with_group_commit(1)).unwrap();
        let archis = ArchIS::open_with_database(db, ArchConfig::default()).unwrap();
        let mut rig = PrimaryRig { primary, archis };
        run_workload(&mut rig, 7, 15, 5);

        // Healthy replica: converges, and the cross-store audit is clean.
        {
            let rep = Replica::open_file(
                &rpath,
                LocalTransport::new(rig.primary.ship()),
                RetryPolicy::immediate(8),
            )
            .unwrap();
            rep.catch_up().unwrap();
            assert_pages_identical(&rig.primary, &rep, "file-backed");
        }
        let outcome = archis_fsck::check_against(&rpath, &ppath).unwrap();
        assert_eq!(
            outcome.exit_code(),
            0,
            "healthy replica flagged: {}",
            outcome.render()
        );

        // Corrupted-content replica: a re-framed payload passes framing,
        // the divergence chain catches it, quarantine is durable, and
        // the fsck audit reports it.
        {
            let chan = FailChannel::new(99);
            chan.arm_nth(1, ShipmentFate::CorruptPayload);
            let rep = Replica::open_file(
                &rpath_bad,
                FaultTransport::new(LocalTransport::new(rig.primary.ship()), chan),
                RetryPolicy::immediate(8),
            )
            .unwrap();
            match rep.catch_up() {
                Err(ReplicaError::Diverged {
                    expected, actual, ..
                }) => {
                    assert_ne!(expected, actual)
                }
                other => panic!("expected divergence, got {other:?}"),
            }
            assert!(rep.is_quarantined());
            // Quarantine still serves the last verified prefix (empty
            // here: the first shipment was the corrupt one).
            match rep.poll() {
                Err(ReplicaError::Quarantined) => {}
                other => panic!("apply after quarantine: {other:?}"),
            }
        }
        let outcome = archis_fsck::check_against(&rpath_bad, &ppath).unwrap();
        assert_eq!(outcome.exit_code(), 1, "quarantined replica not flagged");
        let report = outcome.render();
        assert!(
            report.contains("[diverged]") && report.contains("quarantined"),
            "audit must name the quarantine: {report}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pinned_snapshot_survives_faulty_replay() {
    let mut rig = mem_primary();
    let mut alive = run_workload(&mut rig, 11, 12, 5);

    let chan = FailChannel::new(11);
    chan.set_random_faults(30);
    let transport = FaultTransport::new(LocalTransport::new(rig.primary.ship()), chan);
    let replica = Replica::open(
        Arc::new(MemPager::new()),
        Arc::new(MemLog::new()),
        Arc::new(MemLog::new()),
        transport,
        RetryPolicy::immediate(64),
    )
    .unwrap();
    replica.catch_up().unwrap();

    let snap = replica.begin_snapshot().unwrap();
    let frozen = dump(snap.database());

    // More primary history, replayed through a faulty channel with a
    // checkpoint folding underneath the pin.
    for i in 100..140 {
        writer_op(&rig.archis, &mut alive, i, (i % 5) as u64, (i % 7) as i64);
    }
    replica.catch_up().unwrap();
    replica.checkpoint().unwrap();

    assert_eq!(
        frozen,
        dump(snap.database()),
        "pinned snapshot changed under faulty replay + checkpoint"
    );
    drop(snap);
    assert_dumps_identical(&rig, &replica, "post-pin");
}

// ---------------------------------------------------------------------------
// Randomized seed torture
// ---------------------------------------------------------------------------

/// One full torture round for one seed: seeded primary workload, replica
/// behind a faulty channel, seeded kills mid-replay with reopen+resume,
/// final byte-identical convergence.
fn torture_seed(seed: u64, ops: usize, keys: i64) {
    let mut rig = mem_primary();
    run_workload(&mut rig, seed, ops, keys);

    let chan = FailChannel::new(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
    chan.set_random_faults(25);
    let transport: Arc<dyn Transport> =
        FaultTransport::new(LocalTransport::new(rig.primary.ship()), chan);
    let rep_rig = ReplicaRig::new(seed ^ 0xFA17, transport);

    let mut rng = Lcg(seed.wrapping_add(77));
    let mut rounds = 0;
    loop {
        // Seeded kill position; alternate between write- and sync-count
        // kills so both schedules get coverage.
        let n = rng.next() % 24 + 1;
        if rounds % 2 == 0 {
            rep_rig.fp.crash_after_writes(n);
        } else {
            rep_rig.fp.crash_after_syncs(n);
        }
        let outcome = rep_rig.open().and_then(|r| r.catch_up().map(|_| r));
        match outcome {
            Ok(replica) => {
                // Crash may still be armed but unfired; disarm and do the
                // final convergence audit.
                rep_rig.fp.disarm();
                assert_pages_identical(&rig.primary, &replica, &format!("seed {seed}"));
                assert_dumps_identical(&rig, &replica, &format!("seed {seed}"));
                assert!(
                    !replica.is_quarantined(),
                    "seed {seed}: transient faults must never quarantine"
                );
                return;
            }
            Err(e) => {
                assert!(is_crash_err(&e), "seed {seed}: non-crash failure: {e}");
                rep_rig.fp.revive();
                rounds += 1;
                assert!(rounds < 200, "seed {seed}: replica never converged");
            }
        }
    }
}

/// The CI acceptance gate: 200 seeds of kill-mid-replay + channel-fault
/// torture, zero silently-divergent survivors.
#[test]
#[cfg(feature = "failpoints")]
fn seed_sweep_200_kill_and_channel_faults() {
    for seed in 0..200u64 {
        torture_seed(seed, 24, 8);
    }
}

/// Exhaustive kill positions: every write operation of the replay path,
/// then every fsync, across a workload big enough to cover staging,
/// publish, position-persist and checkpoint code paths.
#[test]
#[cfg(feature = "failpoints")]
fn kill_at_every_write_and_sync() {
    let mut rig = mem_primary();
    run_workload(&mut rig, 1234, 40, 10);
    let kills_w = kill_sweep(&rig, 1, false);
    assert!(kills_w > 50, "write sweep fired only {kills_w} kills");
    let kills_s = kill_sweep(&rig, 2, true);
    assert!(kills_s > 10, "sync sweep fired only {kills_s} kills");
}
