//! Durable ArchIS: checkpoint to a page file, drop everything, reopen,
//! and keep querying / updating / archiving — including a compressed
//! store reattached from its BLOB tables.

use archis::{queries, ArchConfig, ArchIS, RelationSpec};
use relstore::Value;
use temporal::Date;

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

fn tmpfile(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("archis-durable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn load_bob(a: &mut ArchIS) {
    a.create_relation(RelationSpec::employee()).unwrap();
    a.insert(
        "employee",
        1001,
        vec![
            ("name".into(), Value::Str("Bob".into())),
            ("salary".into(), Value::Int(60000)),
            ("title".into(), Value::Str("Engineer".into())),
            ("deptno".into(), Value::Str("d01".into())),
        ],
        d("1995-01-01"),
    )
    .unwrap();
    a.update("employee", 1001, vec![("salary".into(), Value::Int(70000))], d("1995-06-01"))
        .unwrap();
}

#[test]
fn archis_survives_reopen() {
    let path = tmpfile("bob.db");
    std::fs::remove_file(&path).ok();
    {
        let mut a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        load_bob(&mut a);
        a.force_archive("employee", d("1995-12-31")).unwrap();
        a.checkpoint().unwrap();
    }
    {
        let a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        // Relation spec restored.
        assert!(a.relation("employee").is_ok());
        // History queries work through the translator.
        let out = a
            .query(
                r#"for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
                   return $s"#,
            )
            .unwrap();
        let xml = out.xml_fragments().join("");
        assert!(xml.contains("60000") && xml.contains("70000"), "{xml}");
        // Archiver state restored: segment catalog continues at segno 2.
        let segs = a.segments_of("employee", "salary").unwrap();
        assert_eq!(segs[0].segno, 1);
        assert_eq!(segs[0].end, d("1995-12-31"));
        // Updates keep working and usefulness accounting resumes.
        a.update("employee", 1001, vec![("salary".into(), Value::Int(80000))], d("1996-06-01"))
            .unwrap();
        a.force_archive("employee", d("1996-12-31")).unwrap();
        let segs = a.segments_of("employee", "salary").unwrap();
        assert_eq!(segs.iter().filter(|s| s.segno < 1000).count(), 2, "segno 2 was allocated");
        a.checkpoint().unwrap();
    }
    {
        let a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        let n = a
            .query(r#"count(for $s in doc("employees.xml")/employees/employee/salary return $s)"#)
            .unwrap()
            .scalar_rows()
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(n, 3, "three salary periods across both sessions");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn compressed_store_reattaches() {
    let path = tmpfile("compressed.db");
    std::fs::remove_file(&path).ok();
    {
        let mut a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        load_bob(&mut a);
        for (i, date) in ["1996-02-01", "1997-02-01", "1998-02-01"].iter().enumerate() {
            a.update(
                "employee",
                1001,
                vec![("salary".into(), Value::Int(71000 + i as i64 * 1000))],
                d(date),
            )
            .unwrap();
        }
        a.force_archive("employee", d("1998-12-31")).unwrap();
        a.compress_archived("employee").unwrap();
        a.checkpoint().unwrap();
    }
    {
        let a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        let store = a.compressed_store("employee").expect("store reattached");
        assert!(store.block_count() > 0);
        // Point lookup straight out of the reattached BLOB tables.
        assert_eq!(
            queries::q1_compressed(&a, store, 1001, d("1995-03-01")).unwrap(),
            Some(60000)
        );
        let hist = queries::q3_compressed(&a, store, 1001).unwrap();
        assert_eq!(hist.len(), 5);
    }
    std::fs::remove_file(&path).ok();
}
