//! Durable ArchIS: checkpoint to a page file, drop everything, reopen,
//! and keep querying / updating / archiving — including a compressed
//! store reattached from its BLOB tables.

use archis::{queries, ArchConfig, ArchIS, RelationSpec};
use dataset::{DatasetConfig, Op};
use relstore::failpoint::{FailLog, FailPager, Failpoints};
use relstore::pager::MemPager;
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, Value};
use std::sync::Arc;
use temporal::Date;

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

fn tmpfile(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("archis-durable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Remove a page file and its WAL sibling (open_file creates `<path>.wal`);
/// leaving a stale log behind would replay into the next test run.
fn remove_db(path: &std::path::Path) {
    std::fs::remove_file(path).ok();
    let mut wal = path.as_os_str().to_os_string();
    wal.push(".wal");
    std::fs::remove_file(std::path::PathBuf::from(wal)).ok();
}

fn load_bob(a: &mut ArchIS) {
    a.create_relation(RelationSpec::employee()).unwrap();
    a.insert(
        "employee",
        1001,
        vec![
            ("name".into(), Value::Str("Bob".into())),
            ("salary".into(), Value::Int(60000)),
            ("title".into(), Value::Str("Engineer".into())),
            ("deptno".into(), Value::Str("d01".into())),
        ],
        d("1995-01-01"),
    )
    .unwrap();
    a.update(
        "employee",
        1001,
        vec![("salary".into(), Value::Int(70000))],
        d("1995-06-01"),
    )
    .unwrap();
}

#[test]
fn archis_survives_reopen() {
    let path = tmpfile("bob.db");
    remove_db(&path);
    {
        let mut a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        load_bob(&mut a);
        a.force_archive("employee", d("1995-12-31")).unwrap();
        a.checkpoint().unwrap();
    }
    {
        let a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        // Relation spec restored.
        assert!(a.relation("employee").is_ok());
        // History queries work through the translator.
        let out = a
            .query(
                r#"for $s in doc("employees.xml")/employees/employee[name="Bob"]/salary
                   return $s"#,
            )
            .unwrap();
        let xml = out.xml_fragments().join("");
        assert!(xml.contains("60000") && xml.contains("70000"), "{xml}");
        // Archiver state restored: segment catalog continues at segno 2.
        let segs = a.segments_of("employee", "salary").unwrap();
        assert_eq!(segs[0].segno, 1);
        assert_eq!(segs[0].end, d("1995-12-31"));
        // Updates keep working and usefulness accounting resumes.
        a.update(
            "employee",
            1001,
            vec![("salary".into(), Value::Int(80000))],
            d("1996-06-01"),
        )
        .unwrap();
        a.force_archive("employee", d("1996-12-31")).unwrap();
        let segs = a.segments_of("employee", "salary").unwrap();
        assert_eq!(
            segs.iter().filter(|s| s.segno < 1000).count(),
            2,
            "segno 2 was allocated"
        );
        a.checkpoint().unwrap();
    }
    {
        let a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        let n = a
            .query(r#"count(for $s in doc("employees.xml")/employees/employee/salary return $s)"#)
            .unwrap()
            .scalar_rows()
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(n, 3, "three salary periods across both sessions");
    }
    remove_db(&path);
}

#[test]
fn compressed_store_reattaches() {
    let path = tmpfile("compressed.db");
    remove_db(&path);
    {
        let mut a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        load_bob(&mut a);
        for (i, date) in ["1996-02-01", "1997-02-01", "1998-02-01"]
            .iter()
            .enumerate()
        {
            a.update(
                "employee",
                1001,
                vec![("salary".into(), Value::Int(71000 + i as i64 * 1000))],
                d(date),
            )
            .unwrap();
        }
        a.force_archive("employee", d("1998-12-31")).unwrap();
        a.compress_archived("employee").unwrap();
        a.checkpoint().unwrap();
    }
    {
        let a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        let store = a.compressed_store("employee").expect("store reattached");
        assert!(store.block_count() > 0);
        // Point lookup straight out of the reattached BLOB tables.
        assert_eq!(
            queries::q1_compressed(&a, store, 1001, d("1995-03-01")).unwrap(),
            Some(60000)
        );
        let hist = queries::q3_compressed(&a, store, 1001).unwrap();
        assert_eq!(hist.len(), 5);
    }
    remove_db(&path);
}

// ---------------------------------------------------------------------------
// Seeded crash torture (ISSUE satellite 1): archive the employee dataset on
// fault-injected media, kill the "machine" at a seeded write position,
// reboot, and check every §6.1 segment invariant plus tstart/tend timeline
// coalescing via `Archiver::verify_invariants`. The full 200-seed sweep runs
// under `--features failpoints` (scripts/ci.sh); the default build runs a
// 40-seed smoke slice so `cargo test -q` stays fast.
// ---------------------------------------------------------------------------

const TORTURE_SEEDS: u64 = if cfg!(feature = "failpoints") {
    200
} else {
    40
};

struct Media {
    fp: Arc<Failpoints>,
    base: Arc<FailPager>,
    log: Arc<FailLog>,
}

fn media(seed: u64) -> Media {
    let fp = Failpoints::new(seed);
    let base = Arc::new(FailPager::new(fp.clone(), Arc::new(MemPager::new())));
    let log = Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new())));
    Media { fp, base, log }
}

fn archis_on(m: &Media, batch: usize) -> archis::Result<ArchIS> {
    let pager = Arc::new(WalPager::open(
        m.base.clone(),
        m.log.clone(),
        WalConfig::with_group_commit(batch),
    )?);
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 256)))?;
    ArchIS::open_with_database(db, ArchConfig::default())
}

fn torture_ops() -> Vec<Op> {
    dataset::generate(&DatasetConfig {
        employees: 16,
        years: 4,
        seed: 7,
        ..Default::default()
    })
}

/// Replay the dataset through ArchIS with a transaction per event and an
/// archival pass at every year boundary, like the paper's trigger mode.
fn archival_workload(m: &Media, batch: usize, ops: &[Op]) -> archis::Result<()> {
    let mut a = archis_on(m, batch)?;
    a.create_relation(RelationSpec::employee())?;
    let mut year = ops.first().map(|o| o.at().year()).unwrap_or(1985);
    for op in ops {
        if op.at().year() > year {
            year = op.at().year();
            a.maybe_archive("employee", op.at())?;
        }
        match op {
            Op::Hire {
                id,
                name,
                salary,
                title,
                deptno,
                at,
            } => a.insert(
                "employee",
                *id,
                vec![
                    ("name".into(), Value::Str(name.clone())),
                    ("salary".into(), Value::Int(*salary)),
                    ("title".into(), Value::Str(title.clone())),
                    ("deptno".into(), Value::Str(deptno.clone())),
                ],
                *at,
            )?,
            Op::Raise { id, salary, at } => a.update(
                "employee",
                *id,
                vec![("salary".into(), Value::Int(*salary))],
                *at,
            )?,
            Op::TitleChange { id, title, at } => a.update(
                "employee",
                *id,
                vec![("title".into(), Value::Str(title.clone()))],
                *at,
            )?,
            Op::DeptChange { id, deptno, at } => a.update(
                "employee",
                *id,
                vec![("deptno".into(), Value::Str(deptno.clone()))],
                *at,
            )?,
            Op::Leave { id, at } => a.delete("employee", *id, *at)?,
        }
    }
    let end = ops
        .last()
        .map(|o| o.at())
        .unwrap_or_else(|| d("1999-12-31"));
    a.force_archive("employee", end)?;
    a.checkpoint()?;
    Ok(())
}

/// Reboot the crashed media and assert the recovered store is internally
/// consistent; returns the recovered ArchIS for follow-on use. A crash
/// before the creating transaction committed leaves no relation — that is
/// a valid (empty) prefix.
fn verify_recovered(m: &Media, ctx: &str) -> Option<ArchIS> {
    let a = archis_on(m, 1).unwrap_or_else(|e| panic!("{ctx}: recovery open failed: {e}"));
    if a.relation("employee").is_err() {
        return None;
    }
    let arch = a
        .archiver_of("employee")
        .unwrap_or_else(|e| panic!("{ctx}: archiver state missing: {e}"));
    let violations = arch
        .verify_invariants(a.database())
        .unwrap_or_else(|e| panic!("{ctx}: invariant scan failed: {e}"));
    assert!(
        violations.is_empty(),
        "{ctx}: invariant violations: {violations:#?}"
    );
    Some(a)
}

#[test]
fn seeded_crash_torture_preserves_archive_invariants() {
    let ops = torture_ops();
    assert!(ops.len() > 40, "dataset too small to exercise archival");

    // Dry run on disarmed media to learn the workload's total write count,
    // so seeded crash positions cover the whole run.
    let dry = media(0);
    archival_workload(&dry, 1, &ops).expect("dry run must not crash");
    let total_writes = dry.fp.writes();
    verify_recovered(&dry, "dry run").expect("dry run persisted the relation");

    let mut survivors = 0u64;
    for seed in 0..TORTURE_SEEDS {
        let m = media(seed);
        m.fp.set_tear_writes(seed % 3 != 0);
        let batch = [1usize, 4, 8][(seed % 3) as usize];
        let pos = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % total_writes + 1;
        m.fp.crash_after_writes(pos);
        match archival_workload(&m, batch, &ops) {
            Ok(()) => {} // crash position landed beyond this batch setting's writes
            Err(_) => assert!(m.fp.crashed(), "seed {seed}: died to a non-injected error"),
        }
        m.fp.revive();

        let ctx = format!("seed {seed} pos {pos} batch {batch}");
        if let Some(a) = verify_recovered(&m, &ctx) {
            survivors += 1;
            // The recovered store stays usable: hire a fresh employee after
            // the horizon, archive, and re-check the invariants end-to-end.
            a.insert(
                "employee",
                999_999,
                vec![
                    ("name".into(), Value::Str("Postcrash".into())),
                    ("salary".into(), Value::Int(1)),
                    ("title".into(), Value::Str("Survivor".into())),
                    ("deptno".into(), Value::Str("d001".into())),
                ],
                d("2002-01-01"),
            )
            .unwrap_or_else(|e| panic!("{ctx}: post-recovery insert failed: {e}"));
            a.force_archive("employee", d("2002-06-01"))
                .unwrap_or_else(|e| panic!("{ctx}: post-recovery archive failed: {e}"));
            let violations = a
                .archiver_of("employee")
                .unwrap()
                .verify_invariants(a.database())
                .unwrap();
            assert!(
                violations.is_empty(),
                "{ctx}: post-recovery violations: {violations:#?}"
            );
        }
    }
    // The sweep must actually recover real states, not just empty stores.
    assert!(
        survivors > TORTURE_SEEDS / 2,
        "only {survivors}/{TORTURE_SEEDS} runs recovered a non-empty store"
    );
}
