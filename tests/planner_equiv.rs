//! Randomized planner equivalence: for random histories, random archival
//! points and random storage layouts, the cost-based planner must return
//! exactly what every forced access path returns — the planner is allowed
//! to pick *where* the bytes come from, never *which* bytes come back.
//! Includes pinned MVCC snapshots (the stats catalog at head describes
//! segments the snapshot cannot see; pruning must stay conservative
//! because segment extremes only ever widen) and the I/O regression the
//! PR's pruning claim rests on: a fully-pruned segment contributes zero
//! block reads.

use archis::{queries as q, ArchConfig, ArchIS, Change, RelationSpec};
use proptest::prelude::*;
use relstore::pager::MemPager;
use relstore::planner::{set_forced_path, ForcedPath};
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, Value};
use std::sync::{Arc, Mutex};
use temporal::Date;

/// `ARCHIS_FORCE_PATH` is process-global; every test here flips it, so
/// they serialize on this lock (a poisoned lock is fine to reuse — the
/// path is always restored to cost mode below).
static PATH_LOCK: Mutex<()> = Mutex::new(());

/// The full path matrix: cost-based (None) first, then every override.
const PATHS: [Option<ForcedPath>; 5] = [
    None,
    Some(ForcedPath::Seq),
    Some(ForcedPath::Index),
    Some(ForcedPath::Cluster),
    Some(ForcedPath::Rule),
];

fn day(off: i32) -> Date {
    Date::from_ymd(1990, 1, 1).unwrap() + off
}

#[derive(Debug, Clone)]
enum Ev {
    Hire { id: i64, salary: i64 },
    Raise { id: i64, salary: i64 },
    Fire { id: i64 },
    Archive,
    Vacuum,
}

fn arb_events() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1i64..6, 30_000i64..100_000)
                .prop_map(|(id, salary)| Ev::Hire { id, salary }),
            4 => (1i64..6, 30_000i64..100_000).prop_map(|(id, salary)| Ev::Raise { id, salary }),
            1 => (1i64..6).prop_map(|id| Ev::Fire { id }),
            2 => Just(Ev::Archive),
            1 => Just(Ev::Vacuum),
        ],
        1..40,
    )
}

/// Replay events one day apart onto `a`, starting at `day(base)`; skip
/// the impossible ones. `hired` carries who is currently employed so a
/// second batch can continue where the first left off.
fn replay(a: &ArchIS, events: &[Ev], base: i32, hired: &mut std::collections::HashSet<i64>) {
    for (i, ev) in events.iter().enumerate() {
        let at = day(base + i as i32);
        match ev {
            Ev::Hire { id, salary } => {
                if hired.insert(*id) {
                    a.apply(&Change::Insert {
                        relation: "employee".into(),
                        key: *id,
                        values: vec![
                            ("name".into(), Value::Str(format!("emp{id}"))),
                            ("salary".into(), Value::Int(*salary)),
                            ("title".into(), Value::Str("Engineer".into())),
                            ("deptno".into(), Value::Str(format!("d{:02}", id % 3))),
                        ],
                        at,
                    })
                    .expect("hire");
                }
            }
            Ev::Raise { id, salary } => {
                if hired.contains(id) {
                    a.apply(&Change::Update {
                        relation: "employee".into(),
                        key: *id,
                        changes: vec![("salary".into(), Value::Int(*salary))],
                        at,
                    })
                    .expect("raise");
                }
            }
            Ev::Fire { id } => {
                if hired.remove(id) {
                    a.apply(&Change::Delete {
                        relation: "employee".into(),
                        key: *id,
                        at,
                    })
                    .expect("fire");
                }
            }
            Ev::Archive => {
                a.force_archive("employee", at).expect("archive");
            }
            Ev::Vacuum => {
                a.vacuum_relation("employee").expect("vacuum");
            }
        }
    }
}

fn build(events: &[Ev], clustered: bool) -> ArchIS {
    let config = if clustered {
        ArchConfig::atlas_like()
    } else {
        ArchConfig::db2_like()
    };
    let mut a = ArchIS::new(config.with_umin(0.5));
    a.create_relation(RelationSpec::employee()).unwrap();
    replay(&a, events, 0, &mut std::collections::HashSet::new());
    a
}

/// One canonical string per query result. Every query below carries a
/// total ORDER BY (or is a scalar), so equal strings mean byte-identical
/// results — row order included.
fn render(out: sqlxml::QueryResult) -> String {
    let xml = out.xml_fragments().join("\n");
    let rows = out
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.render()).collect::<Vec<_>>().join("|"))
        .collect::<Vec<_>>()
        .join("\n");
    format!("{xml}\n--\n{rows}")
}

/// The query families of the paper's workload, each with a total order so
/// access path cannot leak into row order: snapshot, keyed history,
/// window, join, and the segno-range shape the adversarial bench uses.
fn query_suite(probe: Date, lo: Date, hi: Date, key: i64) -> Vec<(bool, String)> {
    vec![
        (
            false,
            r#"count(for $s in doc("employees.xml")/employees/employee/salary return $s)"#
                .to_string(),
        ),
        (
            false,
            format!(
                r#"avg(for $s in doc("employees.xml")/employees/employee/salary
                       [tstart(.) <= xs:date("{probe}") and tend(.) >= xs:date("{probe}")]
                   return number($s))"#
            ),
        ),
        (
            false,
            format!(
                r#"count(distinct-values(
                     for $e in doc("employees.xml")/employees/employee
                     for $s in $e/salary[. > 50000 and
                         toverlaps(., telement(xs:date("{lo}"), xs:date("{hi}")))]
                     return $e/id))"#
            ),
        ),
        (
            true,
            format!(
                "select s.id, s.salary, s.tstart, s.tend from employee_salary s \
                 where s.tstart <= '{probe}' and s.tend >= '{probe}' \
                 order by s.id, s.tstart, s.salary"
            ),
        ),
        (
            true,
            format!(
                "select s.salary, s.tstart, s.tend from employee_salary s \
                 where s.id = {key} order by s.tstart, s.salary, s.tend"
            ),
        ),
        (
            true,
            format!(
                "select n.id, n.name, s.salary from employee_name n, employee_salary s \
                 where n.id = s.id and s.tstart <= '{probe}' and s.tend >= '{probe}' \
                 order by n.id, s.tstart, s.salary"
            ),
        ),
        (
            true,
            "select s.id, s.tstart, s.salary from employee_salary s \
             where s.segno >= 1 order by s.id, s.tstart, s.salary"
                .to_string(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Heap and clustered layouts, every query family, every forced path:
    /// the cost-based plan's bytes are the reference, the other four must
    /// match them exactly.
    #[test]
    fn forced_paths_agree_with_cost_based_plans(
        events in arb_events(),
        clustered in any::<bool>(),
        probe_day in 0i32..45,
        lo in 0i32..40,
        len in 1i32..20,
        key in 1i64..6,
    ) {
        let _g = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = build(&events, clustered);
        for (is_sql, text) in query_suite(day(probe_day), day(lo), day(lo + len), key) {
            let mut outputs = Vec::new();
            for path in PATHS {
                set_forced_path(path);
                let out = if is_sql { a.execute_sql(&text) } else { a.query(&text) };
                set_forced_path(None);
                outputs.push(render(out.expect("query")));
            }
            for (i, o) in outputs.iter().enumerate().skip(1) {
                prop_assert_eq!(
                    &outputs[0], o,
                    "path {:?} diverges from the cost-based plan on {}",
                    PATHS[i], text
                );
            }
        }
    }

    /// The compressed table-function paths (core::planner) under the same
    /// matrix: Q1/Q3/Q4/Q5/Q6 answers are path-invariant.
    #[test]
    fn compressed_paths_agree_across_forced_paths(
        events in arb_events(),
        probe_day in 0i32..45,
        lo in 0i32..40,
        len in 1i32..20,
        key in 1i64..6,
    ) {
        let _g = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut a = build(&events, false);
        a.compress_archived("employee").expect("compress");
        let Some(store) = a.compressed_store("employee") else { return Ok(()) };
        let (probe, d1, d2) = (day(probe_day), day(lo), day(lo + len));
        let mut answers = Vec::new();
        for path in PATHS {
            set_forced_path(path);
            let ans = (
                q::q1_compressed(&a, store, key, probe).expect("q1"),
                q::q3_compressed(&a, store, key).expect("q3"),
                q::q4_compressed(&a, store).expect("q4"),
                q::q5_compressed(&a, store, 50_000, d1, d2).expect("q5"),
                q::q6_compressed(&a, store, d1, d2).expect("q6"),
            );
            set_forced_path(None);
            answers.push(ans);
        }
        for (i, a) in answers.iter().enumerate().skip(1) {
            prop_assert_eq!(&answers[0], a, "path {:?} diverges", PATHS[i]);
        }
    }

    /// Pinned MVCC snapshots: after the snapshot is taken, the head keeps
    /// mutating — more events, another archival, a vacuum — so the stats
    /// catalog the planner consults describes a *newer* world than the
    /// snapshot sees. Pruning must stay conservative (segment extremes
    /// only ever widen), so every path still returns identical bytes.
    #[test]
    fn pinned_snapshot_agrees_across_paths(
        pre in arb_events(),
        post in arb_events(),
        probe_day in 0i32..45,
        key in 1i64..6,
    ) {
        let _g = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Snapshots need a WAL-backed store (the MVCC machinery pins a
        // commit LSN in the log), so build on a WalPager over memory.
        let pager = Arc::new(
            WalPager::open(
                Arc::new(MemPager::new()),
                Arc::new(MemLog::new()),
                WalConfig::with_group_commit(1),
            )
            .expect("wal pager"),
        );
        let db = Database::open_pool(Arc::new(BufferPool::new(pager, 512))).expect("db");
        let mut a =
            ArchIS::open_with_database(db, ArchConfig::db2_like().with_umin(0.5)).expect("open");
        a.create_relation(RelationSpec::employee()).expect("relation");
        let mut hired = std::collections::HashSet::new();
        replay(&a, &pre, 0, &mut hired);
        let snap = a.begin_snapshot().expect("snapshot");
        replay(&a, &post, 50, &mut hired);
        a.force_archive("employee", day(120)).expect("head archive");
        let probe = day(probe_day);
        for (is_sql, text) in query_suite(probe, probe, probe + 10, key) {
            let mut outputs = Vec::new();
            for path in PATHS {
                set_forced_path(path);
                let out = if is_sql { snap.execute_sql(&text) } else { snap.query(&text) };
                set_forced_path(None);
                outputs.push(render(out.expect("snapshot query")));
            }
            for (i, o) in outputs.iter().enumerate().skip(1) {
                prop_assert_eq!(
                    &outputs[0], o,
                    "path {:?} diverges on the pinned snapshot for {}",
                    PATHS[i], text
                );
            }
        }
    }
}

/// Fixture with a *dead era*: rows exist only in 1990, everyone is gone by
/// 1991, but the segment archived at the end of 1999 has a catalog
/// interval stretching across the whole decade. Interval-only planning
/// must read it for a mid-decade snapshot; the stats catalog proves it
/// holds nothing.
fn dead_era_archis() -> ArchIS {
    let mut a = ArchIS::new(ArchConfig::db2_like());
    a.create_relation(RelationSpec::employee()).unwrap();
    let d = |s: &str| Date::parse(s).unwrap();
    for id in 1..=8i64 {
        a.insert(
            "employee",
            id,
            vec![
                ("name".into(), Value::Str(format!("emp{id}"))),
                ("salary".into(), Value::Int(40_000 + id)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str("d01".into())),
            ],
            d("1990-01-01"),
        )
        .unwrap();
        a.update(
            "employee",
            id,
            vec![("salary".into(), Value::Int(41_000 + id))],
            d("1990-06-01"),
        )
        .unwrap();
        a.delete("employee", id, d("1991-01-01")).unwrap();
    }
    a.force_archive("employee", d("1999-12-31")).unwrap();
    a
}

/// The pruning I/O claim, measured exactly: a snapshot into the dead era
/// plans zero segments, so the compressed store decompresses **zero
/// blocks** — not "fewer", zero. Rule mode (the pre-stats planner) is the
/// control: it must touch the covering segment's blocks.
#[test]
fn fully_pruned_snapshot_decompresses_zero_blocks() {
    let _g = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut a = dead_era_archis();
    a.compress_archived("employee").expect("compress");
    let store = a.compressed_store("employee").expect("store");
    let probe = Date::parse("1995-06-01").unwrap();

    store.reset_stats();
    let avg = q::q2_compressed(&a, store, probe).expect("q2");
    assert_eq!(avg, 0.0, "the era is dead — nobody is employed");
    assert_eq!(
        store.blocks_read(),
        0,
        "a fully-pruned snapshot must not decompress any block"
    );
    let (hits, misses) = store.cache_stats();
    assert_eq!((hits, misses), (0, 0), "nor even touch the block cache");

    set_forced_path(Some(ForcedPath::Rule));
    store.reset_stats();
    let avg = q::q2_compressed(&a, store, probe).expect("q2 rule");
    set_forced_path(None);
    assert_eq!(avg, 0.0);
    // The compression pass itself warms the block cache, so the rule-mode
    // control may be served by hits — but it must *touch* the covering
    // segment's blocks either way.
    let (hits, misses) = store.cache_stats();
    assert!(
        store.blocks_read() + hits + misses > 0,
        "the interval-only rule reads the covering segment's blocks"
    );
}

/// The same claim at the buffer-pool level ([`relstore::IoStats`]): the
/// translated dead-era snapshot query must do strictly less I/O with
/// stats pruning than the interval-only rule, cold cache on both sides.
#[test]
fn stats_pruning_cuts_pool_reads_on_dead_era_snapshot() {
    let _g = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = dead_era_archis();
    let xq = q::q2_xquery(Date::parse("1995-06-01").unwrap());
    let pool = a.database().pool();

    let cold_run = |path: Option<ForcedPath>| {
        set_forced_path(path);
        pool.flush_all().expect("flush");
        pool.reset_stats();
        let out = a.query(&xq).expect("query");
        set_forced_path(None);
        (render(out), pool.stats())
    };

    let (pruned_out, pruned) = cold_run(None);
    let (rule_out, rule) = cold_run(Some(ForcedPath::Rule));
    assert_eq!(pruned_out, rule_out, "pruning must not change the answer");
    assert!(
        pruned.physical_reads < rule.physical_reads,
        "pruned {} >= rule {} physical reads",
        pruned.physical_reads,
        rule.physical_reads
    );
    assert!(
        pruned.logical_reads < rule.logical_reads,
        "pruned {} >= rule {} logical reads",
        pruned.logical_reads,
        rule.logical_reads
    );
}
