//! Full-pipeline integration tests: workload → ArchIS (both storage
//! layouts, with segmentation and compression) → H-document publication →
//! native XML database — every execution path must give the same answers,
//! and those answers must match a brute-force recomputation from the raw
//! event stream.

use archis::{queries, ArchConfig, ArchIS, Change, RelationSpec};
use dataset::{DatasetConfig, Op};
use relstore::Value;
use std::collections::HashMap;
use temporal::{Date, Interval, END_OF_TIME};
use xmldb::XmlDb;

fn now() -> Date {
    Date::from_ymd(2005, 1, 1).unwrap()
}

fn to_change(op: &Op) -> Change {
    match op {
        Op::Hire {
            id,
            name,
            salary,
            title,
            deptno,
            at,
        } => Change::Insert {
            relation: "employee".into(),
            key: *id,
            values: vec![
                ("name".into(), Value::Str(name.clone())),
                ("salary".into(), Value::Int(*salary)),
                ("title".into(), Value::Str(title.clone())),
                ("deptno".into(), Value::Str(deptno.clone())),
            ],
            at: *at,
        },
        Op::Raise { id, salary, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("salary".into(), Value::Int(*salary))],
            at: *at,
        },
        Op::TitleChange { id, title, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("title".into(), Value::Str(title.clone()))],
            at: *at,
        },
        Op::DeptChange { id, deptno, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("deptno".into(), Value::Str(deptno.clone()))],
            at: *at,
        },
        Op::Leave { id, at } => Change::Delete {
            relation: "employee".into(),
            key: *id,
            at: *at,
        },
    }
}

fn load(config: ArchConfig, ops: &[Op], archive: bool) -> ArchIS {
    let mut a = ArchIS::new(config.with_now(now()));
    a.create_relation(RelationSpec::employee()).unwrap();
    for op in ops {
        a.apply(&to_change(op)).unwrap();
        if archive {
            a.maybe_archive("employee", op.at()).unwrap();
        }
    }
    a
}

/// Brute-force ground truth: the salary of each employee on a date,
/// replayed straight from the event stream.
fn salaries_at(ops: &[Op], date: Date) -> HashMap<i64, i64> {
    let mut current: HashMap<i64, i64> = HashMap::new();
    let mut alive: HashMap<i64, bool> = HashMap::new();
    for op in ops {
        if op.at() > date {
            break;
        }
        match op {
            Op::Hire { id, salary, .. } => {
                current.insert(*id, *salary);
                alive.insert(*id, true);
            }
            Op::Raise { id, salary, .. } => {
                current.insert(*id, *salary);
            }
            Op::Leave { id, .. } => {
                alive.insert(*id, false);
            }
            _ => {}
        }
    }
    current.retain(|id, _| alive.get(id).copied().unwrap_or(false));
    current
}

fn workload() -> Vec<Op> {
    dataset::generate(&DatasetConfig {
        employees: 30,
        years: 12,
        seed: 99,
        ..Default::default()
    })
}

#[test]
fn snapshots_match_brute_force_on_many_dates() {
    let ops = workload();
    let a = load(ArchConfig::db2_like(), &ops, true);
    for year in [1986, 1989, 1992, 1995] {
        let date = Date::from_ymd(year, 7, 1).unwrap();
        let truth = salaries_at(&ops, date);
        // Per-employee snapshot through the translated SQL path.
        for (&id, &salary) in truth.iter().take(8) {
            let out = a.query(&queries::q1_xquery(id, date)).unwrap();
            let xml = out.xml_fragments().join("");
            assert!(
                xml.contains(&format!(">{salary}<")),
                "employee {id} on {date}: expected {salary}, got {xml}"
            );
        }
        // The average matches too.
        if !truth.is_empty() {
            let expected: f64 = truth.values().map(|&s| s as f64).sum::<f64>() / truth.len() as f64;
            let got = a
                .query(&queries::q2_xquery(date))
                .unwrap()
                .scalar_rows()
                .unwrap()[0][0]
                .as_f64()
                .unwrap();
            assert!(
                (got - expected).abs() < 1e-6,
                "avg salary on {date}: {got} vs {expected}"
            );
        }
    }
}

#[test]
fn all_execution_paths_agree_on_the_benchmark_queries() {
    let ops = workload();
    let heap = load(ArchConfig::db2_like(), &ops, true);
    let clustered = load(ArchConfig::atlas_like(), &ops, true);
    let unsegmented = load(ArchConfig::db2_like(), &ops, false);

    // Native XML database over the published history.
    let tamino = XmlDb::new(now());
    tamino.store("employees.xml", &heap.publish("employee").unwrap());

    let probe = {
        let date = Date::from_ymd(1992, 7, 1).unwrap();
        *salaries_at(&ops, date).keys().min().unwrap()
    };
    let d = Date::from_ymd(1992, 7, 1).unwrap();
    let w2 = Date::from_ymd(1993, 7, 1).unwrap();
    let j2 = Date::from_ymd(1995, 7, 1).unwrap();
    let qs = [
        queries::q1_xquery(probe, d),
        queries::q2_xquery(d),
        queries::q3_xquery(probe),
        queries::q4_xquery(),
        queries::q5_xquery(50_000, d, w2),
        queries::q6_xquery(d, j2),
    ];
    for q in &qs {
        let native = tamino.query_xml(q).unwrap().replace('\n', "");
        let via_heap = render(&heap, q);
        let via_clustered = render(&clustered, q);
        let via_unseg = render(&unsegmented, q);
        assert_eq!(via_heap, via_clustered, "heap vs clustered on {q}");
        assert_eq!(via_heap, via_unseg, "segmented vs unsegmented on {q}");
        assert_eq!(via_heap, native, "SQL path vs native XQuery on {q}");
    }
}

fn render(a: &ArchIS, q: &str) -> String {
    let out = a.query(q).unwrap();
    let xml = out.xml_fragments().join("");
    if xml.is_empty() {
        out.rows
            .iter()
            .flat_map(|r| r.iter().map(|v| v.render()))
            .collect::<Vec<_>>()
            .join("")
    } else {
        xml
    }
}

#[test]
fn incremental_hdoc_maintenance_equals_publication() {
    // Maintaining the H-document change by change (the native XML DB path)
    // must produce the same view as publishing from the H-tables.
    let ops = workload();
    let a = load(ArchConfig::db2_like(), &ops, true);
    let tamino = XmlDb::new(now());
    tamino.store("employees.xml", &xmldom::Element::new("employees"));
    for op in &ops {
        let change = match op {
            Op::Hire {
                id,
                name,
                salary,
                title,
                deptno,
                at,
            } => xmldb::DocChange::Insert {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: id.to_string(),
                attrs: vec![
                    ("name".into(), name.clone()),
                    ("salary".into(), salary.to_string()),
                    ("title".into(), title.clone()),
                    ("deptno".into(), deptno.clone()),
                ],
                at: *at,
            },
            Op::Raise { id, salary, at } => xmldb::DocChange::Update {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: id.to_string(),
                attr: "salary".into(),
                value: salary.to_string(),
                at: *at,
            },
            Op::TitleChange { id, title, at } => xmldb::DocChange::Update {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: id.to_string(),
                attr: "title".into(),
                value: title.clone(),
                at: *at,
            },
            Op::DeptChange { id, deptno, at } => xmldb::DocChange::Update {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: id.to_string(),
                attr: "deptno".into(),
                value: deptno.clone(),
                at: *at,
            },
            Op::Leave { id, at } => xmldb::DocChange::Delete {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: id.to_string(),
                at: *at,
            },
        };
        tamino.apply_change("employees.xml", &change).unwrap();
    }
    // Compare the two views query by query (element order can differ, so
    // compare per-employee salary histories).
    let published = XmlDb::new(now());
    published.store("employees.xml", &a.publish("employee").unwrap());
    let ids: Vec<String> = {
        let out = published
            .query_xml(r#"for $e in doc("employees.xml")/employees/employee return string($e/id)"#)
            .unwrap();
        out.lines().map(String::from).collect()
    };
    assert!(!ids.is_empty());
    for id in &ids {
        let q = format!(
            r#"for $s in doc("employees.xml")/employees/employee[id = {id}]/salary
               return $s"#
        );
        assert_eq!(
            tamino.query_xml(&q).unwrap(),
            published.query_xml(&q).unwrap(),
            "salary history of {id} differs between maintenance paths"
        );
    }
}

#[test]
fn compression_preserves_every_salary_period() {
    let ops = workload();
    let mut a = load(ArchConfig::db2_like(), &ops, true);
    let last = ops.last().unwrap().at();
    a.force_archive("employee", last).unwrap();

    // Ground truth before compression via the SQL path.
    let count_before = a
        .query(&queries::q4_xquery())
        .unwrap()
        .scalar_rows()
        .unwrap()[0][0]
        .as_int()
        .unwrap();

    a.compress_archived("employee").unwrap();
    let store = a.compressed_store("employee").unwrap();
    let count_after = queries::q4_compressed(&a, store).unwrap() as i64;
    assert_eq!(count_before, count_after);

    // Per-employee histories survive byte for byte.
    let date = Date::from_ymd(1992, 7, 1).unwrap();
    for (&id, &salary) in salaries_at(&ops, date).iter().take(10) {
        assert_eq!(
            queries::q1_compressed(&a, store, id, date).unwrap(),
            Some(salary),
            "employee {id} on {date}"
        );
        let hist = queries::q3_compressed(&a, store, id).unwrap();
        assert!(!hist.is_empty());
        // Periods are disjoint and ordered.
        for w in hist.windows(2) {
            assert!(w[0].1.end() < w[1].1.start());
        }
    }
}

#[test]
fn segment_invariants_hold_across_the_whole_load() {
    // Paper §6.1 invariants (1) and (2) for every tuple of every archived
    // segment of every attribute.
    let ops = workload();
    let a = load(ArchConfig::db2_like().with_umin(0.4), &ops, true);
    for attr in ["name", "salary", "title", "deptno"] {
        let segs = a.segments_of("employee", attr).unwrap();
        let table = a.database().table(&format!("employee_{attr}")).unwrap();
        for seg in segs
            .iter()
            .filter(|s| s.segno != archis::htable::LIVE_SEGNO)
        {
            let rows = table
                .index_lookup(&format!("employee_{attr}_by_seg"), &[Value::Int(seg.segno)])
                .unwrap();
            assert!(
                !rows.is_empty(),
                "empty archived segment {} of {attr}",
                seg.segno
            );
            for r in rows {
                let ts = r[3].as_date().unwrap();
                let te = r[4].as_date().unwrap();
                assert!(
                    ts <= seg.end,
                    "invariant (1) violated in {attr} seg {}",
                    seg.segno
                );
                assert!(
                    te >= seg.start,
                    "invariant (2) violated in {attr} seg {}",
                    seg.segno
                );
            }
        }
        // Archived segments tile time without overlap.
        let archived: Vec<_> = segs
            .iter()
            .filter(|s| s.segno != archis::htable::LIVE_SEGNO)
            .collect();
        for w in archived.windows(2) {
            assert_eq!(
                w[0].end.succ(),
                w[1].start,
                "segments of {attr} must tile time"
            );
        }
    }
}

#[test]
fn publication_respects_the_covering_constraint() {
    // "the interval of a parent node always covers that of its child
    // nodes" (paper §3).
    let ops = workload();
    let a = load(ArchConfig::db2_like(), &ops, true);
    let doc = a.publish("employee").unwrap();
    let root_iv = doc.interval().unwrap();
    for emp in doc.children_named("employee") {
        let emp_iv = emp.interval().unwrap();
        assert!(root_iv.contains(&emp_iv) || root_iv.start() <= emp_iv.start());
        for child in emp.child_elements() {
            let civ = child.interval().unwrap();
            assert!(
                emp_iv.contains(&civ),
                "covering constraint violated: {} {civ:?} not in {emp_iv:?}",
                child.name
            );
        }
        // Attribute periods of one attribute are coalesced: no two
        // adjacent value-equivalent periods.
        for attr in ["salary", "title", "deptno", "name"] {
            let periods: Vec<(String, Interval)> = emp
                .children_named(attr)
                .map(|e| (e.text_content(), e.interval().unwrap()))
                .collect();
            for w in periods.windows(2) {
                assert!(
                    w[0].1.end() < w[1].1.start(),
                    "{attr} periods must be ordered"
                );
                if w[0].0 == w[1].0 {
                    assert!(
                        !w[0].1.joinable(&w[1].1),
                        "{attr} has uncoalesced value-equivalent periods"
                    );
                }
            }
        }
    }
    let _ = END_OF_TIME;
}

#[test]
fn publication_stays_complete_after_compression() {
    let ops = workload();
    let mut a = load(ArchConfig::db2_like(), &ops, true);
    let before = a.publish("employee").unwrap().to_xml();
    a.force_archive("employee", ops.last().unwrap().at())
        .unwrap();
    a.compress_archived("employee").unwrap();
    let after = a.publish("employee").unwrap().to_xml();
    assert_eq!(
        before, after,
        "compression must not change the H-document view"
    );
}

#[test]
fn compression_is_incremental_across_archival_cycles() {
    let ops = workload();
    let split = ops.len() / 2;
    let mut a = load(ArchConfig::db2_like(), &ops[..split], false);
    // Cycle 1: archive + compress the first half.
    a.force_archive("employee", ops[split - 1].at()).unwrap();
    let blocks1 = a.compress_archived("employee").unwrap();
    // Keep living: replay the second half, archive + compress again.
    for op in &ops[split..] {
        a.apply(&to_change(op)).unwrap();
    }
    a.force_archive("employee", ops.last().unwrap().at())
        .unwrap();
    let blocks2 = a.compress_archived("employee").unwrap();
    assert!(
        blocks2 > blocks1,
        "second pass must add blocks ({blocks1} -> {blocks2})"
    );
    // Every query still answers from the two-generation store.
    let store = a.compressed_store("employee").unwrap();
    let d_early = Date::from_ymd(1987, 7, 1).unwrap();
    let d_late = ops.last().unwrap().at() - 30;
    for d in [d_early, d_late] {
        let truth = salaries_at(&ops, d);
        for (&id, &salary) in truth.iter().take(5) {
            assert_eq!(
                queries::q1_compressed(&a, store, id, d).unwrap(),
                Some(salary),
                "employee {id} on {d}"
            );
        }
    }
    // And the published view equals an uncompressed twin's.
    let twin = load(ArchConfig::db2_like(), &ops, false);
    assert_eq!(
        a.publish("employee").unwrap().to_xml(),
        twin.publish("employee").unwrap().to_xml()
    );
}

#[test]
fn snapshot_on_segment_boundary_dates_is_exact() {
    // A snapshot on the exact segend / segstart day must not lose rows.
    let ops = workload();
    let a = load(ArchConfig::db2_like().with_umin(0.4), &ops, true);
    let segs = a.segments_of("employee", "salary").unwrap();
    for seg in segs
        .iter()
        .filter(|s| s.segno != archis::htable::LIVE_SEGNO)
        .take(3)
    {
        for d in [seg.start, seg.end] {
            let truth = salaries_at(&ops, d);
            if truth.is_empty() {
                continue;
            }
            let expected: f64 = truth.values().map(|&s| s as f64).sum::<f64>() / truth.len() as f64;
            let got = a
                .query(&queries::q2_xquery(d))
                .unwrap()
                .scalar_rows()
                .unwrap()[0][0]
                .as_f64()
                .unwrap_or(f64::NAN);
            assert!(
                (got - expected).abs() < 1e-6,
                "snapshot on boundary {d} (segment {}): {got} vs {expected}",
                seg.segno
            );
        }
    }
}
