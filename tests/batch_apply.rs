//! Batched write path (`ArchIS::apply_all` / `Archiver::apply_batch`):
//! batching is a performance optimization, not a semantic change. A store
//! fed whole batches must be table-for-table identical to one fed the same
//! changes one at a time, and each `apply_all` call is a unit of atomicity
//! — a crash at any fsync boundary recovers to a batch boundary, never to
//! a half-applied batch.

use archis::{ArchConfig, ArchIS, Change, RelationSpec};
use dataset::{DatasetConfig, Op};
use relstore::failpoint::{FailLog, FailPager, Failpoints};
use relstore::pager::MemPager;
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, Value};
use std::sync::Arc;
use temporal::Date;

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

fn to_change(op: &Op) -> Change {
    match op {
        Op::Hire {
            id,
            name,
            salary,
            title,
            deptno,
            at,
        } => Change::Insert {
            relation: "employee".into(),
            key: *id,
            values: vec![
                ("name".into(), Value::Str(name.clone())),
                ("salary".into(), Value::Int(*salary)),
                ("title".into(), Value::Str(title.clone())),
                ("deptno".into(), Value::Str(deptno.clone())),
            ],
            at: *at,
        },
        Op::Raise { id, salary, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("salary".into(), Value::Int(*salary))],
            at: *at,
        },
        Op::TitleChange { id, title, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("title".into(), Value::Str(title.clone()))],
            at: *at,
        },
        Op::DeptChange { id, deptno, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("deptno".into(), Value::Str(deptno.clone()))],
            at: *at,
        },
        Op::Leave { id, at } => Change::Delete {
            relation: "employee".into(),
            key: *id,
            at: *at,
        },
    }
}

/// Every table in the database as (name, sorted rows) — the full observable
/// relational state, independent of physical row order.
fn table_dump(a: &ArchIS) -> Vec<(String, Vec<Vec<Value>>)> {
    let db = a.database();
    db.table_names()
        .into_iter()
        .map(|name| {
            let mut rows = db.table(&name).unwrap().scan().unwrap();
            rows.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            (name, rows)
        })
        .collect()
}

fn assert_no_violations(a: &ArchIS, ctx: &str) {
    let violations = a
        .archiver_of("employee")
        .unwrap()
        .verify_invariants(a.database())
        .unwrap();
    assert!(
        violations.is_empty(),
        "{ctx}: invariant violations: {violations:#?}"
    );
}

/// Feeding the archiver whole batches produces byte-for-byte the same
/// H-tables as feeding it the same changes one at a time — including with
/// archival passes interleaved between batches, so the batched counters
/// drive identical usefulness decisions.
#[test]
fn batch_apply_matches_one_at_a_time() {
    let ops = dataset::generate(&DatasetConfig {
        employees: 24,
        years: 6,
        seed: 11,
        ..Default::default()
    });
    let changes: Vec<Change> = ops.iter().map(to_change).collect();
    assert!(changes.len() > 60, "dataset too small to exercise batching");

    let mut single = ArchIS::new(ArchConfig::default());
    single.create_relation(RelationSpec::employee()).unwrap();
    let mut batched = ArchIS::new(ArchConfig::default());
    batched.create_relation(RelationSpec::employee()).unwrap();

    // Batch size 7 deliberately straddles hire runs, so batches mix the
    // distinct-key insert fast path with update/delete fallbacks.
    for chunk in changes.chunks(7) {
        for c in chunk {
            single.apply(c).unwrap();
        }
        batched.apply_all(chunk).unwrap();
        // Archive at the same stream position on both stores; identical
        // usefulness counters must yield identical segmentation.
        let at = chunk.last().unwrap().at();
        let n1 = single.maybe_archive("employee", at).unwrap();
        let n2 = batched.maybe_archive("employee", at).unwrap();
        assert_eq!(n1, n2, "archival decisions diverged at {at}");
    }
    let end = changes.last().unwrap().at();
    single.force_archive("employee", end).unwrap();
    batched.force_archive("employee", end).unwrap();

    assert_no_violations(&single, "single");
    assert_no_violations(&batched, "batched");

    let dump_s = table_dump(&single);
    let dump_b = table_dump(&batched);
    assert_eq!(
        dump_s.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        dump_b.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "table sets differ"
    );
    for ((name, rows_s), (_, rows_b)) in dump_s.iter().zip(dump_b.iter()) {
        assert_eq!(
            rows_s, rows_b,
            "table {name} diverged between batched and single apply"
        );
    }
}

/// A batch with a bad change (duplicate-key insert) must fail and the
/// failed `apply_all` must not commit — the store still matches its state
/// from before the call after a WAL-backed reopen-style rollback check.
#[test]
fn batch_apply_rejects_duplicate_key_insert() {
    let hire = |id: i64, day: &str| Change::Insert {
        relation: "employee".into(),
        key: id,
        values: vec![
            ("name".into(), Value::Str(format!("e{id}"))),
            ("salary".into(), Value::Int(1000 + id)),
            ("title".into(), Value::Str("Engineer".into())),
            ("deptno".into(), Value::Str("d01".into())),
        ],
        at: d(day),
    };
    let mut a = ArchIS::new(ArchConfig::default());
    a.create_relation(RelationSpec::employee()).unwrap();
    a.apply_all(&[hire(1, "1995-01-01"), hire(2, "1995-01-02")])
        .unwrap();
    // Re-hiring key 2 in a batch must error like the one-at-a-time path.
    let err = a.apply_all(&[hire(3, "1995-02-01"), hire(2, "1995-02-02")]);
    assert!(
        err.is_err(),
        "duplicate-key insert slipped through the batch path"
    );
    assert_no_violations(&a, "after rejected batch");
}

// ---------------------------------------------------------------------------
// Crash torture: each `apply_all` call commits atomically, so crashing the
// machine at *every* fsync boundary (and at seeded raw-write positions
// within a boundary) must always recover to a whole-batch state. The full
// boundary sweep runs under `--features failpoints`; the default build
// strides through it so `cargo test -q` stays fast.
// ---------------------------------------------------------------------------

const BATCH: usize = 5;
const HIRES: i64 = 40;

struct Media {
    fp: Arc<Failpoints>,
    base: Arc<FailPager>,
    log: Arc<FailLog>,
}

fn media(seed: u64) -> Media {
    let fp = Failpoints::new(seed);
    let base = Arc::new(FailPager::new(fp.clone(), Arc::new(MemPager::new())));
    let log = Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new())));
    Media { fp, base, log }
}

fn archis_on(m: &Media, group: usize) -> archis::Result<ArchIS> {
    let pager = Arc::new(WalPager::open(
        m.base.clone(),
        m.log.clone(),
        WalConfig::with_group_commit(group),
    )?);
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 256)))?;
    ArchIS::open_with_database(db, ArchConfig::default())
}

fn hires() -> Vec<Change> {
    (1..=HIRES)
        .map(|id| Change::Insert {
            relation: "employee".into(),
            key: id,
            values: vec![
                ("name".into(), Value::Str(format!("e{id}"))),
                ("salary".into(), Value::Int(1000 * id)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str("d01".into())),
            ],
            at: Date::from_ymd(1990 + (id / 12) as i32, 1 + (id % 12) as u32, 1).unwrap(),
        })
        .collect()
}

/// Distinct-key hires applied in batches of `BATCH` through `apply_all`;
/// each call is one WAL transaction.
fn batched_workload(m: &Media, group: usize, changes: &[Change]) -> archis::Result<()> {
    let mut a = archis_on(m, group)?;
    a.create_relation(RelationSpec::employee())?;
    for chunk in changes.chunks(BATCH) {
        a.apply_all(chunk)?;
    }
    a.checkpoint()?;
    Ok(())
}

/// Reboot and assert the recovered store sits exactly on a batch boundary:
/// the key table holds a multiple of `BATCH` rows (every insert adds one),
/// and the archiver invariants hold. Returns the recovered row count, or
/// None if the crash predates the relation's creating transaction.
fn recovered_batch_boundary(m: &Media, ctx: &str) -> Option<i64> {
    let a = archis_on(m, 1).unwrap_or_else(|e| panic!("{ctx}: recovery open failed: {e}"));
    if a.relation("employee").is_err() {
        return None;
    }
    assert_no_violations(&a, ctx);
    let kt = archis::htable::key_table(&RelationSpec::employee());
    let rows = a.database().table(&kt).unwrap().row_count() as i64;
    assert!(
        rows % BATCH as i64 == 0 && rows <= HIRES,
        "{ctx}: recovered {rows} key rows — inside a batch, not at a boundary"
    );
    // The current table must agree (inserts only, no deletes in this load).
    let cur = a.database().table("employee").unwrap().row_count() as i64;
    assert_eq!(cur, rows, "{ctx}: current table disagrees with key table");
    Some(rows)
}

#[test]
fn apply_batch_crashes_recover_to_batch_boundaries() {
    let changes = hires();

    // Dry run on disarmed media to learn how many fsyncs and raw writes
    // the workload performs end to end.
    let dry = media(0);
    batched_workload(&dry, 1, &changes).expect("dry run must not crash");
    let total_syncs = dry.fp.syncs();
    let total_writes = dry.fp.writes();
    assert!(
        total_syncs >= changes.len() as u64 / BATCH as u64,
        "workload barely syncs"
    );
    assert_eq!(
        recovered_batch_boundary(&dry, "dry run"),
        Some(HIRES),
        "dry run lost hires"
    );

    // Sweep every fsync boundary (strided in the default build) with both
    // group-commit settings and torn/clean tails.
    let stride = if cfg!(feature = "failpoints") { 1 } else { 4 };
    let mut boundaries_hit = 0u64;
    for pos in (1..=total_syncs).step_by(stride) {
        let m = media(pos);
        m.fp.set_tear_writes(pos % 2 == 0);
        let group = [1usize, 4][(pos % 2) as usize];
        m.fp.crash_after_syncs(pos);
        match batched_workload(&m, group, &changes) {
            Ok(()) => {} // higher group-commit setting syncs less; crash never fired
            Err(_) => assert!(
                m.fp.crashed(),
                "sync pos {pos}: died to a non-injected error"
            ),
        }
        m.fp.revive();
        if recovered_batch_boundary(&m, &format!("sync pos {pos} group {group}")).is_some() {
            boundaries_hit += 1;
        }
    }
    assert!(
        boundaries_hit > 0,
        "no sweep position recovered a non-empty store"
    );

    // Seeded raw-write positions catch crashes *between* fsyncs (mid-page,
    // torn log tail) — recovery must still land on a batch boundary.
    let wseeds: u64 = if cfg!(feature = "failpoints") {
        120
    } else {
        24
    };
    for seed in 0..wseeds {
        let m = media(seed);
        m.fp.set_tear_writes(seed % 3 != 0);
        let pos = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % total_writes + 1;
        m.fp.crash_after_writes(pos);
        match batched_workload(&m, 1, &changes) {
            Ok(()) => {}
            Err(_) => assert!(m.fp.crashed(), "seed {seed}: died to a non-injected error"),
        }
        m.fp.revive();
        recovered_batch_boundary(&m, &format!("write seed {seed} pos {pos}"));
    }
}
