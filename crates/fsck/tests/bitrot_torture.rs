//! Seeded bit-rot torture: build one realistic ArchIS database (history,
//! archived segments, compressed blocks), then for hundreds of seeds copy
//! it, flip one random bit somewhere in the page file, and demand that
//!
//! * the media scrub detects **every** single-bit flip (the CRC-32 page
//!   stamp has Hamming distance > 1 over a 4 KiB slot, so one flipped bit
//!   — payload or stored checksum — always mismatches), pinned to the
//!   damaged page, and
//! * `repair` never panics or errors, and whenever it reports the file
//!   fully healed (exit 0 — the flip landed in derived or orphaned data),
//!   the user-visible table contents are byte-identical to pristine.

#![cfg(feature = "failpoints")]

use archis::{ArchConfig, ArchIS, RelationSpec};
use relstore::{BitRot, Database, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use temporal::Date;

const SEEDS: u64 = 240;
const REPAIR_EVERY: u64 = 8;

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archis-bitrot-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn remove_wal(path: &Path) {
    let mut wal = path.as_os_str().to_os_string();
    wal.push(".wal");
    std::fs::remove_file(PathBuf::from(wal)).ok();
}

/// A checkpointed database with live history, two archived segment
/// generations, and a compressed store — so random flips land on heap
/// chains, B+tree nodes, catalog/meta rows, and BlockZIP blobs alike.
fn build_pristine(path: &Path) {
    let mut a = ArchIS::open_file(path, ArchConfig::default()).unwrap();
    a.create_relation(RelationSpec::employee()).unwrap();
    for id in 1..=40i64 {
        a.insert(
            "employee",
            1000 + id,
            vec![
                ("name".into(), Value::Str(format!("emp-{id}"))),
                ("salary".into(), Value::Int(50_000 + id * 100)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str(format!("d{:02}", id % 7))),
            ],
            d("1995-01-01"),
        )
        .unwrap();
    }
    for id in 1..=40i64 {
        a.update(
            "employee",
            1000 + id,
            vec![("salary".into(), Value::Int(60_000 + id * 100))],
            d("1995-06-01"),
        )
        .unwrap();
    }
    a.force_archive("employee", d("1995-12-31")).unwrap();
    for id in 1..=40i64 {
        a.update(
            "employee",
            1000 + id,
            vec![("title".into(), Value::Str("Senior Engineer".into()))],
            d("1996-06-01"),
        )
        .unwrap();
    }
    a.force_archive("employee", d("1996-12-31")).unwrap();
    a.compress_archived("employee").unwrap();
    a.checkpoint().unwrap();
}

/// Sorted dump of every table — the "user data" equality oracle.
fn dump_all(path: &Path) -> BTreeMap<String, Vec<String>> {
    let db = Database::open_file(path, 512).unwrap();
    let mut out = BTreeMap::new();
    for name in db.table_names() {
        let mut rows: Vec<String> = db
            .table(&name)
            .unwrap()
            .scan()
            .unwrap()
            .into_iter()
            .map(|r| format!("{r:?}"))
            .collect();
        rows.sort();
        out.insert(name, rows);
    }
    out
}

#[test]
fn every_single_bit_flip_is_detected_and_repair_is_safe() {
    let dir = tmpdir();
    let pristine = dir.join("pristine.pages");
    build_pristine(&pristine);
    remove_wal(&pristine);
    let pristine_dump = dump_all(&pristine);
    let scratch = dir.join("scratch.pages");

    let mut detected = 0u64;
    let mut repairs_run = 0u64;
    let mut healed = 0u64;
    for seed in 0..SEEDS {
        std::fs::copy(&pristine, &scratch).unwrap();
        remove_wal(&scratch);
        let flip = BitRot::new(seed)
            .flip_random(&scratch)
            .unwrap()
            .expect("pristine file has pages");

        let scrub = archis_fsck::scrub(&scratch).unwrap();
        assert_eq!(
            scrub.exit_code(),
            1,
            "seed {seed}: flip {flip:?} went undetected"
        );
        assert!(
            scrub.findings.iter().any(|f| f.page == Some(flip.page_id)),
            "seed {seed}: flip {flip:?} detected but not pinned to its page: {}",
            scrub.render()
        );
        detected += 1;

        if seed % REPAIR_EVERY == 0 {
            repairs_run += 1;
            let outcome = archis_fsck::repair(&scratch).unwrap();
            if outcome.exit_code() == 0 {
                healed += 1;
                assert_eq!(
                    dump_all(&scratch),
                    pristine_dump,
                    "seed {seed}: repair of {flip:?} reported clean but changed user data"
                );
                assert_eq!(archis_fsck::check(&scratch).unwrap().exit_code(), 0);
            }
        }
    }
    assert_eq!(detected, SEEDS, "single-bit detection must be 100%");
    assert!(repairs_run >= SEEDS / REPAIR_EVERY);
    // The fixture contains plenty of derived/orphaned pages (B+tree index
    // nodes, stranded pre-archive heap pages), so some seeds must heal.
    assert!(healed > 0, "no seed ever repaired to a clean file");
    std::fs::remove_dir_all(&dir).ok();
}
