//! Property: *any* single-bit flip, at any page and any bit offset within
//! the page slot (payload or stored checksum), is detected by the media
//! scrub. Complements the seeded torture run (which samples randomly) by
//! letting proptest drive the page/bit choice and shrink failures.

use proptest::prelude::*;
use relstore::value::{DataType, Field, Schema, Value};
use relstore::{flip_bit_at, Database, PageFileLayout, StorageKind};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn pristine() -> &'static PathBuf {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("archis-propflip-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pristine.pages");
        let db = Database::open_file(&path, 256).unwrap();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("payload", DataType::Str),
        ]);
        let t = db
            .create_table("t", schema, StorageKind::Heap, &[])
            .unwrap();
        t.create_index("t_by_id", &["id"]).unwrap();
        for id in 0..400 {
            t.insert(vec![Value::Int(id), Value::Str(format!("row-{id:04}"))])
                .unwrap();
        }
        db.checkpoint().unwrap();
        path
    })
}

fn scratch_copy(src: &Path, case: &str) -> PathBuf {
    let dst = src.with_file_name(format!("scratch-{case}.pages"));
    std::fs::copy(src, &dst).unwrap();
    dst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_single_bit_flip_is_detected(page_pick in any::<u64>(), bit_pick in any::<u64>()) {
        let src = pristine();
        let layout = PageFileLayout::of_file(src).unwrap();
        prop_assert!(layout.pages > 0);
        let page = page_pick % layout.pages;
        let bit = bit_pick % (layout.slot_len * 8);

        let scratch = scratch_copy(src, &format!("{page}-{bit}"));
        let flip = flip_bit_at(&scratch, page, bit).unwrap();
        prop_assert_eq!(flip.page_id, page);

        let outcome = archis_fsck::scrub(&scratch).unwrap();
        std::fs::remove_file(&scratch).ok();
        prop_assert_eq!(outcome.exit_code(), 1, "flip {:?} undetected", flip);
        prop_assert!(
            outcome.findings.iter().any(|f| f.page == Some(page)),
            "flip {:?} not pinned to page {}: {}", flip, page, outcome.render()
        );
    }
}
