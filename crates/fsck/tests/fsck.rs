//! End-to-end fsck behavior: clean databases check clean, targeted at-rest
//! corruption is detected and classified, index damage is repaired from
//! base storage with user data intact, and base-storage damage is reported
//! without inventing data. Also the WAL-recovery checksum regression: a
//! crash-recovered, checkpointed base file is checksum-valid everywhere.

use relstore::value::{DataType, Field, Schema, Value};
use relstore::{flip_bit_at, Database, HeapFile, StorageKind, WalConfig};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("archis-fsck-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("name", DataType::Str),
    ])
}

fn row(id: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(format!("name-{id}"))]
}

/// Build a durable table with a secondary index; return the pristine rows
/// and the page ids of (index root, heap first page).
fn build_fixture(path: &std::path::Path) -> (Vec<Vec<Value>>, u64, u64) {
    let db = Database::open_file(path, 256).unwrap();
    let t = db
        .create_table("people", schema(), StorageKind::Heap, &[])
        .unwrap();
    t.create_index("people_by_id", &["id"]).unwrap();
    for id in 0..500 {
        t.insert(row(id)).unwrap();
    }
    db.checkpoint().unwrap();
    let roots = t.roots();
    let mut rows = t.scan().unwrap();
    rows.sort_by_key(|r| format!("{r:?}"));
    (rows, roots.indexes[0].1, roots.base)
}

fn dump(path: &std::path::Path, table: &str) -> Vec<Vec<Value>> {
    let db = Database::open_file(path, 256).unwrap();
    let mut rows = db.table(table).unwrap().scan().unwrap();
    rows.sort_by_key(|r| format!("{r:?}"));
    rows
}

#[test]
fn clean_database_scrubs_and_checks_clean() {
    let dir = tmpdir("clean");
    let path = dir.join("db.pages");
    build_fixture(&path);
    let scrub = archis_fsck::scrub(&path).unwrap();
    assert_eq!(scrub.exit_code(), 0, "{}", scrub.render());
    assert!(scrub.pages > 0);
    let check = archis_fsck::check(&path).unwrap();
    assert_eq!(check.exit_code(), 0, "{}", check.render());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_page_bit_flip_is_detected_and_repaired() {
    let dir = tmpdir("idxflip");
    let path = dir.join("db.pages");
    let (pristine, index_root, _) = build_fixture(&path);

    flip_bit_at(&path, index_root, 8 * 100 + 3).unwrap();

    // Detection: scrub pins the page, check classifies the index.
    let scrub = archis_fsck::scrub(&path).unwrap();
    assert_eq!(scrub.exit_code(), 1);
    assert!(scrub.findings.iter().any(|f| f.page == Some(index_root)));
    let check = archis_fsck::check(&path).unwrap();
    assert!(
        check.findings.iter().any(|f| f.kind == "index"),
        "{}",
        check.render()
    );
    assert!(
        !check.findings.iter().any(|f| f.kind == "base"),
        "index damage must not be misreported as base damage: {}",
        check.render()
    );

    // Repair: the index is derived data, so fsck must fully heal the file.
    let repair = archis_fsck::repair(&path).unwrap();
    assert_eq!(repair.exit_code(), 0, "{}", repair.render());
    assert!(
        repair.repairs.iter().any(|r| r.contains("rebuilt index")),
        "{}",
        repair.render()
    );
    assert_eq!(dump(&path, "people"), pristine, "user data intact");
    assert_eq!(archis_fsck::check(&path).unwrap().exit_code(), 0);
    assert_eq!(archis_fsck::scrub(&path).unwrap().exit_code(), 0);

    // The repaired index answers queries again.
    let db = Database::open_file(&path, 256).unwrap();
    let hits = db
        .table("people")
        .unwrap()
        .index_lookup("people_by_id", &[Value::Int(123)])
        .unwrap();
    assert_eq!(hits.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heap_page_bit_flip_is_reported_not_repaired() {
    let dir = tmpdir("heapflip");
    let path = dir.join("db.pages");
    let (_, _, heap_first) = build_fixture(&path);

    // Damage a mid-chain heap page, not the first one: the first page is
    // read while loading the table at open, so damage there surfaces as
    // an open failure rather than a scan-time base finding.
    let heap_last = {
        let db = Database::open_file(&path, 256).unwrap();
        let heap = HeapFile::open(db.pool().clone(), heap_first).unwrap();
        let last = heap
            .scan()
            .unwrap()
            .iter()
            .map(|(rid, _)| rid.page)
            .max()
            .unwrap();
        assert_ne!(last, heap_first, "fixture must span several heap pages");
        last
    };
    flip_bit_at(&path, heap_last, 8 * 64).unwrap();

    let check = archis_fsck::check(&path).unwrap();
    assert_eq!(check.exit_code(), 1);
    assert!(
        check.findings.iter().any(|f| f.kind == "base"),
        "{}",
        check.render()
    );

    // Repair must not abort, must not invent data, and must keep
    // reporting the damage.
    let repair = archis_fsck::repair(&path).unwrap();
    assert_eq!(repair.exit_code(), 1, "{}", repair.render());
    assert!(repair
        .findings
        .iter()
        .any(|f| f.kind == "base" || f.page == Some(heap_last)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_index_degrades_queries_to_base_scan() {
    let dir = tmpdir("fallback");
    let path = dir.join("db.pages");
    let (_, index_root, _) = build_fixture(&path);
    flip_bit_at(&path, index_root, 8 * 2048).unwrap();

    // Read-only lookups still answer from base storage.
    let db = Database::open_file(&path, 256).unwrap();
    let hits = db
        .table("people")
        .unwrap()
        .index_lookup("people_by_id", &[Value::Int(321)])
        .unwrap();
    assert_eq!(hits.len(), 1, "index corruption must degrade, not fail");
    assert_eq!(hits[0][1], Value::Str("name-321".into()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_recovery_leaves_every_page_checksum_valid() {
    let dir = tmpdir("walcrc");
    let path = dir.join("db.pages");
    {
        let db = Database::open_wal(&path, 256, WalConfig::with_group_commit(1)).unwrap();
        let t = db
            .create_table("people", schema(), StorageKind::Heap, &[])
            .unwrap();
        t.create_index("people_by_id", &["id"]).unwrap();
        for id in 0..300 {
            t.insert(row(id)).unwrap();
        }
        db.commit().unwrap();
        // Unclean close: no checkpoint — recovery must replay the log.
    }
    {
        // Recovery + checkpoint publishes every replayed image into the
        // base file through the stamping write path.
        let db = Database::open_wal(&path, 256, WalConfig::default()).unwrap();
        assert_eq!(db.table("people").unwrap().row_count(), 300);
        db.checkpoint().unwrap();
    }
    let scrub = archis_fsck::scrub(&path).unwrap();
    assert_eq!(scrub.exit_code(), 0, "{}", scrub.render());
    let check = archis_fsck::check(&path).unwrap();
    assert_eq!(check.exit_code(), 0, "{}", check.render());
    std::fs::remove_dir_all(&dir).ok();
}

/// PR-5 degradation path under concurrent access: when an index root is
/// corrupt, every reader thread — index probes and full scans racing on
/// the same shared `Database` — must degrade to base storage and agree
/// with the pristine data, with no panics, no missed rows, and no torn
/// fallback state while the corruption flag flips.
#[test]
fn corrupt_index_degrades_consistently_under_concurrent_readers() {
    let dir = tmpdir("fallback-mt");
    let path = dir.join("db.pages");
    let (pristine, index_root, _) = build_fixture(&path);
    flip_bit_at(&path, index_root, 8 * 2048).unwrap();

    let db = Database::open_file(&path, 256).unwrap();
    let db = &db;
    let pristine = &pristine;
    std::thread::scope(|s| {
        // Probing threads: every lookup answers from base storage.
        for t in 0..4u64 {
            s.spawn(move || {
                let table = db.table("people").unwrap();
                for i in 0..100 {
                    let id = ((t * 131 + i * 7) % 500) as i64;
                    let hits = table
                        .index_lookup("people_by_id", &[Value::Int(id)])
                        .unwrap();
                    assert_eq!(hits.len(), 1, "thread {t}: id {id} lost in fallback");
                    assert_eq!(hits[0][1], Value::Str(format!("name-{id}")));
                }
            });
        }
        // Scanning threads: full scans bypass the index and must always
        // see the complete pristine row set.
        for t in 0..2 {
            s.spawn(move || {
                for _ in 0..10 {
                    let mut rows = db.table("people").unwrap().scan().unwrap();
                    rows.sort_by_key(|r| format!("{r:?}"));
                    assert_eq!(&rows, pristine, "scanner {t}: rows diverged");
                }
            });
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// Stats-catalog drift: tamper with the planner's per-segment statistics
/// (wrong row count, narrowed `tend` extreme — the kind of drift that
/// would make pruning *unsound*), and fsck must classify it as a `stats`
/// finding, repair it by recomputing from the data, and check clean after.
#[test]
fn stats_catalog_drift_is_detected_and_recomputed() {
    use archis::{ArchConfig, ArchIS, RelationSpec};
    use temporal::Date;
    let d = |s: &str| Date::parse(s).unwrap();
    let dir = tmpdir("statsdrift");
    let path = dir.join("db.pages");
    {
        let mut a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        a.create_relation(RelationSpec::employee()).unwrap();
        for id in 1..=10i64 {
            a.insert(
                "employee",
                id,
                vec![
                    ("name".into(), Value::Str(format!("emp-{id}"))),
                    ("salary".into(), Value::Int(50_000 + id)),
                    ("title".into(), Value::Str("Engineer".into())),
                    ("deptno".into(), Value::Str("d01".into())),
                ],
                d("1995-01-01"),
            )
            .unwrap();
            a.update(
                "employee",
                id,
                vec![("salary".into(), Value::Int(60_000 + id))],
                d("1995-06-01"),
            )
            .unwrap();
        }
        a.force_archive("employee", d("1995-12-31")).unwrap();
        a.checkpoint().unwrap();
    }
    assert_eq!(
        archis_fsck::check(&path).unwrap().exit_code(),
        0,
        "fixture checks clean before tampering"
    );

    // Tamper: shrink the row count and clip temax below the real maximum
    // (an unsound extreme would let the planner prune a live segment).
    {
        let a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        let mut stat = a.segment_stats("employee", "salary").unwrap()[0].clone();
        stat.rows -= 3;
        stat.temax = d("1995-02-01");
        relstore::planner::store_stat(a.database(), &stat).unwrap();
        a.checkpoint().unwrap();
    }

    let check = archis_fsck::check(&path).unwrap();
    assert_eq!(check.exit_code(), 1);
    let stats_findings: Vec<_> = check
        .findings
        .iter()
        .filter(|f| f.kind == "stats")
        .collect();
    assert!(
        stats_findings.iter().any(|f| f.message.contains("rows"))
            && stats_findings.iter().any(|f| f.message.contains("temax")),
        "both tampered fields surface: {}",
        check.render()
    );

    let repair = archis_fsck::repair(&path).unwrap();
    assert_eq!(repair.exit_code(), 0, "{}", repair.render());
    assert!(
        repair
            .repairs
            .iter()
            .any(|r| r.contains("statistics catalog recomputed")),
        "{}",
        repair.render()
    );
    assert_eq!(archis_fsck::check(&path).unwrap().exit_code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A stats entry for a segment that holds no rows (phantom) and a segment
/// with rows but no entry (missing) are both findings; repair recomputes
/// the catalog wholesale.
#[test]
fn missing_and_phantom_stats_entries_are_findings() {
    use archis::{ArchConfig, ArchIS, RelationSpec};
    use temporal::Date;
    let d = |s: &str| Date::parse(s).unwrap();
    let dir = tmpdir("statsphantom");
    let path = dir.join("db.pages");
    {
        let mut a = ArchIS::open_file(&path, ArchConfig::default()).unwrap();
        a.create_relation(RelationSpec::employee()).unwrap();
        a.insert(
            "employee",
            1,
            vec![
                ("name".into(), Value::Str("solo".into())),
                ("salary".into(), Value::Int(50_000)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str("d01".into())),
            ],
            d("1995-01-01"),
        )
        .unwrap();
        a.update(
            "employee",
            1,
            vec![("salary".into(), Value::Int(60_000))],
            d("1995-06-01"),
        )
        .unwrap();
        a.force_archive("employee", d("1995-12-31")).unwrap();

        // Phantom: an entry for a segment number that does not exist.
        let mut phantom = a.segment_stats("employee", "salary").unwrap()[0].clone();
        phantom.segno = 99;
        relstore::planner::store_stat(a.database(), &phantom).unwrap();
        // Missing: drop the real entry for the title H-table.
        relstore::planner::clear_stats(a.database(), "employee_title").unwrap();
        a.checkpoint().unwrap();
    }

    let check = archis_fsck::check(&path).unwrap();
    assert!(
        check
            .findings
            .iter()
            .any(|f| f.kind == "stats" && f.message.contains("no rows")),
        "phantom entry surfaces: {}",
        check.render()
    );
    assert!(
        check
            .findings
            .iter()
            .any(|f| f.kind == "stats" && f.message.contains("no stats entry")),
        "missing entry surfaces: {}",
        check.render()
    );
    let repair = archis_fsck::repair(&path).unwrap();
    assert_eq!(repair.exit_code(), 0, "{}", repair.render());
    assert_eq!(archis_fsck::check(&path).unwrap().exit_code(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
