//! Command-line front end: `archis-fsck <check|repair|scrub> <pagefile>`.
//!
//! Exit codes follow the archis-lint convention: 0 clean, 1 findings
//! (or unrepairable damage remaining in repair mode), 2 operational error
//! (bad usage, missing file, I/O failure).

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: archis-fsck <check|repair|scrub> <pagefile>");
    eprintln!("       archis-fsck check <replica-pagefile> --against <primary-pagefile>");
    eprintln!();
    eprintln!("  scrub   verify every page checksum (raw media pass)");
    eprintln!("  check   scrub + full structural audit (catalog, heaps,");
    eprintln!("          b+trees, counters, segment statistics, archiver");
    eprintln!("          invariants, blocks); with --against, also verify");
    eprintln!("          the replica converged byte-identically to the");
    eprintln!("          primary's shipping stream at its replayed LSN");
    eprintln!("  repair  check, then rebuild corrupt indexes / counters /");
    eprintln!("          segment stats from base storage and clean");
    eprintln!("          orphaned pages");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [mode, file] => {
            if !std::path::Path::new(file).is_file() {
                eprintln!("archis-fsck: {file}: no such file");
                return ExitCode::from(2);
            }
            match mode.as_str() {
                "scrub" => archis_fsck::scrub(file),
                "check" => archis_fsck::check(file),
                "repair" => archis_fsck::repair(file),
                _ => return usage(),
            }
        }
        [mode, file, flag, primary] if mode == "check" && flag == "--against" => {
            if !std::path::Path::new(primary).is_file() {
                eprintln!("archis-fsck: {primary}: no such file");
                return ExitCode::from(2);
            }
            archis_fsck::check_against(file, primary)
        }
        _ => return usage(),
    };
    let file = &args[1]; // lint:allow(every surviving match arm has >= 2 args)
    match result {
        Ok(outcome) => {
            print!("{}", outcome.render());
            println!(
                "{file}: {} pages, {} finding(s), {} repair(s)",
                outcome.pages,
                outcome.findings.len(),
                outcome.repairs.len()
            );
            ExitCode::from(outcome.exit_code() as u8)
        }
        Err(e) => {
            eprintln!("archis-fsck: {e}");
            ExitCode::from(2)
        }
    }
}
