//! Offline checker and repair tool for ArchIS page files.
//!
//! Three modes, layered from cheapest to most thorough:
//!
//! * **scrub** — raw media pass: read every page slot in the base file and
//!   verify its trailing CRC-32. No structure is interpreted; this is the
//!   "does the disk still hold what we wrote" question, answerable even
//!   when the catalog itself is damaged.
//! * **check** — scrub plus a full structural audit: open the database
//!   (replaying any WAL tail), walk the catalog, every table's base
//!   storage, every secondary index, the cached row counters, the
//!   planner's per-segment statistics catalog, the ArchIS archiver
//!   invariants (paper §6.1), and decode every compressed block.
//! * **repair** — check, then fix everything *derived*: corrupt secondary
//!   indexes are rebuilt from base storage with a bottom-up bulk load,
//!   diverged row counters are recounted, drifted segment statistics are
//!   recomputed from the data, and — once every structure
//!   verifies clean — orphaned corrupt pages (damage stranded outside any
//!   live structure, e.g. the old pages of a rebuilt index) are zeroed and
//!   restamped so a follow-up scrub comes back clean. Base-storage and
//!   compressed-block damage is *reported*, never invented around: rows
//!   and blocks are source data only a backup can restore.
//!
//! Findings render one per line as `file:page: [kind] message` (page `-`
//! when the finding is not page-addressed), and the process exit code
//! follows the archis-lint convention: 0 clean, 1 findings, 2 operational
//! error.

use archis::{ArchConfig, ArchIS};
use relstore::page::{PageId, PAGE_SIZE};
use relstore::{Database, FilePager, Pager, StoreError, WalConfig};
use std::fmt;
use std::path::{Path, PathBuf};

/// Operational failure (I/O, bad arguments) — distinct from *findings*,
/// which describe corruption in the examined file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckError(pub String);

impl fmt::Display for FsckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fsck: {}", self.0)
    }
}

impl std::error::Error for FsckError {}

impl From<relstore::StoreError> for FsckError {
    fn from(e: relstore::StoreError) -> Self {
        FsckError(e.to_string())
    }
}

impl From<archis::ArchError> for FsckError {
    fn from(e: archis::ArchError) -> Self {
        FsckError(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FsckError>;

/// One corruption finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Page the finding is anchored to, when page-addressed.
    pub page: Option<PageId>,
    /// Finding class: `checksum`, `format`, `catalog`, `base`, `index`,
    /// `counter`, `invariant`, `stats`, `block`, or `diverged` (replica
    /// cross-store audit).
    pub kind: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    fn at(page: PageId, kind: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            page: Some(page),
            kind,
            message: message.into(),
        }
    }

    fn global(kind: &'static str, message: impl Into<String>) -> Finding {
        Finding {
            page: None,
            kind,
            message: message.into(),
        }
    }
}

/// The result of one fsck run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The examined page file.
    pub path: PathBuf,
    /// Page slots in the file.
    pub pages: u64,
    /// Corruption findings that remain (after repairs, in repair mode).
    pub findings: Vec<Finding>,
    /// Repair actions taken (repair mode only).
    pub repairs: Vec<String>,
}

impl Outcome {
    /// Process exit code: 0 clean, 1 findings remain.
    pub fn exit_code(&self) -> i32 {
        if self.findings.is_empty() {
            0
        } else {
            1
        }
    }

    /// Machine-readable report: one `file:page: [kind] message` line per
    /// finding, then one `file: repaired: action` line per repair.
    pub fn render(&self) -> String {
        let file = self.path.display();
        let mut out = String::new();
        for f in &self.findings {
            let page = f
                .page
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!("{file}:{page}: [{}] {}\n", f.kind, f.message));
        }
        for r in &self.repairs {
            out.push_str(&format!("{file}: repaired: {r}\n"));
        }
        out
    }
}

/// Raw media scrub: verify the checksum of every page slot in `path`.
pub fn scrub(path: impl AsRef<Path>) -> Result<Outcome> {
    let path = path.as_ref();
    let (pages, findings) = scrub_file(path)?;
    Ok(Outcome {
        path: path.to_path_buf(),
        pages,
        findings,
        repairs: Vec::new(),
    })
}

fn scrub_file(path: &Path) -> Result<(u64, Vec<Finding>)> {
    let pager = FilePager::open(path)?;
    let pages = pager.num_pages();
    let mut findings = Vec::new();
    if !pager.verifies_checksums() {
        findings.push(Finding::global(
            "format",
            "legacy v1 page file: pages carry no checksums and cannot be verified",
        ));
        return Ok((pages, findings));
    }
    let mut buf = [0u8; PAGE_SIZE];
    for id in 0..pages {
        match pager.read_page(id, &mut buf) {
            Ok(()) => {}
            Err(e) if e.is_corrupt() => {
                findings.push(Finding::at(id, "checksum", e.to_string()));
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok((pages, findings))
}

/// Cross-store convergence audit: verify that a replica's store is
/// byte-identical to what the primary's shipping stream prescribes at
/// the replica's replayed LSN, then run the full structural audit
/// (catalog, counters, §6.1 archiver invariants) on the replica.
///
/// The replica's durable position (`<replica>.pos`) names a commit
/// count, but the store itself may be up to one publish ahead of it — a
/// crash between the store fsync and the position append leaves exactly
/// that window. The audit therefore replays the stream commit by commit
/// from the recorded position to the primary's head and accepts the
/// first exact page-for-page match; if no prefix matches, the diverged
/// pages at the closest candidate are reported as `diverged` findings.
/// A replica that has durably quarantined itself is reported too — a
/// quarantined replica is *supposed* to be loud.
pub fn check_against(
    replica_path: impl AsRef<Path>,
    primary_path: impl AsRef<Path>,
) -> Result<Outcome> {
    use relstore::wal::{FileLog, LogFile, RecordScan, WalPager, WAL_REC_COMMIT, WAL_REC_PAGE};
    use replica::{read_position, DirSegments, ShippingLog, SHIP_REC_CRC};
    use std::collections::HashMap;
    use std::sync::Arc;

    let replica_path = replica_path.as_ref();
    let primary_path = primary_path.as_ref();
    let mut findings = Vec::new();

    // Replica devices: page file, WAL, position log.
    let mut wal_path = replica_path.as_os_str().to_os_string();
    wal_path.push(".wal");
    let mut pos_path = replica_path.as_os_str().to_os_string();
    pos_path.push(".pos");
    let pos_bytes = FileLog::open(&pos_path)?.read_all()?;
    let pos = read_position(&pos_bytes).unwrap_or_default();
    if pos.quarantined {
        findings.push(Finding::global(
            "diverged",
            format!(
                "replica is quarantined read-only after divergence \
                 (last verified commit {}, stream position {})",
                pos.commits, pos.pos
            ),
        ));
    }

    // Primary's shipping stream.
    let mut ship_path = primary_path.as_os_str().to_os_string();
    ship_path.push(".ship");
    if !Path::new(&ship_path).is_dir() {
        return Err(FsckError(format!(
            "{}: primary has no shipping stream",
            Path::new(&ship_path).display()
        )));
    }
    let ship = ShippingLog::open(DirSegments::open(&ship_path)?)?;
    let (head_pos, head_commits) = ship.head();

    // Replica store (ordinary WAL recovery; read-only thereafter).
    let base = Arc::new(FilePager::open(replica_path)?);
    let pages = base.num_pages();
    let pager = WalPager::open(
        base,
        Arc::new(FileLog::open(&wal_path)?),
        WalConfig::with_group_commit(1),
    )?;
    let rep_pages = pager.num_pages();

    if pos.commits > head_commits {
        findings.push(Finding::global(
            "diverged",
            format!(
                "replica claims commit {} but the primary's stream head is {}",
                pos.commits, head_commits
            ),
        ));
        return Ok(Outcome {
            path: replica_path.to_path_buf(),
            pages,
            findings,
            repairs: Vec::new(),
        });
    }

    // Replay the stream; compare at every candidate commit from the
    // recorded position to the head, accepting the first exact match.
    let stream = ship.read_from(0, head_pos as usize)?;
    let mut expected: HashMap<PageId, Box<[u8; PAGE_SIZE]>> = HashMap::new();
    let mut staged: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> = Vec::new();
    let mut exp_pages = 0u64;
    let mut commits = 0u64;
    let mut matched = None;
    let mut best: Option<(u64, Vec<PageId>, u64)> = None;
    let mut compare = |commits: u64,
                       expected: &HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
                       exp_pages: u64|
     -> Result<()> {
        if commits < pos.commits || matched.is_some() {
            return Ok(());
        }
        let mut diffs = Vec::new();
        let span = exp_pages.max(rep_pages);
        let mut buf = [0u8; PAGE_SIZE];
        let zero = [0u8; PAGE_SIZE];
        for id in 0..span {
            // lint:allow(unwrap_or on an Option, not a Result: missing pages
            // compare as all-zero; the &b[..] is a whole-slice coercion)
            let want: &[u8] = expected.get(&id).map(|b| &b[..]).unwrap_or(&zero);
            let got: &[u8] = if id < rep_pages {
                match pager.read_page(id, &mut buf) {
                    Ok(()) => &buf,
                    Err(_) => &zero,
                }
            } else {
                &zero
            };
            if want != got {
                diffs.push(id);
            }
        }
        if diffs.is_empty() && exp_pages == rep_pages {
            matched = Some(commits);
        } else if best.as_ref().is_none_or(|(_, d, _)| diffs.len() < d.len()) {
            best = Some((commits, diffs, exp_pages));
        }
        Ok(())
    };
    compare(0, &expected, exp_pages)?;
    for rec in RecordScan::new(&stream, &[WAL_REC_PAGE, WAL_REC_COMMIT, SHIP_REC_CRC]) {
        match rec.kind {
            WAL_REC_PAGE => {
                if rec.payload.len() == PAGE_SIZE {
                    let mut img = Box::new([0u8; PAGE_SIZE]);
                    img.copy_from_slice(rec.payload);
                    staged.push((rec.page_id, img));
                }
            }
            WAL_REC_COMMIT => {
                for (id, img) in staged.drain(..) {
                    expected.insert(id, img);
                }
                exp_pages = exp_pages.max(rec.page_id);
            }
            _ => {
                // SHIP_REC_CRC: one global commit is fully published here.
                commits += 1;
                if commits == pos.commits && pos.commits > 0 && rec.payload.len() == 16 {
                    // lint:allow(trailer length checked == 16 in the guard)
                    let shipped = u64::from_le_bytes(rec.payload[8..].try_into().unwrap());
                    if shipped != pos.crc_state {
                        findings.push(Finding::global(
                            "diverged",
                            format!(
                                "checksum chain mismatch at the replica's recorded \
                                 commit {}: stream {shipped:#018x}, position log {:#018x}",
                                pos.commits, pos.crc_state
                            ),
                        ));
                    }
                }
                compare(commits, &expected, exp_pages)?;
            }
        }
    }

    match matched {
        // An exact match at or after the recorded position is clean: a
        // store ahead of its position log is the expected crash window
        // (position append is ordered after the store fsync).
        Some(_) => {}
        None => {
            let (at, diffs, exp) = best.unwrap_or((pos.commits, Vec::new(), 0));
            if exp != rep_pages {
                findings.push(Finding::global(
                    "diverged",
                    format!(
                        "page count mismatch at commit {at}: stream prescribes \
                         {exp} pages, replica holds {rep_pages}"
                    ),
                ));
            }
            for id in &diffs {
                findings.push(Finding::at(
                    *id,
                    "diverged",
                    format!(
                        "replica page differs from the shipped image at commit {at} \
                         (closest candidate of {} examined)",
                        head_commits - pos.commits + 1
                    ),
                ));
            }
            if diffs.is_empty() && exp == rep_pages {
                findings.push(Finding::global(
                    "diverged",
                    "replica matches no committed prefix of the primary's stream",
                ));
            }
        }
    }
    drop(pager);

    // Structural audit of the replica itself (catalog, tables, counters,
    // §6.1 archiver invariants) — skipped for a fresh replica, where an
    // open would create a catalog page and mutate what we are auditing.
    if rep_pages > 0 {
        let (_, scrub_findings) = scrub_file(replica_path)?;
        findings.extend(scrub_findings);
        findings.extend(structural_check(replica_path)?);
    }

    Ok(Outcome {
        path: replica_path.to_path_buf(),
        pages,
        findings,
        repairs: Vec::new(),
    })
}

/// Scrub plus full structural audit (no writes beyond WAL replay).
pub fn check(path: impl AsRef<Path>) -> Result<Outcome> {
    let path = path.as_ref();
    let (pages, mut findings) = scrub_file(path)?;
    findings.extend(structural_check(path)?);
    Ok(Outcome {
        path: path.to_path_buf(),
        pages,
        findings,
        repairs: Vec::new(),
    })
}

/// Open the database for auditing, classifying an open failure into a
/// finding instead of an error.
///
/// Opening is done in two stages so structured corruption information is
/// not lost: the relstore [`Database`] open (WAL replay, catalog load,
/// heap-chain tail walks) surfaces `StoreError::Corrupt` with a page id —
/// page 0 means the catalog anchor itself, any other page is a heap or
/// catalog chain page, i.e. report-only base storage. Only then is the
/// ArchIS metadata layer attached on top.
fn open_archis(path: &Path) -> std::result::Result<ArchIS, Finding> {
    let db = match Database::open_wal(
        path,
        ArchConfig::default().buffer_pages,
        WalConfig::default(),
    ) {
        Ok(db) => db,
        Err(e) => {
            return Err(match e {
                StoreError::Corrupt {
                    page_id: Some(0), ..
                } => Finding::at(
                    0,
                    "catalog",
                    "cannot open database: the catalog anchor page is corrupt",
                ),
                StoreError::Corrupt {
                    page_id: Some(p), ..
                } => Finding::at(
                    p,
                    "base",
                    format!("cannot open database: {e}; heap/catalog chain damage is report-only"),
                ),
                _ => Finding::global("catalog", format!("cannot open database: {e}")),
            });
        }
    };
    ArchIS::open_with_database(db, ArchConfig::default())
        .map_err(|e| Finding::global("catalog", format!("cannot open archis metadata: {e}")))
}

/// Open the database and audit every structure, turning each problem into
/// a finding. A database that cannot open at all yields a single finding
/// pinned to the page that stopped the open when that is known.
fn structural_check(path: &Path) -> Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let archis = match open_archis(path) {
        Ok(a) => a,
        Err(f) => {
            findings.push(f);
            return Ok(findings);
        }
    };
    findings.extend(audit_tables(&archis).into_iter().map(|(f, _)| f));
    findings.extend(audit_stats(&archis).into_iter().map(|(f, _)| f));
    findings.extend(audit_archis(&archis));
    Ok(findings)
}

/// Statistics-catalog audit: the planner's per-segment stats must agree
/// with the data they summarize. Only the *exact* fields are compared —
/// row count, live/dead split, and the four `tstart`/`tend` extremes;
/// `distinct_keys` and the histogram are estimates by design and drift
/// legitimately between recomputes. A wrong stat never corrupts answers
/// (the equivalence suite holds regardless) but silently degrades pruning
/// and costing, so it is a first-class finding with a derivable repair:
/// recompute the relation's catalog from the data.
fn audit_stats(archis: &ArchIS) -> Vec<(Finding, Option<Repair>)> {
    let mut out = Vec::new();
    for spec in archis.relations() {
        let mut drifted = Vec::new();
        for (attr, _) in &spec.attrs {
            let stored = match archis.segment_stats(&spec.name, attr) {
                Ok(s) => s,
                Err(e) => {
                    drifted.push(format!("attribute {attr}: cannot load stats: {e}"));
                    continue;
                }
            };
            let expected = match archis.expected_stats(&spec.name, attr) {
                Ok(s) => s,
                Err(e) => {
                    drifted.push(format!("attribute {attr}: cannot recompute stats: {e}"));
                    continue;
                }
            };
            for want in &expected {
                match stored.iter().find(|s| s.segno == want.segno) {
                    None => drifted.push(format!(
                        "attribute {attr}: segment {} has {} rows but no stats entry",
                        want.segno, want.rows
                    )),
                    Some(got) => {
                        let fields = [
                            ("rows", got.rows.to_string(), want.rows.to_string()),
                            ("live", got.live.to_string(), want.live.to_string()),
                            ("tsmin", got.tsmin.to_string(), want.tsmin.to_string()),
                            ("tsmax", got.tsmax.to_string(), want.tsmax.to_string()),
                            ("temin", got.temin.to_string(), want.temin.to_string()),
                            ("temax", got.temax.to_string(), want.temax.to_string()),
                            ("blocks", got.blocks.to_string(), want.blocks.to_string()),
                        ];
                        for (field, g, w) in fields {
                            if g != w {
                                drifted.push(format!(
                                    "attribute {attr}: segment {}: {field} is {g}, data says {w}",
                                    want.segno
                                ));
                            }
                        }
                    }
                }
            }
            for got in &stored {
                if !expected.iter().any(|s| s.segno == got.segno) {
                    drifted.push(format!(
                        "attribute {attr}: stats entry for segment {} but the segment holds no rows",
                        got.segno
                    ));
                }
            }
        }
        for why in drifted {
            out.push((
                Finding::global("stats", format!("relation {}: {why}", spec.name)),
                Some(Repair::RecomputeStats(spec.name.clone())),
            ));
        }
    }
    out
}

/// Per-table findings, each paired with the repair that would fix it (or
/// `None` when only a backup can).
#[allow(clippy::type_complexity)]
fn audit_tables(archis: &ArchIS) -> Vec<(Finding, Option<Repair>)> {
    let db = archis.database();
    let mut out = Vec::new();
    for name in db.table_names() {
        let Ok(t) = db.table(&name) else { continue };
        let c = t.verify();
        for e in &c.base_errors {
            out.push((
                Finding::global("base", format!("table {name}: base storage: {e}")),
                None,
            ));
        }
        for (idx, why) in &c.bad_indexes {
            let repair = c
                .is_repairable()
                .then(|| Repair::RebuildIndex(name.clone(), idx.clone()));
            out.push((
                Finding::global("index", format!("table {name}: index {idx}: {why}")),
                repair,
            ));
        }
        if let Some((cached, actual)) = c.row_count {
            out.push((
                Finding::global(
                    "counter",
                    format!("table {name}: cached row count {cached}, actual {actual}"),
                ),
                Some(Repair::Recount(name.clone())),
            ));
        }
    }
    out
}

/// ArchIS-level findings: §6.1 archiver invariants and compressed-block
/// decode (quarantines become `block` findings). All report-only.
fn audit_archis(archis: &ArchIS) -> Vec<Finding> {
    let db = archis.database();
    let mut findings = Vec::new();
    for spec in archis.relations() {
        match archis
            .archiver_of(&spec.name)
            .and_then(|a| a.verify_invariants(db))
        {
            Ok(violations) => findings.extend(
                violations
                    .into_iter()
                    .map(|m| Finding::global("invariant", format!("relation {}: {m}", spec.name))),
            ),
            Err(e) => findings.push(Finding::global(
                "invariant",
                format!("relation {}: cannot audit invariants: {e}", spec.name),
            )),
        }
        if let Some(store) = archis.compressed_store(&spec.name) {
            for (attr, _) in &spec.attrs {
                if let Err(e) = store.scan_all(db, attr) {
                    findings.push(Finding::global(
                        "block",
                        format!("relation {} attribute {attr}: {e}", spec.name),
                    ));
                }
            }
        }
    }
    findings.extend(
        archis
            .take_corruption_warnings()
            .into_iter()
            .map(|w| Finding::global("block", w)),
    );
    findings
}

enum Repair {
    RebuildIndex(String, String),
    Recount(String),
    RecomputeStats(String),
}

/// Check, then repair everything derivable from base storage; findings
/// that remain afterwards are unrepairable without a backup.
pub fn repair(path: impl AsRef<Path>) -> Result<Outcome> {
    let path = path.as_ref();
    let mut findings = Vec::new();
    let mut repairs = Vec::new();

    // Phase 1: structural repair inside an open database.
    match open_archis(path) {
        Err(f) => findings.push(f),
        Ok(archis) => {
            let db = archis.database();
            for (finding, repair) in audit_tables(&archis) {
                match repair {
                    Some(Repair::RebuildIndex(table, idx)) => {
                        match db.table(&table).and_then(|t| t.rebuild_index(&idx)) {
                            Ok(()) => repairs.push(format!(
                                "table {table}: rebuilt index {idx} from base storage"
                            )),
                            Err(e) => findings.push(Finding::global(
                                "index",
                                format!("table {table}: index {idx}: rebuild failed: {e}"),
                            )),
                        }
                    }
                    Some(Repair::Recount(table)) => {
                        match db.table(&table).and_then(|t| t.recount_rows()) {
                            Ok((cached, actual)) => repairs.push(format!(
                                "table {table}: row counter corrected {cached} -> {actual}"
                            )),
                            Err(e) => findings.push(Finding::global(
                                "counter",
                                format!("table {table}: recount failed: {e}"),
                            )),
                        }
                    }
                    None => findings.push(finding),
                    Some(Repair::RecomputeStats(_)) => unreachable!("table audit"),
                }
            }
            // Stats drift: one recompute per affected relation fixes every
            // drifted attribute/segment at once.
            let mut recomputed = std::collections::HashSet::new();
            for (finding, repair) in audit_stats(&archis) {
                let Some(Repair::RecomputeStats(relation)) = repair else {
                    findings.push(finding);
                    continue;
                };
                if !recomputed.insert(relation.clone()) {
                    continue;
                }
                match archis.recompute_stats(&relation) {
                    Ok(()) => repairs.push(format!(
                        "relation {relation}: statistics catalog recomputed from data"
                    )),
                    Err(e) => findings.push(Finding::global(
                        "stats",
                        format!("relation {relation}: stats recompute failed: {e}"),
                    )),
                }
            }
            findings.extend(audit_archis(&archis));
            // Persist the new index roots / counters and fold the WAL so
            // the base file reflects the repaired state (folding restamps
            // every written page's checksum).
            archis.checkpoint()?;
        }
    }

    // Phase 2: orphan cleanup. Only when every structure verifies clean —
    // then any page still failing its checksum is, by construction,
    // outside every live structure (the cold re-verify just read every
    // reachable page from disk), e.g. the stranded pages of a rebuilt
    // index. Zero + restamp them so the media scrub goes back to clean.
    if findings.is_empty() {
        let verified_clean = match open_archis(path) {
            Ok(archis) => {
                let clean = audit_tables(&archis).is_empty()
                    && audit_stats(&archis).is_empty()
                    && audit_archis(&archis).is_empty();
                if !clean {
                    findings.push(Finding::global(
                        "catalog",
                        "post-repair verification still reports damage".to_string(),
                    ));
                }
                clean
            }
            Err(f) => {
                findings.push(f);
                false
            }
        };
        if verified_clean {
            let (_, stale) = scrub_file(path)?;
            if !stale.is_empty() {
                let pager = FilePager::open(path)?;
                for f in &stale {
                    if let Some(id) = f.page {
                        // lint:allow(offline repair: fsck zeroes orphaned pages on the closed base file directly; no WAL is attached)
                        pager.write_page(id, &[0u8; PAGE_SIZE])?;
                        repairs.push(format!("page {id}: zeroed orphaned corrupt page"));
                    }
                }
                pager.sync()?;
            }
        }
    }

    // Final verdict: whatever the media scrub still reports is beyond
    // repair (reachable base-storage damage keeps its bad checksum — we
    // refuse to restamp bytes we know are wrong).
    let (pages, remaining) = scrub_file(path)?;
    for f in remaining {
        let dup = findings
            .iter()
            .any(|g| g.kind == f.kind && g.page == f.page);
        if !dup {
            findings.push(f);
        }
    }
    Ok(Outcome {
        path: path.to_path_buf(),
        pages,
        findings,
        repairs,
    })
}
