//! Temporal coalescing.
//!
//! Coalescing merges value-equivalent tuples whose periods are adjacent or
//! overlapping. The paper (§3) points out that on a temporally *ungrouped*
//! relational representation coalescing takes 20+ lines of SQL-92 with
//! quadratic best-case cost; in the temporally grouped H-document model an
//! attribute's history is stored already coalesced, so queries rarely need
//! it. We still need the operation when building H-documents from raw
//! change streams, and the native XQuery evaluator exposes it as the
//! `coalesce($l)` built-in.

use crate::interval::Interval;

/// Coalesce a list of `(value, period)` pairs: value-equivalent pairs whose
/// periods overlap or are adjacent are merged into one pair covering the
/// union. Output is sorted by period start; input order is irrelevant.
///
/// Periods of *different* values are left untouched even when they overlap
/// (that can only arise from corrupted histories, but the operation stays
/// total).
///
/// ```
/// use temporal::{coalesce, Interval};
/// let hist = vec![
///     ("70000", Interval::parse("1995-06-01", "1995-09-30").unwrap()),
///     ("70000", Interval::parse("1995-10-01", "1996-01-31").unwrap()),
///     ("60000", Interval::parse("1995-01-01", "1995-05-31").unwrap()),
/// ];
/// let grouped = coalesce(hist);
/// assert_eq!(grouped.len(), 2);
/// assert_eq!(grouped[1], ("70000", Interval::parse("1995-06-01", "1996-01-31").unwrap()));
/// ```
pub fn coalesce<T: PartialEq>(mut items: Vec<(T, Interval)>) -> Vec<(T, Interval)> {
    items.sort_by_key(|(_, iv)| (iv.start(), iv.end()));
    let mut out: Vec<(T, Interval)> = Vec::with_capacity(items.len());
    for (value, iv) in items {
        match out.last_mut() {
            Some((last_value, last_iv)) if *last_value == value && last_iv.joinable(&iv) => {
                *last_iv = last_iv.merge(&iv);
            }
            _ => out.push((value, iv)),
        }
    }
    out
}

/// Coalesce bare intervals (no associated value): the minimal set of
/// disjoint, non-adjacent intervals covering the same days.
pub fn coalesce_intervals(items: Vec<Interval>) -> Vec<Interval> {
    coalesce(items.into_iter().map(|iv| ((), iv)).collect())
        .into_iter()
        .map(|(_, iv)| iv)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn iv(s: &str, e: &str) -> Interval {
        Interval::parse(s, e).unwrap()
    }

    #[test]
    fn merges_adjacent_equal_values() {
        // Bob's salary history from paper Table 1: 70000 appears in three
        // consecutive tuples and must group into one period.
        let hist = vec![
            (60000, iv("1995-01-01", "1995-05-31")),
            (70000, iv("1995-06-01", "1995-09-30")),
            (70000, iv("1995-10-01", "1996-01-31")),
            (70000, iv("1996-02-01", "1996-12-31")),
        ];
        let grouped = coalesce(hist);
        assert_eq!(
            grouped,
            vec![
                (60000, iv("1995-01-01", "1995-05-31")),
                (70000, iv("1995-06-01", "1996-12-31")),
            ]
        );
    }

    #[test]
    fn keeps_gaps_apart() {
        let hist = vec![
            ("QA", iv("1994-01-01", "1994-12-31")),
            ("QA", iv("1996-01-01", "1996-12-31")),
        ];
        assert_eq!(coalesce(hist).len(), 2, "a one-year gap must not merge");
    }

    #[test]
    fn different_values_never_merge() {
        let hist = vec![
            ("Engineer", iv("1995-01-01", "1995-09-30")),
            ("Sr Engineer", iv("1995-10-01", "1996-01-31")),
        ];
        assert_eq!(coalesce(hist).len(), 2);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let hist = vec![
            (1, iv("1995-10-01", "1995-12-31")),
            (1, iv("1995-01-01", "1995-05-31")),
            (1, iv("1995-06-01", "1995-09-30")),
        ];
        assert_eq!(coalesce(hist), vec![(1, iv("1995-01-01", "1995-12-31"))]);
    }

    #[test]
    fn overlapping_equal_values_merge() {
        let hist = vec![
            (5, iv("1995-01-01", "1995-06-30")),
            (5, iv("1995-06-01", "1995-12-31")),
        ];
        assert_eq!(coalesce(hist), vec![(5, iv("1995-01-01", "1995-12-31"))]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(coalesce::<i32>(vec![]).is_empty());
        let one = vec![(9, iv("1995-01-01", "1995-01-01"))];
        assert_eq!(coalesce(one.clone()), one);
    }

    #[test]
    fn interval_only_coalescing() {
        let merged = coalesce_intervals(vec![
            iv("1995-01-01", "1995-03-31"),
            iv("1995-04-01", "1995-06-30"),
            iv("1996-01-01", "1996-01-31"),
        ]);
        assert_eq!(
            merged,
            vec![
                iv("1995-01-01", "1995-06-30"),
                iv("1996-01-01", "1996-01-31")
            ]
        );
    }

    #[test]
    fn snapshot_equivalence_spot_check() {
        // Coalescing must not change which value holds on any given day.
        let hist = vec![
            ("a", iv("1995-01-01", "1995-01-31")),
            ("a", iv("1995-02-01", "1995-02-28")),
            ("b", iv("1995-03-01", "1995-03-31")),
        ];
        let grouped = coalesce(hist.clone());
        for day_off in 0..90 {
            let day = Date::parse("1995-01-01").unwrap() + day_off;
            let before: Vec<_> = hist
                .iter()
                .filter(|(_, iv)| iv.contains_date(day))
                .map(|(v, _)| *v)
                .collect();
            let after: Vec<_> = grouped
                .iter()
                .filter(|(_, iv)| iv.contains_date(day))
                .map(|(v, _)| *v)
                .collect();
            assert_eq!(before, after, "value on {day} changed");
        }
    }
}
