//! Day-granularity dates.
//!
//! Dates are stored as the number of days since 0000-03-01 of the proleptic
//! Gregorian calendar (the "days from civil" encoding), which makes interval
//! arithmetic a plain integer subtraction and keeps ordering cheap — the
//! property the paper relies on for temporal clustering and B+tree indexing.

use std::fmt;
use std::str::FromStr;

/// Errors raised when parsing or constructing a [`Date`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DateError {
    /// Not in `YYYY-MM-DD` (or `MM/DD/YYYY`) form.
    Malformed(String),
    /// Field out of range (month 1–12, day valid for month, year 1–9999).
    OutOfRange(String),
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateError::Malformed(s) => write!(f, "malformed date literal {s:?}"),
            DateError::OutOfRange(s) => write!(f, "date field out of range in {s:?}"),
        }
    }
}

impl std::error::Error for DateError {}

/// A day-granularity date in the proleptic Gregorian calendar.
///
/// The inner value is the day number (days since 0000-03-01). `Date` is
/// `Copy`, totally ordered, and supports `+ i32` / `- i32` day arithmetic.
///
/// ```
/// use temporal::Date;
/// let d = Date::from_ymd(1995, 6, 1).unwrap();
/// assert_eq!(d.to_string(), "1995-06-01");
/// assert_eq!((d + 30).to_string(), "1995-07-01");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

/// The internal representation of *now* / *until changed*: `9999-12-31`
/// (paper §4.3). End users never see this value; the `tend` accessor
/// substitutes the current date and `externalnow` substitutes the string
/// `"now"`.
pub const END_OF_TIME: Date = Date(3652364);

/// The earliest representable date, `0001-01-01` — used as the "before any
/// history" sentinel (e.g. the initial `live_start` of a fresh H-table).
pub const DAWN_OF_TIME: Date = Date(306);

impl Date {
    /// Build a date from calendar fields. Years 1–9999 are accepted.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self, DateError> {
        if !(1..=9999).contains(&year) || !(1..=12).contains(&month) {
            return Err(DateError::OutOfRange(format!(
                "{year:04}-{month:02}-{day:02}"
            )));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError::OutOfRange(format!(
                "{year:04}-{month:02}-{day:02}"
            )));
        }
        Ok(Date(days_from_civil(year, month, day)))
    }

    /// The raw day number (days since 0000-03-01). Useful as a sort key.
    #[inline]
    pub fn day_number(self) -> i32 {
        self.0
    }

    /// Rebuild a date from a raw day number produced by [`Date::day_number`].
    #[inline]
    pub fn from_day_number(n: i32) -> Self {
        Date(n)
    }

    /// Calendar fields `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// The year component.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// True when this date is the internal end-of-time marker for *now*.
    #[inline]
    pub fn is_forever(self) -> bool {
        self == END_OF_TIME
    }

    /// Number of days from `other` to `self` (positive when `self` is later).
    #[inline]
    pub fn days_since(self, other: Date) -> i32 {
        self.0 - other.0
    }

    /// The next day. Saturates at end-of-time.
    #[inline]
    pub fn succ(self) -> Date {
        if self.is_forever() {
            self
        } else {
            Date(self.0 + 1)
        }
    }

    /// The previous day.
    #[inline]
    pub fn pred(self) -> Date {
        Date(self.0 - 1)
    }

    /// Parse `YYYY-MM-DD`. Also accepts the `MM/DD/YYYY` form the paper
    /// uses when listing H-table contents (e.g. `02/20/1988`), and the
    /// internal alias `forever`.
    pub fn parse(s: &str) -> Result<Self, DateError> {
        if s.eq_ignore_ascii_case("forever") || s.eq_ignore_ascii_case("now") {
            return Ok(END_OF_TIME);
        }
        let (y, m, d) = if s.contains('/') {
            let mut it = s.splitn(3, '/');
            let m = it.next().ok_or_else(|| DateError::Malformed(s.into()))?;
            let d = it.next().ok_or_else(|| DateError::Malformed(s.into()))?;
            let y = it.next().ok_or_else(|| DateError::Malformed(s.into()))?;
            (y, m, d)
        } else {
            let mut it = s.splitn(3, '-');
            let y = it.next().ok_or_else(|| DateError::Malformed(s.into()))?;
            let m = it.next().ok_or_else(|| DateError::Malformed(s.into()))?;
            let d = it.next().ok_or_else(|| DateError::Malformed(s.into()))?;
            (y, m, d)
        };
        let year: i32 = y
            .trim()
            .parse()
            .map_err(|_| DateError::Malformed(s.into()))?;
        let month: u32 = m
            .trim()
            .parse()
            .map_err(|_| DateError::Malformed(s.into()))?;
        let day: u32 = d
            .trim()
            .parse()
            .map_err(|_| DateError::Malformed(s.into()))?;
        Date::from_ymd(year, month, day)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl FromStr for Date {
    type Err = DateError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Date::parse(s)
    }
}

impl std::ops::Add<i32> for Date {
    type Output = Date;
    fn add(self, days: i32) -> Date {
        Date(self.0 + days)
    }
}

impl std::ops::Sub<i32> for Date {
    type Output = Date;
    fn sub(self, days: i32) -> Date {
        Date(self.0 - days)
    }
}

fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Howard Hinnant's `days_from_civil`: day count since 0000-03-01.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i32 + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d as i32 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_known_dates() {
        for (y, m, d) in [
            (1, 1, 1),
            (1600, 2, 29),
            (1970, 1, 1),
            (1988, 2, 20),
            (1995, 6, 1),
            (2000, 2, 29),
            (2026, 7, 6),
            (9999, 12, 31),
        ] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.ymd(), (y, m, d));
        }
    }

    #[test]
    fn end_of_time_is_9999_12_31() {
        assert_eq!(DAWN_OF_TIME, Date::from_ymd(1, 1, 1).unwrap());
        assert_eq!(END_OF_TIME, Date::from_ymd(9999, 12, 31).unwrap());
        assert!(END_OF_TIME.is_forever());
        assert_eq!(END_OF_TIME.to_string(), "9999-12-31");
    }

    #[test]
    fn parses_both_paper_formats() {
        assert_eq!(
            Date::parse("1995-06-01").unwrap(),
            Date::from_ymd(1995, 6, 1).unwrap()
        );
        assert_eq!(
            Date::parse("02/20/1988").unwrap(),
            Date::from_ymd(1988, 2, 20).unwrap()
        );
        assert_eq!(Date::parse("forever").unwrap(), END_OF_TIME);
    }

    #[test]
    fn rejects_bad_dates() {
        assert!(Date::parse("1995-13-01").is_err());
        assert!(Date::parse("1995-02-30").is_err());
        assert!(Date::parse("not-a-date").is_err());
        assert!(Date::parse("").is_err());
        assert!(Date::from_ymd(0, 1, 1).is_err());
        assert!(Date::from_ymd(10000, 1, 1).is_err());
        assert!(
            Date::from_ymd(1900, 2, 29).is_err(),
            "1900 is not a leap year"
        );
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = Date::parse("1994-05-06").unwrap();
        let b = Date::parse("1995-05-06").unwrap();
        assert!(a < b);
        assert_eq!(b.days_since(a), 365);
        assert_eq!(a + 365, b);
        assert_eq!(b - 365, a);
        assert_eq!(a.succ().pred(), a);
    }

    #[test]
    fn succ_saturates_at_forever() {
        assert_eq!(END_OF_TIME.succ(), END_OF_TIME);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert!(!is_leap(1995));
    }

    #[test]
    fn day_number_roundtrip() {
        let d = Date::parse("1993-05-16").unwrap();
        assert_eq!(Date::from_day_number(d.day_number()), d);
    }
}
