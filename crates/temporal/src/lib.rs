//! Transaction-time temporal primitives for the ArchIS system.
//!
//! The paper ("Using XML to Build Efficient Transaction-Time Temporal
//! Database Systems on Relational Databases", ICDE 2006) uses a day as the
//! time granularity and closed (inclusive) intervals `[tstart, tend]` on
//! every history tuple and every H-document element. The symbol *now* (a
//! tuple still current when the query is asked) is represented internally by
//! the end-of-time value `9999-12-31` and only instantiated to the current
//! date at the query boundary (paper §4.3).
//!
//! This crate provides:
//!
//! * [`Date`] — a day-granularity proleptic-Gregorian date,
//! * [`Interval`] — a closed interval of dates with the full interval
//!   algebra used by the paper's temporal functions (`toverlaps`,
//!   `tcontains`, `tequals`, `tmeets`, `tprecedes`, `overlapinterval`),
//! * [`coalesce()`](coalesce::coalesce) — temporal coalescing of value-equivalent periods, the
//!   operation the temporally grouped data model largely removes the need
//!   for (paper §3),
//! * [`restructure`] — pairwise interval intersection of two histories
//!   (paper §4, QUERY 6),
//! * sweep-based temporal aggregates ([`aggregate`]) such as the `tavg`
//!   of QUERY 5, computed in a single scan.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod aggregate;
pub mod coalesce;
pub mod date;
pub mod interval;

pub use aggregate::{moving_window, rising, temporal_aggregate, AggregateKind, TemporalSeries};
pub use coalesce::{coalesce, coalesce_intervals};
pub use date::{Date, DateError, DAWN_OF_TIME, END_OF_TIME};
pub use interval::{restructure, Interval};

/// Errors produced by temporal primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// A malformed date string.
    Date(DateError),
    /// An interval whose end precedes its start.
    EmptyInterval { start: Date, end: Date },
}

impl std::fmt::Display for TemporalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemporalError::Date(e) => write!(f, "invalid date: {e}"),
            TemporalError::EmptyInterval { start, end } => {
                write!(f, "interval end {end} precedes start {start}")
            }
        }
    }
}

impl std::error::Error for TemporalError {}

impl From<DateError> for TemporalError {
    fn from(e: DateError) -> Self {
        TemporalError::Date(e)
    }
}
