//! Closed intervals of dates and the interval algebra of the paper's
//! temporal function library (§4.2).

use crate::date::{Date, END_OF_TIME};
use crate::TemporalError;
use std::fmt;

/// A closed (inclusive) interval `[start, end]` of day-granularity dates.
///
/// This is the validity period attached to every history tuple and every
/// H-document element (`tstart`/`tend` attributes). An interval whose `end`
/// is [`END_OF_TIME`] denotes a period that is still current (*now*).
///
/// ```
/// use temporal::{Date, Interval};
/// let a = Interval::parse("1995-01-01", "1995-06-30").unwrap();
/// let b = Interval::parse("1995-06-01", "1995-12-31").unwrap();
/// assert!(a.overlaps(&b));
/// assert_eq!(
///     a.intersect(&b).unwrap(),
///     Interval::parse("1995-06-01", "1995-06-30").unwrap()
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    start: Date,
    end: Date,
}

impl Interval {
    /// Construct, rejecting `end < start` (closed intervals are non-empty).
    pub fn new(start: Date, end: Date) -> Result<Self, TemporalError> {
        if end < start {
            Err(TemporalError::EmptyInterval { start, end })
        } else {
            Ok(Interval { start, end })
        }
    }

    /// Construct from two date literals.
    pub fn parse(start: &str, end: &str) -> Result<Self, TemporalError> {
        Interval::new(Date::parse(start)?, Date::parse(end)?)
    }

    /// An interval open toward the future: `[start, 9999-12-31]`.
    pub fn from(start: Date) -> Self {
        Interval {
            start,
            end: END_OF_TIME,
        }
    }

    /// The single-day interval `[d, d]`.
    pub fn at(d: Date) -> Self {
        Interval { start: d, end: d }
    }

    /// Start of the interval (`tstart`).
    #[inline]
    pub fn start(&self) -> Date {
        self.start
    }

    /// End of the interval (`tend`); [`END_OF_TIME`] means *now*.
    #[inline]
    pub fn end(&self) -> Date {
        self.end
    }

    /// True when the period is still current (its end is *now*).
    #[inline]
    pub fn is_current(&self) -> bool {
        self.end.is_forever()
    }

    /// Number of days covered (`timespan`). For current periods the span is
    /// measured to `as_of` rather than to end-of-time.
    pub fn timespan(&self, as_of: Date) -> i32 {
        let end = if self.is_current() { as_of } else { self.end };
        end.days_since(self.start) + 1
    }

    /// `toverlaps`: the two periods share at least one day.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// `tcontains`: this period covers every day of `other`.
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Membership of a single day.
    #[inline]
    pub fn contains_date(&self, d: Date) -> bool {
        self.start <= d && d <= self.end
    }

    /// `tequals`: identical periods.
    #[inline]
    pub fn equals(&self, other: &Interval) -> bool {
        self == other
    }

    /// `tmeets`: this period ends the day before `other` starts.
    #[inline]
    pub fn meets(&self, other: &Interval) -> bool {
        !self.end.is_forever() && self.end.succ() == other.start
    }

    /// `tprecedes`: this period is entirely before `other` (no shared day).
    #[inline]
    pub fn precedes(&self, other: &Interval) -> bool {
        self.end < other.start
    }

    /// `overlapinterval`: the shared period, if any.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Interval { start, end })
    }

    /// Whether the two intervals can be merged into one closed interval,
    /// i.e. they overlap or are adjacent (used by temporal grouping and
    /// coalescing, paper §3).
    pub fn joinable(&self, other: &Interval) -> bool {
        self.overlaps(other) || self.meets(other) || other.meets(self)
    }

    /// Smallest interval covering both; only meaningful when
    /// [`Interval::joinable`].
    pub fn merge(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Clamp an end-of-time end to `as_of` (the `rtend` view of a period).
    pub fn instantiate_now(&self, as_of: Date) -> Interval {
        if self.is_current() {
            Interval {
                start: self.start,
                end: as_of.max(self.start),
            }
        } else {
            *self
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

/// `restructure($a, $b)` (paper §4.2): all pairwise overlapped intervals of
/// two interval lists, e.g. the periods during which Bob kept both the same
/// title and the same department (QUERY 6).
pub fn restructure(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    for x in a {
        for y in b {
            if let Some(i) = x.intersect(y) {
                out.push(i);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: &str, e: &str) -> Interval {
        Interval::parse(s, e).unwrap()
    }

    #[test]
    fn rejects_reversed() {
        assert!(Interval::parse("1995-02-01", "1995-01-01").is_err());
    }

    #[test]
    fn single_day_is_valid() {
        let i = iv("1995-01-01", "1995-01-01");
        assert!(i.contains_date(Date::parse("1995-01-01").unwrap()));
        assert_eq!(i.timespan(END_OF_TIME), 1);
    }

    #[test]
    fn overlap_cases() {
        let a = iv("1995-01-01", "1995-05-31");
        assert!(a.overlaps(&iv("1995-05-31", "1995-12-31")), "share one day");
        assert!(a.overlaps(&iv("1994-01-01", "1996-01-01")), "contained");
        assert!(
            !a.overlaps(&iv("1995-06-01", "1995-12-31")),
            "adjacent is not overlap"
        );
        assert!(!a.overlaps(&iv("1996-01-01", "1996-12-31")));
    }

    #[test]
    fn meets_is_adjacency() {
        let a = iv("1995-01-01", "1995-05-31");
        let b = iv("1995-06-01", "1995-09-30");
        assert!(a.meets(&b));
        assert!(!b.meets(&a));
        assert!(!a.meets(&iv("1995-06-02", "1995-09-30")));
        assert!(!Interval::from(Date::parse("1995-01-01").unwrap()).meets(&b));
    }

    #[test]
    fn contains_and_equals() {
        let a = iv("1995-01-01", "1995-12-31");
        let b = iv("1995-03-01", "1995-04-30");
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert!(a.contains(&a));
        assert!(a.equals(&a));
        assert!(!a.equals(&b));
    }

    #[test]
    fn precedes_is_strict() {
        let a = iv("1995-01-01", "1995-05-31");
        assert!(a.precedes(&iv("1995-06-01", "1995-06-30")));
        assert!(!a.precedes(&iv("1995-05-31", "1995-06-30")));
    }

    #[test]
    fn intersect_matches_paper_query3_slice() {
        // Temporal slicing window of QUERY 3.
        let window = iv("1994-05-06", "1995-05-06");
        let bob = iv("1995-01-01", "1995-05-31");
        assert_eq!(
            bob.intersect(&window).unwrap(),
            iv("1995-01-01", "1995-05-06")
        );
        assert!(iv("1996-01-01", "1996-02-01").intersect(&window).is_none());
    }

    #[test]
    fn joinable_and_merge() {
        let a = iv("1995-01-01", "1995-05-31");
        let b = iv("1995-06-01", "1995-09-30");
        let c = iv("1995-09-01", "1995-12-31");
        assert!(a.joinable(&b), "adjacent");
        assert!(b.joinable(&c), "overlapping");
        assert!(!a.joinable(&c));
        assert_eq!(a.merge(&b), iv("1995-01-01", "1995-09-30"));
    }

    #[test]
    fn now_semantics() {
        let cur = Interval::from(Date::parse("1995-01-01").unwrap());
        assert!(cur.is_current());
        let today = Date::parse("1995-06-15").unwrap();
        assert_eq!(cur.instantiate_now(today), iv("1995-01-01", "1995-06-15"));
        assert_eq!(cur.timespan(today), 166);
        // A period opened "today" instantiates to a one-day period.
        let opened_today = Interval::from(today);
        assert_eq!(
            opened_today.instantiate_now(today),
            iv("1995-06-15", "1995-06-15")
        );
    }

    #[test]
    fn restructure_pairs() {
        // Bob's depts and titles (paper Table 1): overlap periods of the
        // (dept, title) histories.
        let depts = vec![
            iv("1995-01-01", "1995-09-30"),
            iv("1995-10-01", "1996-12-31"),
        ];
        let titles = vec![
            iv("1995-01-01", "1995-09-30"),
            iv("1995-10-01", "1996-01-31"),
            iv("1996-02-01", "1996-12-31"),
        ];
        let overlaps = restructure(&depts, &titles);
        assert_eq!(
            overlaps,
            vec![
                iv("1995-01-01", "1995-09-30"),
                iv("1995-10-01", "1996-01-31"),
                iv("1996-02-01", "1996-12-31"),
            ]
        );
    }
}
