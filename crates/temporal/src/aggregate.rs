//! Sweep-based temporal aggregates.
//!
//! QUERY 5 of the paper computes the *history of the average salary* with a
//! user-defined `tavg` function evaluated in a single scan: emit a
//! `+value` event at each period start and a `-value` event at the day after
//! each period end, sort events by timestamp, and sweep — every time the
//! running (sum, count) changes, close the previous result interval and open
//! a new one. This module implements that sweep for SUM / COUNT / AVG /
//! MIN / MAX, plus the RISING aggregate mentioned alongside.

use crate::date::Date;
use crate::interval::Interval;
use std::collections::BTreeMap;

/// Which temporal aggregate to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    /// Sum of values valid on each day.
    Sum,
    /// Count of periods valid on each day.
    Count,
    /// Mean of values valid on each day (`tavg`).
    Avg,
    /// Minimum value valid on each day.
    Min,
    /// Maximum value valid on each day.
    Max,
}

/// A step function over time: consecutive `(value, period)` pairs with
/// strictly increasing, non-overlapping periods. This is the result shape of
/// every temporal aggregate (the "history of the average salary").
pub type TemporalSeries = Vec<(f64, Interval)>;

/// Compute a temporal aggregate over `(value, period)` inputs with a single
/// event sweep. Days covered by no input period produce no output interval.
///
/// ```
/// use temporal::{temporal_aggregate, AggregateKind, Interval};
/// let salaries = vec![
///     (60000.0, Interval::parse("1995-01-01", "1995-05-31").unwrap()),
///     (40000.0, Interval::parse("1995-03-01", "1995-12-31").unwrap()),
/// ];
/// let avg = temporal_aggregate(AggregateKind::Avg, &salaries);
/// assert_eq!(avg[0].0, 60000.0); // Jan–Feb: only the first employee
/// assert_eq!(avg[1].0, 50000.0); // Mar–May: both
/// assert_eq!(avg[2].0, 40000.0); // Jun–Dec: only the second
/// ```
pub fn temporal_aggregate(kind: AggregateKind, items: &[(f64, Interval)]) -> TemporalSeries {
    // Event list: day -> values starting / values ending before that day.
    let mut events: BTreeMap<Date, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (v, iv) in items {
        events.entry(iv.start()).or_default().0.push(*v);
        if !iv.end().is_forever() {
            events.entry(iv.end().succ()).or_default().1.push(*v);
        }
    }

    let mut out: TemporalSeries = Vec::new();
    let mut sum = 0.0f64;
    let mut count = 0i64;
    // Multiset of live values for MIN/MAX; f64 keyed via total-order bits.
    let mut live: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    let mut open: Option<(f64, Date)> = None;

    let key = |v: f64| -> u64 {
        let bits = v.to_bits();
        if v.is_sign_negative() {
            !bits
        } else {
            bits ^ (1 << 63)
        }
    };

    for (&day, (starts, ends)) in &events {
        for v in ends {
            sum -= v;
            count -= 1;
            if let Some(entry) = live.get_mut(&key(*v)) {
                entry.1 -= 1;
                if entry.1 == 0 {
                    live.remove(&key(*v));
                }
            }
        }
        for v in starts {
            sum += v;
            count += 1;
            live.entry(key(*v)).or_insert((*v, 0)).1 += 1;
        }
        let new_value = if count == 0 {
            None
        } else {
            Some(match kind {
                AggregateKind::Sum => sum,
                AggregateKind::Count => count as f64,
                AggregateKind::Avg => sum / count as f64,
                AggregateKind::Min => live.values().next().expect("count>0").0,
                AggregateKind::Max => live.values().next_back().expect("count>0").0,
            })
        };
        match (open.take(), new_value) {
            (Some((value, since)), Some(nv)) if value == nv => open = Some((value, since)),
            (Some((value, since)), Some(nv)) => {
                out.push((
                    value,
                    Interval::new(since, day.pred()).expect("sweep order"),
                ));
                open = Some((nv, day));
            }
            (Some((value, since)), None) => {
                out.push((
                    value,
                    Interval::new(since, day.pred()).expect("sweep order"),
                ));
            }
            (None, Some(nv)) => open = Some((nv, day)),
            (None, None) => {}
        }
    }
    if let Some((value, since)) = open {
        out.push((value, Interval::from(since)));
    }
    out
}

/// A moving-window temporal aggregate (paper §4: "other temporal
/// aggregates such as RISING or moving window aggregate can also be
/// supported"): on each day `d`, aggregate every value whose period
/// intersects the trailing window `[d - window_days + 1, d]`.
///
/// A value is visible in the window on day `d` exactly when its period,
/// extended by `window_days - 1` days at the end, contains `d` — so the
/// moving aggregate is the plain sweep over end-extended periods.
pub fn moving_window(
    kind: AggregateKind,
    items: &[(f64, Interval)],
    window_days: u32,
) -> TemporalSeries {
    let extend = window_days.saturating_sub(1) as i32;
    let extended: Vec<(f64, Interval)> = items
        .iter()
        .map(|(v, iv)| {
            let end = if iv.end().is_forever() {
                iv.end()
            } else {
                iv.end() + extend
            };
            (
                *v,
                Interval::new(iv.start(), end).expect("extension keeps order"),
            )
        })
        .collect();
    temporal_aggregate(kind, &extended)
}

/// The RISING aggregate: the longest period over which the step function
/// `series` never decreases (paper §4, "other temporal aggregates such as
/// RISING ... can also be supported").
pub fn rising(series: &TemporalSeries) -> Option<Interval> {
    if series.is_empty() {
        return None;
    }
    let mut best: Option<Interval> = None;
    let mut run_start = series[0].1.start();
    let mut prev_val = series[0].0;
    let mut prev_end = series[0].1.end();
    let consider = |start: Date, end: Date, best: &mut Option<Interval>| {
        let cand = Interval::new(start, end).expect("series ordered");
        if best.is_none_or(|b| cand.end().days_since(cand.start()) > b.end().days_since(b.start()))
        {
            *best = Some(cand);
        }
    };
    for (value, iv) in &series[1..] {
        let contiguous = prev_end.succ() == iv.start() && !prev_end.is_forever();
        if !contiguous || *value < prev_val {
            consider(run_start, prev_end, &mut best);
            run_start = iv.start();
        }
        prev_val = *value;
        prev_end = iv.end();
    }
    consider(run_start, prev_end, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: &str, e: &str) -> Interval {
        Interval::parse(s, e).unwrap()
    }

    #[test]
    fn avg_of_disjoint_periods() {
        let items = vec![
            (10.0, iv("1995-01-01", "1995-01-31")),
            (20.0, iv("1995-03-01", "1995-03-31")),
        ];
        let s = temporal_aggregate(AggregateKind::Avg, &items);
        assert_eq!(
            s,
            vec![
                (10.0, iv("1995-01-01", "1995-01-31")),
                (20.0, iv("1995-03-01", "1995-03-31"))
            ]
        );
    }

    #[test]
    fn avg_with_overlap_steps() {
        let items = vec![
            (60000.0, iv("1995-01-01", "1995-05-31")),
            (40000.0, iv("1995-03-01", "1995-12-31")),
        ];
        let s = temporal_aggregate(AggregateKind::Avg, &items);
        assert_eq!(
            s,
            vec![
                (60000.0, iv("1995-01-01", "1995-02-28")),
                (50000.0, iv("1995-03-01", "1995-05-31")),
                (40000.0, iv("1995-06-01", "1995-12-31")),
            ]
        );
    }

    #[test]
    fn count_and_sum() {
        let items = vec![
            (1.0, iv("1995-01-01", "1995-01-10")),
            (2.0, iv("1995-01-05", "1995-01-20")),
        ];
        let c = temporal_aggregate(AggregateKind::Count, &items);
        assert_eq!(
            c,
            vec![
                (1.0, iv("1995-01-01", "1995-01-04")),
                (2.0, iv("1995-01-05", "1995-01-10")),
                (1.0, iv("1995-01-11", "1995-01-20")),
            ]
        );
        let s = temporal_aggregate(AggregateKind::Sum, &items);
        assert_eq!(s[1].0, 3.0);
    }

    #[test]
    fn min_max_multiset() {
        let items = vec![
            (5.0, iv("1995-01-01", "1995-01-31")),
            (5.0, iv("1995-01-10", "1995-01-20")),
            (3.0, iv("1995-01-15", "1995-02-15")),
        ];
        let mn = temporal_aggregate(AggregateKind::Min, &items);
        // 5 until Jan 14, then 3.
        assert_eq!(mn[0], (5.0, iv("1995-01-01", "1995-01-14")));
        assert_eq!(mn[1], (3.0, iv("1995-01-15", "1995-02-15")));
        let mx = temporal_aggregate(AggregateKind::Max, &items);
        assert_eq!(mx[0], (5.0, iv("1995-01-01", "1995-01-31")));
        assert_eq!(mx[1], (3.0, iv("1995-02-01", "1995-02-15")));
    }

    #[test]
    fn current_periods_stay_open() {
        let items = vec![(7.0, Interval::from(Date::parse("1995-01-01").unwrap()))];
        let s = temporal_aggregate(AggregateKind::Sum, &items);
        assert_eq!(s.len(), 1);
        assert!(s[0].1.is_current());
    }

    #[test]
    fn equal_adjacent_values_coalesce_in_output() {
        // Two employees swap: one leaves the day the other arrives with the
        // same salary — the average must stay one interval.
        let items = vec![
            (10.0, iv("1995-01-01", "1995-06-30")),
            (10.0, iv("1995-07-01", "1995-12-31")),
        ];
        let s = temporal_aggregate(AggregateKind::Avg, &items);
        assert_eq!(s, vec![(10.0, iv("1995-01-01", "1995-12-31"))]);
    }

    #[test]
    fn empty_input() {
        assert!(temporal_aggregate(AggregateKind::Avg, &[]).is_empty());
        assert_eq!(rising(&vec![]), None);
    }

    #[test]
    fn negative_values_order_correctly() {
        let items = vec![
            (-5.0, iv("1995-01-01", "1995-01-31")),
            (2.0, iv("1995-01-01", "1995-01-31")),
        ];
        let mn = temporal_aggregate(AggregateKind::Min, &items);
        assert_eq!(mn[0].0, -5.0);
        let mx = temporal_aggregate(AggregateKind::Max, &items);
        assert_eq!(mx[0].0, 2.0);
    }

    #[test]
    fn moving_window_extends_visibility() {
        // A one-month salary, seen through a 30-day trailing window, stays
        // visible for 29 extra days.
        let items = vec![(100.0, iv("1995-01-01", "1995-01-31"))];
        let s = moving_window(AggregateKind::Max, &items, 30);
        assert_eq!(s, vec![(100.0, iv("1995-01-01", "1995-03-01"))]);
        // Window of 1 day = the plain aggregate.
        assert_eq!(
            moving_window(AggregateKind::Max, &items, 1),
            temporal_aggregate(AggregateKind::Max, &items)
        );
    }

    #[test]
    fn moving_window_bridges_gaps_shorter_than_the_window() {
        let items = vec![
            (1.0, iv("1995-01-01", "1995-01-10")),
            (2.0, iv("1995-01-15", "1995-01-20")),
        ];
        // 10-day window: the first value remains visible through Jan 19,
        // so the count never drops to zero between the periods.
        let s = moving_window(AggregateKind::Count, &items, 10);
        assert!(s.iter().all(|(v, _)| *v >= 1.0));
        assert!(
            s.iter().any(|(v, _)| *v == 2.0),
            "overlap region counts both"
        );
        // Plain aggregate has a gap.
        let plain = temporal_aggregate(AggregateKind::Count, &items);
        assert_eq!(plain.len(), 2);
    }

    #[test]
    fn rising_finds_longest_nondecreasing_run() {
        let series = vec![
            (1.0, iv("1995-01-01", "1995-01-31")),
            (2.0, iv("1995-02-01", "1995-02-28")),
            (1.5, iv("1995-03-01", "1995-03-31")),
            (1.6, iv("1995-04-01", "1995-07-31")),
            (1.6, iv("1995-08-01", "1995-08-31")),
        ];
        // Runs: Jan–Feb (59 days) and Mar–Aug (184 days).
        assert_eq!(rising(&series), Some(iv("1995-03-01", "1995-08-31")));
    }

    #[test]
    fn rising_breaks_on_gaps() {
        let series = vec![
            (1.0, iv("1995-01-01", "1995-01-31")),
            (2.0, iv("1995-03-01", "1995-12-31")),
        ];
        assert_eq!(rising(&series), Some(iv("1995-03-01", "1995-12-31")));
    }

    use crate::date::Date;
}
