//! Property-based tests for the temporal primitives.

use proptest::prelude::*;
use temporal::{
    coalesce, restructure, temporal_aggregate, AggregateKind, Date, Interval, END_OF_TIME,
};

const BASE: &str = "1990-01-01";

fn day(off: i32) -> Date {
    Date::parse(BASE).unwrap() + off
}

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0i32..4000, 0i32..200).prop_map(|(s, len)| Interval::new(day(s), day(s + len)).unwrap())
}

fn arb_history() -> impl Strategy<Value = Vec<(u8, Interval)>> {
    proptest::collection::vec((0u8..4, arb_interval()), 0..40)
}

proptest! {
    #[test]
    fn date_roundtrip(y in 1i32..9999, m in 1u32..=12, d in 1u32..=28) {
        let date = Date::from_ymd(y, m, d).unwrap();
        let parsed = Date::parse(&date.to_string()).unwrap();
        prop_assert_eq!(parsed, date);
        prop_assert_eq!(parsed.ymd(), (y, m, d));
    }

    #[test]
    fn date_ordering_matches_day_numbers(a in 0i32..100_000, b in 0i32..100_000) {
        let (da, db) = (Date::from_day_number(a), Date::from_day_number(b));
        prop_assert_eq!(da < db, a < b);
        prop_assert_eq!(db.days_since(da), b - a);
    }

    #[test]
    fn overlap_is_symmetric_and_matches_intersect(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.overlaps(&b), a.intersect(&b).is_some());
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains(&i) && b.contains(&i));
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        }
    }

    #[test]
    fn precedes_meets_overlaps_partition(a in arb_interval(), b in arb_interval()) {
        // For any ordered pair, exactly one of precedes-without-meeting,
        // meets, or overlaps holds in each direction.
        let rel = [a.precedes(&b) && !a.meets(&b), a.meets(&b), a.overlaps(&b),
                   b.precedes(&a) && !b.meets(&a), b.meets(&a)];
        prop_assert_eq!(rel.iter().filter(|x| **x).count(), 1);
    }

    #[test]
    fn contains_is_a_partial_order(a in arb_interval(), b in arb_interval(), c in arb_interval()) {
        prop_assert!(a.contains(&a));
        if a.contains(&b) && b.contains(&a) {
            prop_assert!(a.equals(&b));
        }
        if a.contains(&b) && b.contains(&c) {
            prop_assert!(a.contains(&c));
        }
    }

    #[test]
    fn merge_of_joinable_covers_exactly(a in arb_interval(), b in arb_interval()) {
        if a.joinable(&b) {
            let m = a.merge(&b);
            prop_assert!(m.contains(&a) && m.contains(&b));
            // No day of m is outside both a and b.
            prop_assert!(a.contains_date(m.start()) || b.contains_date(m.start()));
            prop_assert!(a.contains_date(m.end()) || b.contains_date(m.end()));
        }
    }

    #[test]
    fn coalesce_preserves_snapshots(hist in arb_history()) {
        let grouped = coalesce(hist.clone());
        // Sample days: every interval endpoint and its neighbours.
        let mut days = vec![];
        for (_, iv) in &hist {
            days.extend([iv.start().pred(), iv.start(), iv.end(), iv.end().succ()]);
        }
        for d in days {
            for v in 0u8..4 {
                let before = hist.iter().any(|(x, iv)| *x == v && iv.contains_date(d));
                let after = grouped.iter().any(|(x, iv)| *x == v && iv.contains_date(d));
                prop_assert_eq!(before, after, "value {} on {}", v, d);
            }
        }
    }

    #[test]
    fn coalesce_is_idempotent_and_minimal(hist in arb_history()) {
        let once = coalesce(hist);
        let twice = coalesce(once.clone());
        prop_assert_eq!(&once, &twice);
        // Minimality: no two adjacent output pairs with equal value are joinable.
        for w in once.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(!w[0].1.joinable(&w[1].1));
            }
        }
    }

    #[test]
    fn restructure_results_are_overlaps(
        a in proptest::collection::vec(arb_interval(), 0..10),
        b in proptest::collection::vec(arb_interval(), 0..10),
    ) {
        let r = restructure(&a, &b);
        for iv in &r {
            prop_assert!(a.iter().any(|x| x.contains(iv)));
            prop_assert!(b.iter().any(|x| x.contains(iv)));
        }
        // Completeness: every pairwise intersection appears.
        let mut expected = 0usize;
        for x in &a { for y in &b { if x.overlaps(y) { expected += 1; } } }
        prop_assert_eq!(r.len(), expected);
    }

    #[test]
    fn aggregates_match_per_day_bruteforce(hist in proptest::collection::vec(
        ((1u32..1000).prop_map(|v| v as f64), arb_interval()), 0..12)) {
        for kind in [AggregateKind::Sum, AggregateKind::Count, AggregateKind::Avg,
                     AggregateKind::Min, AggregateKind::Max] {
            let series = temporal_aggregate(kind, &hist);
            // Series intervals are disjoint and ordered.
            for w in series.windows(2) {
                prop_assert!(w[0].1.end() < w[1].1.start());
            }
            // Spot-check endpoint days against a brute-force evaluation.
            let mut days: Vec<Date> = hist
                .iter()
                .flat_map(|(_, iv)| [iv.start(), iv.end(), iv.start().succ(), iv.end().pred()])
                .filter(|d| !d.is_forever())
                .collect();
            days.sort();
            days.dedup();
            for d in days {
                let live: Vec<f64> = hist
                    .iter()
                    .filter(|(_, iv)| iv.contains_date(d))
                    .map(|(v, _)| *v)
                    .collect();
                let expected = if live.is_empty() {
                    None
                } else {
                    Some(match kind {
                        AggregateKind::Sum => live.iter().sum::<f64>(),
                        AggregateKind::Count => live.len() as f64,
                        AggregateKind::Avg => live.iter().sum::<f64>() / live.len() as f64,
                        AggregateKind::Min => live.iter().cloned().fold(f64::INFINITY, f64::min),
                        AggregateKind::Max => live.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    })
                };
                let got = series.iter().find(|(_, iv)| iv.contains_date(d)).map(|(v, _)| *v);
                match (expected, got) {
                    (None, None) => {}
                    (Some(e), Some(g)) => prop_assert!((e - g).abs() < 1e-9, "{kind:?} on {d}: {e} vs {g}"),
                    (e, g) => prop_assert!(false, "{kind:?} on {d}: {e:?} vs {g:?}"),
                }
            }
        }
    }

    #[test]
    fn timespan_counts_days(a in arb_interval()) {
        prop_assert_eq!(a.timespan(END_OF_TIME), a.end().days_since(a.start()) + 1);
        prop_assert!(a.timespan(END_OF_TIME) >= 1);
    }
}
