//! Slotted pages.
//!
//! Every page is [`PAGE_SIZE`] bytes. Record-bearing pages use the classic
//! slotted layout:
//!
//! ```text
//! +------------------+-------------------+---------------+--------------+
//! | header (12 B)    | slot array (4 B/e)| free space →  | ← record data|
//! +------------------+-------------------+---------------+--------------+
//! bytes 0..8   next-page id (u64, MAX = none)
//! bytes 8..10  slot count (u16)
//! bytes 10..12 free-space offset (u16): lowest byte used by record data
//! slot i       (offset u16, len u16); offset == 0 marks a dead slot
//! ```
//!
//! Records grow downward from the end of the page; the slot array grows
//! upward after the header. Deleting a record tombstones its slot without
//! compaction — ArchIS history tables are append-mostly, and the paper's
//! segment archival rewrites pages wholesale anyway.

use crate::{Result, StoreError};

/// Page size in bytes. Chosen to match the paper's 4000-byte BlockZIP
/// blocks (a compressed block plus its row header fits one page).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a store.
pub type PageId = u64;

/// Sentinel meaning "no page".
pub const NO_PAGE: PageId = u64::MAX;

const HEADER: usize = 12;
const SLOT: usize = 4;

/// A typed view over one page's bytes offering slotted-record operations.
pub struct SlottedPage<'a> {
    data: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wrap a page buffer. The caller must have called
    /// [`SlottedPage::init`] on this buffer at some point.
    pub fn new(data: &'a mut [u8]) -> Self {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPage { data }
    }

    /// Format a fresh page: no slots, full free space, no next page.
    pub fn init(data: &mut [u8]) {
        data[..8].copy_from_slice(&NO_PAGE.to_be_bytes());
        data[8..10].copy_from_slice(&0u16.to_be_bytes());
        data[10..12].copy_from_slice(&(PAGE_SIZE as u16).to_be_bytes());
    }

    /// The chained next page, if any.
    pub fn next_page(&self) -> Option<PageId> {
        let id = u64::from_be_bytes(self.data[..8].try_into().unwrap());
        (id != NO_PAGE).then_some(id)
    }

    /// Link this page to a successor.
    pub fn set_next_page(&mut self, next: Option<PageId>) {
        self.data[..8].copy_from_slice(&next.unwrap_or(NO_PAGE).to_be_bytes());
    }

    /// Number of slots (live and dead).
    pub fn slot_count(&self) -> usize {
        u16::from_be_bytes(self.data[8..10].try_into().unwrap()) as usize
    }

    fn set_slot_count(&mut self, n: usize) {
        self.data[8..10].copy_from_slice(&(n as u16).to_be_bytes());
    }

    fn free_offset(&self) -> usize {
        u16::from_be_bytes(self.data[10..12].try_into().unwrap()) as usize
    }

    fn set_free_offset(&mut self, off: usize) {
        self.data[10..12].copy_from_slice(&(off as u16).to_be_bytes());
    }

    fn slot(&self, i: usize) -> (usize, usize) {
        let base = HEADER + i * SLOT;
        let off = u16::from_be_bytes(self.data[base..base + 2].try_into().unwrap()) as usize;
        let len = u16::from_be_bytes(self.data[base + 2..base + 4].try_into().unwrap()) as usize;
        (off, len)
    }

    fn set_slot(&mut self, i: usize, off: usize, len: usize) {
        let base = HEADER + i * SLOT;
        self.data[base..base + 2].copy_from_slice(&(off as u16).to_be_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&(len as u16).to_be_bytes());
    }

    /// Contiguous free bytes available for one more record plus its slot.
    pub fn free_space(&self) -> usize {
        self.free_offset()
            .saturating_sub(HEADER + self.slot_count() * SLOT)
    }

    /// Whether a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    /// Insert a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> Result<usize> {
        if record.len() + SLOT > PAGE_SIZE - HEADER {
            return Err(StoreError::RecordTooLarge(record.len()));
        }
        if !self.fits(record.len()) {
            return Err(StoreError::corrupt(crate::CorruptObject::Page, "page full"));
        }
        let off = self.free_offset() - record.len();
        self.data[off..off + record.len()].copy_from_slice(record);
        let slot = self.slot_count();
        self.set_slot_count(slot + 1);
        self.set_slot(slot, off, record.len());
        self.set_free_offset(off);
        Ok(slot)
    }

    /// Read a record. Returns `None` for dead or out-of-range slots.
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return None; // tombstone
        }
        Some(&self.data[off..off + len])
    }

    /// Tombstone a record. Space is reclaimed only by page rewrite.
    pub fn delete(&mut self, slot: usize) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(StoreError::NotFound(format!("slot {slot}")));
        }
        self.set_slot(slot, 0, 0);
        Ok(())
    }

    /// Overwrite a record in place when the new payload is no longer than
    /// the old one; otherwise reports `RecordTooLarge` and the caller must
    /// delete + reinsert.
    pub fn update_in_place(&mut self, slot: usize, record: &[u8]) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(StoreError::NotFound(format!("slot {slot}")));
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return Err(StoreError::NotFound(format!("slot {slot} is dead")));
        }
        if record.len() > len {
            return Err(StoreError::RecordTooLarge(record.len()));
        }
        self.data[off..off + record.len()].copy_from_slice(record);
        self.set_slot(slot, off, record.len());
        Ok(())
    }

    /// Iterate live `(slot, record)` pairs.
    pub fn records(&self) -> impl Iterator<Item = (usize, &[u8])> {
        (0..self.slot_count()).filter_map(move |i| self.get(i).map(|r| (i, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> [u8; PAGE_SIZE] {
        let mut buf = [0u8; PAGE_SIZE];
        SlottedPage::init(&mut buf);
        buf
    }

    #[test]
    fn insert_and_get() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.records().count(), 2);
    }

    #[test]
    fn delete_tombstones() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let a = p.insert(b"abc").unwrap();
        let b = p.insert(b"def").unwrap();
        p.delete(a).unwrap();
        assert_eq!(p.get(a), None);
        assert_eq!(p.get(b), Some(&b"def"[..]));
        assert_eq!(p.records().count(), 1);
        assert!(p.delete(99).is_err());
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let rec = [7u8; 100];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(n >= (PAGE_SIZE - HEADER) / (100 + SLOT) - 1);
        assert!(p.insert(&rec).is_err());
        // All inserted records still readable.
        assert_eq!(p.records().count(), n);
    }

    #[test]
    fn rejects_oversized_record() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        assert!(matches!(
            p.insert(&[0u8; PAGE_SIZE]),
            Err(StoreError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn update_in_place_shrinks_only() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let s = p.insert(b"0123456789").unwrap();
        p.update_in_place(s, b"abcde").unwrap();
        assert_eq!(p.get(s), Some(&b"abcde"[..]));
        assert!(p.update_in_place(s, b"too-long-now").is_err());
    }

    #[test]
    fn next_page_chain() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        assert_eq!(p.next_page(), None);
        p.set_next_page(Some(42));
        assert_eq!(p.next_page(), Some(42));
        p.set_next_page(None);
        assert_eq!(p.next_page(), None);
    }

    #[test]
    fn empty_payload_is_storable() {
        let mut buf = fresh();
        let mut p = SlottedPage::new(&mut buf);
        let s = p.insert(b"").unwrap();
        // Zero-length record at a nonzero offset is live.
        assert_eq!(p.get(s), Some(&b""[..]));
    }
}
