//! Deterministic fault injection for crash-recovery testing.
//!
//! A [`Failpoints`] handle models the power state of a machine: I/O
//! devices ([`FailLog`] over a [`LogFile`], [`FailPager`] over a
//! [`Pager`]) register against it and split their contents into a
//! *durable* part (the wrapped inner device — what survives power loss)
//! and a *volatile* part (bytes appended or pages written since the last
//! fsync — what a crash throws away).
//!
//! Faults are armed up front and fire deterministically:
//!
//! * [`Failpoints::crash_after_writes`] — the Nth write operation (log
//!   append, page write, allocation, truncate) powers the machine off.
//! * [`Failpoints::crash_after_syncs`] — the Nth fsync completes
//!   *durably* and then the machine powers off (the classic
//!   "crash right after commit" window).
//! * [`Failpoints::set_tear_writes`] — when a crash interrupts unsynced
//!   data, a seeded prefix of it survives anyway (modelling a torn sector
//!   write); with tearing off, unsynced data vanishes entirely.
//! * [`Failpoints::set_drop_syncs`] — fsyncs report success but harden
//!   nothing (a lying disk); combined with a later crash this exposes any
//!   code path that trusts an un-checksummed tail.
//! * [`BitRot`] / [`flip_bit_at`] — at-rest media decay: seeded bit flips
//!   applied to a closed page file between reopen cycles, for exercising
//!   page-checksum detection and fsck repair.
//!
//! All randomness comes from a caller-supplied seed through a xorshift
//! generator, so every torture run replays bit-for-bit. After a crash,
//! every device errors until [`Failpoints::revive`] — the simulated
//! reboot — at which point volatile state is gone and recovery code can
//! be exercised against exactly what "disk" retained.
//!
//! **Concurrency contract.** One [`Failpoints`] schedule is shared (via
//! `Arc`) by every wrapped device and consulted under a single internal
//! mutex, so the write/sync counters order operations **globally across
//! threads**: background WAL writers, pool flushers, and prefetch workers
//! hit the same armed positions as foreground I/O — counters are
//! per-machine, never per-thread. Each device additionally holds its own
//! state lock across the schedule consult *and* the resulting side effect
//! (lock order: device → schedule, never the reverse), so a crash
//! decision and its torn-write fallout are atomic with respect to
//! concurrent operations on that device. Reads are deliberately not
//! counted — only mutations and fsyncs advance the schedule — so
//! read-only background work (prefetch) can never shift a seeded crash
//! position.

use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;
use crate::wal::LogFile;
use crate::{Result, StoreError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Error message marker for injected crashes; tests match on it to tell a
/// simulated power-off from a real bug.
pub const CRASH_MSG: &str = "failpoint: simulated crash";

fn crash_error() -> StoreError {
    StoreError::Io(CRASH_MSG.into())
}

/// Whether a [`StoreError`] is an injected crash rather than a real fault.
pub fn is_crash(err: &StoreError) -> bool {
    matches!(err, StoreError::Io(msg) if msg == CRASH_MSG)
}

#[derive(Debug)]
struct FpState {
    rng: u64,
    writes: u64,
    syncs: u64,
    crash_at_write: Option<u64>,
    crash_at_sync: Option<u64>,
    drop_syncs: bool,
    tear_writes: bool,
    crashed: bool,
    /// Bumped on every crash; devices compare it to drop volatile state
    /// lazily (a "reboot generation").
    epoch: u64,
}

pub(crate) enum WriteFate {
    Persist,
    Crash,
}

pub(crate) enum SyncFate {
    Persist,
    DropSilently,
    PersistThenCrash,
}

/// Shared, seeded fault schedule. Clone the `Arc` into every wrapped
/// device so one schedule governs the whole simulated machine.
pub struct Failpoints {
    state: Mutex<FpState>,
}

impl Failpoints {
    /// A fault schedule with no faults armed, seeded for reproducibility.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(Failpoints {
            state: Mutex::new(FpState {
                // SplitMix64 scramble so nearby seeds diverge immediately.
                rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                writes: 0,
                syncs: 0,
                crash_at_write: None,
                crash_at_sync: None,
                drop_syncs: false,
                tear_writes: true,
                crashed: false,
                epoch: 0,
            }),
        })
    }

    /// Arm a power-off on the `n`th write operation from now (1-based).
    pub fn crash_after_writes(&self, n: u64) {
        let mut st = self.state.lock();
        let at = st.writes + n;
        st.crash_at_write = Some(at);
    }

    /// Arm a power-off immediately *after* the `n`th fsync from now
    /// completes durably (1-based).
    pub fn crash_after_syncs(&self, n: u64) {
        let mut st = self.state.lock();
        let at = st.syncs + n;
        st.crash_at_sync = Some(at);
    }

    /// Disarm any pending crash points (the "dry run" mode used to count a
    /// workload's writes and syncs before sweeping crash positions).
    pub fn disarm(&self) {
        let mut st = self.state.lock();
        st.crash_at_write = None;
        st.crash_at_sync = None;
    }

    /// Make fsyncs lie: report success without hardening anything.
    pub fn set_drop_syncs(&self, on: bool) {
        self.state.lock().drop_syncs = on;
    }

    /// Whether a crash leaves a seeded prefix of unsynced data behind
    /// (torn write). Default: on.
    pub fn set_tear_writes(&self, on: bool) {
        self.state.lock().tear_writes = on;
    }

    /// Write operations observed so far.
    pub fn writes(&self) -> u64 {
        self.state.lock().writes
    }

    /// Fsync operations observed so far.
    pub fn syncs(&self) -> u64 {
        self.state.lock().syncs
    }

    /// Whether the machine is currently powered off.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Reboot: devices start serving again from their durable state.
    /// Armed crash points are cleared; counters keep running.
    pub fn revive(&self) {
        let mut st = self.state.lock();
        st.crashed = false;
        st.crash_at_write = None;
        st.crash_at_sync = None;
    }

    fn next_rand(st: &mut FpState) -> u64 {
        // xorshift64* — deterministic, no external crates.
        let mut x = st.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        st.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// How many bytes of an unsynced region survive a crash.
    pub(crate) fn survival(&self, pending: usize) -> usize {
        let mut st = self.state.lock();
        if !st.tear_writes || pending == 0 {
            return 0;
        }
        (Self::next_rand(&mut st) % (pending as u64 + 1)) as usize
    }

    pub(crate) fn note_write(&self) -> WriteFate {
        let mut st = self.state.lock();
        st.writes += 1;
        if st.crash_at_write == Some(st.writes) {
            st.crashed = true;
            st.epoch += 1;
            WriteFate::Crash
        } else {
            WriteFate::Persist
        }
    }

    pub(crate) fn note_sync(&self) -> SyncFate {
        let mut st = self.state.lock();
        st.syncs += 1;
        if st.crash_at_sync == Some(st.syncs) {
            st.crashed = true;
            st.epoch += 1;
            // The sync itself completes before power is lost.
            SyncFate::PersistThenCrash
        } else if st.drop_syncs {
            SyncFate::DropSilently
        } else {
            SyncFate::Persist
        }
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    fn check_power(&self) -> Result<()> {
        if self.state.lock().crashed {
            Err(crash_error())
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// FailLog
// ---------------------------------------------------------------------------

struct FailLogState {
    volatile: Vec<u8>,
    seen_epoch: u64,
}

/// A [`LogFile`] wrapper that buffers appends in volatile memory until
/// `sync`, and consults a [`Failpoints`] schedule on every operation.
pub struct FailLog {
    fp: Arc<Failpoints>,
    inner: Arc<dyn LogFile>,
    state: Mutex<FailLogState>,
}

impl FailLog {
    /// Wrap `inner` (the durable medium) under the fault schedule `fp`.
    pub fn new(fp: Arc<Failpoints>, inner: Arc<dyn LogFile>) -> Self {
        FailLog {
            fp,
            inner,
            state: Mutex::new(FailLogState {
                volatile: Vec::new(),
                seen_epoch: 0,
            }),
        }
    }

    fn catch_up(&self, st: &mut FailLogState) {
        let epoch = self.fp.epoch();
        if st.seen_epoch != epoch {
            st.volatile.clear();
            st.seen_epoch = epoch;
        }
    }

    /// Unsynced bytes currently held in the volatile buffer (test hook).
    pub fn volatile_len(&self) -> usize {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        st.volatile.len()
    }
}

impl LogFile for FailLog {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        match self.fp.note_write() {
            WriteFate::Persist => {
                st.volatile.extend_from_slice(bytes);
                Ok(())
            }
            WriteFate::Crash => {
                // Power dies mid-write: a seeded prefix of everything
                // unsynced (earlier appends + this one) may reach the
                // platter anyway — that is the torn tail recovery must
                // reject.
                let mut pending = std::mem::take(&mut st.volatile);
                pending.extend_from_slice(bytes);
                let keep = self.fp.survival(pending.len());
                self.inner.append(&pending[..keep])?;
                Err(crash_error())
            }
        }
    }

    fn sync(&self) -> Result<()> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        match self.fp.note_sync() {
            SyncFate::Persist => {
                let pending = std::mem::take(&mut st.volatile);
                self.inner.append(&pending)?;
                self.inner.sync()
            }
            SyncFate::DropSilently => Ok(()),
            SyncFate::PersistThenCrash => {
                let pending = std::mem::take(&mut st.volatile);
                self.inner.append(&pending)?;
                self.inner.sync()?;
                Err(crash_error())
            }
        }
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        let mut all = self.inner.read_all()?;
        all.extend_from_slice(&st.volatile);
        Ok(all)
    }

    fn truncate(&self) -> Result<()> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        match self.fp.note_write() {
            WriteFate::Persist => {
                st.volatile.clear();
                self.inner.truncate()
            }
            WriteFate::Crash => Err(crash_error()),
        }
    }

    fn len(&self) -> Result<u64> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        Ok(self.inner.len()? + st.volatile.len() as u64)
    }
}

// ---------------------------------------------------------------------------
// FailPager
// ---------------------------------------------------------------------------

struct FailPagerState {
    volatile: HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
    num_pages: u64,
    seen_epoch: u64,
}

/// A [`Pager`] wrapper with the same durable/volatile split as
/// [`FailLog`]: page writes and allocations sit in volatile memory until
/// `sync` pushes them into the wrapped pager. A crash during a page write
/// can leave the durable page *torn* — a seeded prefix of the new image
/// spliced over the old one.
pub struct FailPager {
    fp: Arc<Failpoints>,
    inner: Arc<dyn Pager>,
    state: Mutex<FailPagerState>,
}

impl FailPager {
    /// Wrap `inner` (the durable medium) under the fault schedule `fp`.
    pub fn new(fp: Arc<Failpoints>, inner: Arc<dyn Pager>) -> Self {
        let num_pages = inner.num_pages();
        FailPager {
            fp,
            inner,
            state: Mutex::new(FailPagerState {
                volatile: HashMap::new(),
                num_pages,
                seen_epoch: 0,
            }),
        }
    }

    fn catch_up(&self, st: &mut FailPagerState) {
        let epoch = self.fp.epoch();
        if st.seen_epoch != epoch {
            st.volatile.clear();
            st.num_pages = self.inner.num_pages();
            st.seen_epoch = epoch;
        }
    }

    fn flush_volatile(&self, st: &mut FailPagerState) -> Result<()> {
        while self.inner.num_pages() < st.num_pages {
            self.inner.allocate()?;
        }
        let mut ids: Vec<PageId> = st.volatile.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            self.inner.write_page(id, &st.volatile[&id][..])?;
        }
        st.volatile.clear();
        Ok(())
    }
}

impl Pager for FailPager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        if let Some(img) = st.volatile.get(&id) {
            buf.copy_from_slice(&img[..]);
            return Ok(());
        }
        if id < self.inner.num_pages() {
            // lint:allow(fault-injection wrapper: state stays locked across the
            // inner read so a concurrent crash() cannot interleave with it)
            return self.inner.read_page(id, buf);
        }
        if id < st.num_pages {
            buf.fill(0);
            return Ok(());
        }
        Err(StoreError::NotFound(format!("page {id}")))
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        if id >= st.num_pages {
            return Err(StoreError::NotFound(format!("page {id}")));
        }
        match self.fp.note_write() {
            WriteFate::Persist => {
                let mut img = Box::new([0u8; PAGE_SIZE]);
                img.copy_from_slice(buf);
                st.volatile.insert(id, img);
                Ok(())
            }
            WriteFate::Crash => {
                // Torn page: a seeded prefix of the new image lands over
                // whatever the durable page held; all other volatile
                // writes evaporate.
                let keep = self.fp.survival(PAGE_SIZE);
                if keep > 0 {
                    while self.inner.num_pages() <= id {
                        self.inner.allocate()?;
                    }
                    let mut old = [0u8; PAGE_SIZE];
                    // lint:allow(torn-write simulation must be atomic under the state lock,
                    // or a concurrent writer could observe a half-torn page)
                    self.inner.read_page(id, &mut old)?;
                    old[..keep].copy_from_slice(&buf[..keep]);
                    // lint:allow(second half of the torn-write simulation, same guard)
                    self.inner.write_page(id, &old)?;
                }
                st.volatile.clear();
                Err(crash_error())
            }
        }
    }

    fn allocate(&self) -> Result<PageId> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        match self.fp.note_write() {
            WriteFate::Persist => {
                let id = st.num_pages;
                st.num_pages += 1;
                Ok(id)
            }
            WriteFate::Crash => Err(crash_error()),
        }
    }

    fn num_pages(&self) -> u64 {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        st.num_pages
    }

    fn sync(&self) -> Result<()> {
        let mut st = self.state.lock();
        self.catch_up(&mut st);
        self.fp.check_power()?;
        match self.fp.note_sync() {
            SyncFate::Persist => {
                self.flush_volatile(&mut st)?;
                self.inner.sync()
            }
            SyncFate::DropSilently => Ok(()),
            SyncFate::PersistThenCrash => {
                self.flush_volatile(&mut st)?;
                self.inner.sync()?;
                Err(crash_error())
            }
        }
    }

    fn checksum_stats(&self) -> (u64, u64) {
        self.inner.checksum_stats()
    }

    fn reset_checksum_stats(&self) {
        self.inner.reset_checksum_stats();
    }
}

// ---------------------------------------------------------------------------
// Replication channel faults
// ---------------------------------------------------------------------------

/// Fate of one shipment on a faulty replication channel.
///
/// The first five model *transient* transport faults a robust replica must
/// absorb without operator help: retry, detect, and re-request from its
/// last durable position. [`ShipmentFate::CorruptPayload`] is different in
/// kind — the damage is re-framed with a valid CRC, so it models a buggy
/// or malicious primary whose stream *content* is wrong. A replica must
/// detect that via the running divergence checksum and quarantine itself,
/// never converge; it is therefore only ever armed explicitly, never drawn
/// by the random schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipmentFate {
    /// Deliver the shipment unharmed.
    Deliver,
    /// Lose the shipment entirely (the replica sees a transport error).
    Drop,
    /// Deliver a stale copy of the previous shipment instead.
    Duplicate,
    /// Deliver a shipment from a *later* position than requested.
    Reorder,
    /// Deliver a seeded prefix of the shipment (torn in transit).
    Truncate,
    /// Flip one seeded bit somewhere in the shipment bytes.
    BitFlip,
    /// Rewrite payload bytes and re-frame the record CRC so the damage
    /// passes framing validation — silent content divergence.
    CorruptPayload,
}

#[derive(Debug)]
struct ChannelState {
    rng: u64,
    /// Shipments whose fate has been decided (the global counter).
    shipments: u64,
    /// Explicitly armed fates by absolute shipment number.
    armed: HashMap<u64, ShipmentFate>,
    /// Percent of shipments that draw a random transient fault.
    random_pct: u32,
}

/// Deterministic, seeded fault schedule for a replication channel — the
/// transport-level sibling of [`Failpoints`]. Where `Failpoints` decides
/// the fate of disk writes and fsyncs, `FailChannel` decides the fate of
/// *shipments*: chunks of the primary's WAL stream in flight to a replica.
///
/// **Concurrency contract** (mirrors [`Failpoints`]): one `FailChannel`
/// is shared via `Arc` by every wrapped transport and consulted under a
/// single internal mutex, so the shipment counter orders fetches
/// **globally across threads** — a replica's puller threads hit the same
/// armed positions regardless of which thread fetches. Each fate draw and
/// its seeded parameters (truncation length, flipped bit) come from one
/// atomic consult, so concurrent fetches can never interleave inside a
/// fault decision. The transport wrapper holds no lock of its own while
/// calling the inner transport; only the fate consult is serialized —
/// the channel schedule can therefore never deadlock against transport
/// I/O (consult first, then perform the I/O unlocked).
pub struct FailChannel {
    state: Mutex<ChannelState>,
}

impl FailChannel {
    /// A channel-fault schedule with no faults armed, seeded for
    /// reproducibility.
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(FailChannel {
            state: Mutex::new(ChannelState {
                // Same SplitMix64 scramble as `Failpoints`.
                rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                shipments: 0,
                armed: HashMap::new(),
                random_pct: 0,
            }),
        })
    }

    /// Arm a fate for the `n`th shipment from now (1-based).
    pub fn arm_nth(&self, n: u64, fate: ShipmentFate) {
        let mut st = self.state.lock();
        let at = st.shipments + n;
        st.armed.insert(at, fate);
    }

    /// Make `pct` percent of un-armed shipments draw a seeded random
    /// *transient* fault (drop / duplicate / reorder / truncate /
    /// bit-flip — never [`ShipmentFate::CorruptPayload`], which would
    /// defeat convergence sweeps by design).
    pub fn set_random_faults(&self, pct: u32) {
        self.state.lock().random_pct = pct.min(100);
    }

    /// Shipments whose fate has been decided so far.
    pub fn shipments(&self) -> u64 {
        self.state.lock().shipments
    }

    /// Decide the fate of the next shipment (bumps the global counter).
    pub fn next_fate(&self) -> ShipmentFate {
        let mut st = self.state.lock();
        st.shipments += 1;
        let n = st.shipments;
        if let Some(fate) = st.armed.remove(&n) {
            return fate;
        }
        if st.random_pct > 0 {
            let roll = Failpoints::next_rand_for(&mut st.rng) % 100;
            if roll < st.random_pct as u64 {
                return match Failpoints::next_rand_for(&mut st.rng) % 5 {
                    0 => ShipmentFate::Drop,
                    1 => ShipmentFate::Duplicate,
                    2 => ShipmentFate::Reorder,
                    3 => ShipmentFate::Truncate,
                    _ => ShipmentFate::BitFlip,
                };
            }
        }
        ShipmentFate::Deliver
    }

    /// Seeded survival length for a truncated shipment of `len` bytes.
    pub fn truncate_len(&self, len: usize) -> usize {
        let mut st = self.state.lock();
        if len == 0 {
            return 0;
        }
        (Failpoints::next_rand_for(&mut st.rng) % len as u64) as usize
    }

    /// Flip one seeded bit in `bytes`; returns the flipped bit index, or
    /// `None` for an empty shipment.
    pub fn flip_bit(&self, bytes: &mut [u8]) -> Option<u64> {
        let mut st = self.state.lock();
        if bytes.is_empty() {
            return None;
        }
        let bit = Failpoints::next_rand_for(&mut st.rng) % (bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8); // lint:allow(bit < len * 8 by construction)
        Some(bit)
    }

    /// Seeded index draw in `0..n` (used by transports to pick which
    /// record of a shipment to corrupt, which offset to reorder to, ...).
    pub fn pick(&self, n: u64) -> u64 {
        let mut st = self.state.lock();
        if n == 0 {
            return 0;
        }
        Failpoints::next_rand_for(&mut st.rng) % n
    }
}

impl Failpoints {
    /// xorshift64* step over a caller-held state word (shared by the
    /// [`FailChannel`] schedule so both fault sources use one generator
    /// implementation).
    fn next_rand_for(rng: &mut u64) -> u64 {
        let mut x = *rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

// ---------------------------------------------------------------------------
// At-rest bit rot
// ---------------------------------------------------------------------------

/// Deterministic at-rest bit-rot injector.
///
/// Where [`FailPager`] models faults on the *write* path (torn writes,
/// dropped syncs, power loss), `BitRot` models silent media decay: it
/// flips bits in a page file **on disk**, between reopen cycles, with no
/// pager open. Seeded like [`Failpoints`] so a failing seed replays
/// exactly.
pub struct BitRot {
    rng: u64,
}

/// One injected bit flip: which page, which bit of its slot, and the byte
/// offset in the file that was damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlippedBit {
    /// Page whose on-disk slot was damaged.
    pub page_id: PageId,
    /// Bit index within the slot (`byte * 8 + bit`), spanning payload and,
    /// in v2 files, the trailing checksum.
    pub bit: u64,
    /// Absolute byte offset in the file that was modified.
    pub file_offset: u64,
}

impl BitRot {
    /// A bit-rot source seeded for reproducibility.
    pub fn new(seed: u64) -> BitRot {
        BitRot {
            // Same SplitMix64 scramble as `Failpoints`: nearby seeds diverge.
            rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, good enough for fault fuzzing.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Flip one seeded-random bit in some page slot of the page file at
    /// `path`. Returns what was damaged, or `None` if the file holds no
    /// complete page slots.
    pub fn flip_random(&mut self, path: impl AsRef<Path>) -> Result<Option<FlippedBit>> {
        let layout = crate::pager::PageFileLayout::of_file(&path)?;
        if layout.pages == 0 {
            return Ok(None);
        }
        let page_id = self.next_u64() % layout.pages;
        let bit = self.next_u64() % (layout.slot_len * 8);
        flip_bit_at(path, page_id, bit).map(Some)
    }
}

/// Flip bit `bit` (counting `byte * 8 + bit_in_byte` from the start of the
/// slot) of page `page_id`'s on-disk slot in the page file at `path`.
///
/// Operates on the file directly — no pager may have the file open for
/// writing while rot is injected, exactly like real at-rest corruption.
pub fn flip_bit_at(path: impl AsRef<Path>, page_id: PageId, bit: u64) -> Result<FlippedBit> {
    let layout = crate::pager::PageFileLayout::of_file(&path)?;
    if page_id >= layout.pages {
        return Err(StoreError::NotFound(format!("page {page_id}")));
    }
    let bit = bit % (layout.slot_len * 8);
    let file_offset = layout.slot_offset(page_id) + bit / 8;
    let mask = 1u8 << (bit % 8);
    // lint:allow(fault injection writes the durable file directly by design:
    // at-rest rot happens beneath every pager and WAL)
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    use std::io::{Read, Seek, SeekFrom, Write};
    f.seek(SeekFrom::Start(file_offset))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= mask;
    f.seek(SeekFrom::Start(file_offset))?;
    // lint:allow(fault injection writes the durable file directly by design)
    f.write_all(&b)?;
    f.sync_data()?;
    Ok(FlippedBit {
        page_id,
        bit,
        file_offset,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;
    use crate::wal::MemLog;

    #[test]
    fn log_crash_drops_unsynced_tail() {
        let fp = Failpoints::new(1);
        fp.set_tear_writes(false);
        let inner = Arc::new(MemLog::new());
        let log = FailLog::new(fp.clone(), inner.clone());

        log.append(b"aaaa").unwrap();
        log.sync().unwrap();
        log.append(b"bbbb").unwrap();
        fp.crash_after_writes(1);
        assert!(is_crash(&log.append(b"cccc").unwrap_err()));
        assert!(fp.crashed());
        assert!(
            is_crash(&log.append(b"dddd").unwrap_err()),
            "dead until revive"
        );

        fp.revive();
        assert_eq!(
            log.read_all().unwrap(),
            b"aaaa",
            "only synced bytes survived"
        );
    }

    #[test]
    fn log_crash_with_tearing_keeps_seeded_prefix() {
        for seed in 0..32u64 {
            let fp = Failpoints::new(seed);
            fp.set_tear_writes(true);
            let inner = Arc::new(MemLog::new());
            let log = FailLog::new(fp.clone(), inner.clone());
            log.append(b"aaaa").unwrap();
            log.sync().unwrap();
            fp.crash_after_writes(1);
            let _ = log.append(b"bbbb").unwrap_err();
            fp.revive();
            let got = log.read_all().unwrap();
            assert!(got.starts_with(b"aaaa"));
            assert!(
                got.len() <= 8,
                "survivors are a prefix of the unsynced tail"
            );
            assert!(b"aaaabbbb".starts_with(&got[..]));
        }
    }

    #[test]
    fn crash_schedule_is_deterministic() {
        let run = |seed: u64| -> Vec<u8> {
            let fp = Failpoints::new(seed);
            let inner = Arc::new(MemLog::new());
            let log = FailLog::new(fp.clone(), inner);
            log.append(b"xyzw").unwrap();
            fp.crash_after_writes(1);
            let _ = log.append(b"pqrs");
            fp.revive();
            log.read_all().unwrap()
        };
        assert_eq!(run(7), run(7), "same seed, same torn tail");
    }

    #[test]
    fn dropped_sync_leaves_data_volatile() {
        let fp = Failpoints::new(3);
        fp.set_tear_writes(false);
        let inner = Arc::new(MemLog::new());
        let log = FailLog::new(fp.clone(), inner.clone());
        log.append(b"aaaa").unwrap();
        fp.set_drop_syncs(true);
        log.sync().unwrap(); // lies
        assert_eq!(log.read_all().unwrap(), b"aaaa", "still visible in-process");
        fp.crash_after_writes(1);
        let _ = log.append(b"b").unwrap_err();
        fp.revive();
        assert_eq!(log.read_all().unwrap(), b"", "lying fsync hardened nothing");
    }

    #[test]
    fn crash_after_sync_persists_then_kills() {
        let fp = Failpoints::new(9);
        let inner = Arc::new(MemLog::new());
        let log = FailLog::new(fp.clone(), inner.clone());
        log.append(b"aaaa").unwrap();
        fp.crash_after_syncs(1);
        assert!(is_crash(&log.sync().unwrap_err()));
        fp.revive();
        assert_eq!(
            log.read_all().unwrap(),
            b"aaaa",
            "the fsync completed before power loss"
        );
    }

    #[test]
    fn pager_crash_discards_unsynced_pages_and_tears_inflight() {
        let fp = Failpoints::new(11);
        let inner = Arc::new(MemPager::new());
        inner.allocate().unwrap();
        inner.write_page(0, &[0xEE; PAGE_SIZE]).unwrap();
        let pager = FailPager::new(fp.clone(), inner.clone());

        pager.write_page(0, &[0x11; PAGE_SIZE]).unwrap();
        pager.sync().unwrap();
        fp.crash_after_writes(1);
        let err = pager.write_page(0, &[0x22; PAGE_SIZE]).unwrap_err();
        assert!(is_crash(&err));
        fp.revive();

        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page(0, &mut buf).unwrap();
        // Durable content is the synced 0x11 image with a (possibly empty)
        // 0x22 torn prefix.
        let torn = buf.iter().take_while(|&&b| b == 0x22).count();
        assert!(
            buf[torn..].iter().all(|&b| b == 0x11),
            "suffix keeps the old image"
        );
    }

    #[test]
    fn pager_unsynced_allocation_rolls_back() {
        let fp = Failpoints::new(13);
        fp.set_tear_writes(false);
        let inner = Arc::new(MemPager::new());
        let pager = FailPager::new(fp.clone(), inner);
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
        assert_eq!(pager.num_pages(), 1);
        fp.crash_after_writes(1);
        let _ = pager.write_page(id, &[2u8; PAGE_SIZE]).unwrap_err();
        fp.revive();
        assert_eq!(pager.num_pages(), 0, "allocation was never synced");
    }

    #[test]
    fn sync_makes_pager_state_durable() {
        let fp = Failpoints::new(17);
        let inner = Arc::new(MemPager::new());
        let pager = FailPager::new(fp.clone(), inner.clone());
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[7u8; PAGE_SIZE]).unwrap();
        pager.sync().unwrap();
        fp.crash_after_writes(1);
        let _ = pager.allocate().unwrap_err();
        fp.revive();
        assert_eq!(pager.num_pages(), 1);
        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page(id, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        assert_eq!(
            inner.num_pages(),
            1,
            "flushed through to the durable medium"
        );
    }
}
