//! The buffer pool.
//!
//! Pages are cached in frames handed out as `Arc<RwLock<Frame>>`; a page is
//! evictable while no caller holds a reference (strong count 1). The pool
//! is **sharded**: a page's shard is a hash of its [`PageId`], each shard
//! has its own lock and its own CLOCK (second-chance) eviction hand, so a
//! hit costs one shard-local lock plus an O(1) reference-bit set — no
//! global mutex and no O(n) LRU list traversal on the hot path. Shard
//! count scales with capacity (small pools collapse to one shard, which
//! keeps their eviction behaviour exactly LRU-like and deterministic).
//!
//! The pool keeps **I/O statistics** — logical reads (every page request),
//! physical reads (cache misses), physical writes and evictions — which
//! the benchmark harness uses as a deterministic proxy for the paper's
//! cold-cache disk measurements, plus a [`BufferPool::flush_all`] that
//! empties the cache to emulate the paper's "unmount the drive between
//! queries" protocol.
//!
//! Two optional background services ride on the pool, both **off by
//! default** so the deterministic read/write counts above stay exact:
//!
//! * **Prefetch** ([`BufferPool::enable_prefetch`]): scans hand page-run
//!   hints to worker threads (see [`crate::prefetch`]) that fault pages in
//!   ahead of the cursor. Hits and waste are tracked in [`IoStats`].
//! * **Background writeback** ([`BufferPool::enable_writeback`]): a
//!   flusher thread trickles dirty, unpinned frames back to the pager so
//!   CLOCK eviction almost never has to do a synchronous `write_page`.
//!   Under the WAL pager this is always safe: `write_page` only *stages*
//!   an image in the in-memory page table — nothing reaches the log or
//!   the base file before the commit record, so WAL ordering is preserved
//!   structurally no matter when the flusher runs.

use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;
use crate::prefetch::Prefetcher;
use crate::{Result, StoreError};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One cached page.
pub struct Frame {
    /// The page bytes.
    pub data: Box<[u8; PAGE_SIZE]>,
    /// Set by writers; cleared on write-back.
    pub dirty: bool,
}

/// Cumulative I/O counters. Snapshot with [`BufferPool::stats`]; reset with
/// [`BufferPool::reset_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Pages faulted in from the pager (prefetch reads included).
    pub physical_reads: u64,
    /// Dirty pages written back (evictions + checkpoint/commit flushes).
    pub physical_writes: u64,
    /// Frames evicted by the CLOCK sweep (excludes `flush_all` drops).
    pub evictions: u64,
    /// Dirty write-backs caused by CLOCK eviction pressure.
    pub writes_evict: u64,
    /// Dirty write-backs caused by explicit flushes
    /// ([`BufferPool::flush_all`] / [`BufferPool::flush_dirty`], i.e.
    /// commits and checkpoints).
    pub writes_checkpoint: u64,
    /// Dirty write-backs done by the background flusher thread.
    pub writes_writeback: u64,
    /// Pages read ahead of a cursor by the prefetch workers.
    pub prefetch_issued: u64,
    /// Cache hits served from a frame a prefetch worker loaded.
    pub prefetch_hits: u64,
    /// Prefetched pages that were dropped (evicted or flushed) without
    /// ever serving a hit, plus prefetch reads that lost the race with a
    /// foreground fault on the same page.
    pub prefetch_wasted: u64,
    /// Page reads whose on-disk checksum verified clean (file-backed
    /// pagers only; in-memory pagers report 0).
    pub checksum_verifications: u64,
    /// Page reads rejected for a checksum mismatch — each one is silent
    /// media corruption caught before it reached a caller.
    pub checksum_failures: u64,
}

impl IoStats {
    /// Fraction of page requests served from the cache, in `[0, 1]`.
    /// Returns 1.0 when no requests were made.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            (self.logical_reads - self.physical_reads.min(self.logical_reads)) as f64
                / self.logical_reads as f64
        }
    }
}

/// One resident page within a shard.
struct Slot {
    id: PageId,
    frame: Arc<RwLock<Frame>>,
    /// CLOCK reference bit: set on every hit, cleared by the sweep.
    referenced: bool,
    /// Loaded by a prefetch worker and not yet hit. Cleared (and counted
    /// as a hit) on first `get`; counted as waste if dropped still set.
    prefetched: bool,
}

/// Shard state: an index into stable slot positions plus the clock hand.
#[derive(Default)]
struct Shard {
    map: HashMap<PageId, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    hand: usize,
}

/// The shareable heart of the pool: shards, pager and counters. Worker
/// threads (prefetch, writeback) hold their own `Arc<PoolCore>` so the
/// cache outlives neither them nor the foreground handle.
pub(crate) struct PoolCore {
    pager: Arc<dyn Pager>,
    capacity: usize,
    /// Per-shard frame budget (`capacity ÷ shards`, rounded up).
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    evictions: AtomicU64,
    writes_evict: AtomicU64,
    writes_checkpoint: AtomicU64,
    writes_writeback: AtomicU64,
    pub(crate) prefetch_issued: AtomicU64,
    prefetch_hits: AtomicU64,
    pub(crate) prefetch_wasted: AtomicU64,
}

impl PoolCore {
    fn shard_of(&self, id: PageId) -> &Mutex<Shard> {
        // Fibonacci multiplicative hash spreads the sequential page ids
        // the pager hands out evenly across shards.
        let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards
            [(h >> (64 - self.shards.len().trailing_zeros().max(1))) as usize % self.shards.len()]
    }

    fn get(&self, id: PageId) -> Result<Arc<RwLock<Frame>>> {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(id).lock();
        if let Some(&pos) = shard.map.get(&id) {
            let slot = shard.slots[pos].as_mut().ok_or_else(|| {
                StoreError::corrupt_at(
                    id,
                    crate::CorruptObject::Page,
                    "buffer pool: page maps to an empty slot",
                )
            })?;
            slot.referenced = true;
            if slot.prefetched {
                slot.prefetched = false;
                self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(slot.frame.clone());
        }
        // Fault under the shard lock so concurrent readers of the same
        // page cannot create duplicate frames.
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // lint:allow(page-miss read stays under the shard lock on purpose:
        // dropping it would let two threads load the same page into two frames)
        self.pager.read_page(id, &mut data[..])?;
        let frame = Arc::new(RwLock::new(Frame { data, dirty: false }));
        self.admit(&mut shard, id, frame.clone(), false)?;
        Ok(frame)
    }

    /// Whether `id` currently has a frame (prefetch workers use this to
    /// skip resident pages without disturbing any counter).
    pub(crate) fn is_resident(&self, id: PageId) -> bool {
        self.shard_of(id).lock().map.contains_key(&id)
    }

    /// The pager, for worker threads that read outside any shard lock.
    pub(crate) fn pager(&self) -> &Arc<dyn Pager> {
        &self.pager
    }

    /// Count one pager read done outside the normal fault path (prefetch
    /// workers read before they know whether the page will be admitted).
    pub(crate) fn count_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Install a page image loaded by a prefetch worker. Returns `false`
    /// (and counts the read as wasted) if the page became resident while
    /// the worker was reading it — the foreground won the race.
    pub(crate) fn insert_prefetched(&self, id: PageId, data: Box<[u8; PAGE_SIZE]>) -> bool {
        let mut shard = self.shard_of(id).lock();
        if shard.map.contains_key(&id) {
            self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let frame = Arc::new(RwLock::new(Frame { data, dirty: false }));
        // Errors here mean eviction failed to write a dirty victim; the
        // readahead page is simply dropped and the foreground will surface
        // the same error on its own synchronous path.
        if self.admit(&mut shard, id, frame, true).is_err() {
            self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Insert a frame, evicting via CLOCK while the shard is over budget.
    /// When every resident frame is pinned the shard overflows temporarily
    /// (same policy as the paper's pin-respecting pools).
    fn admit(
        &self,
        shard: &mut Shard,
        id: PageId,
        frame: Arc<RwLock<Frame>>,
        prefetched: bool,
    ) -> Result<()> {
        while shard.map.len() >= self.shard_capacity {
            if !self.evict_one(shard)? {
                break; // everything pinned: allow temporary overflow
            }
        }
        let slot = Slot {
            id,
            frame,
            // Prefetched frames start without the reference bit: a page
            // nobody ever asks for loses its slot on the first sweep
            // instead of surviving a bonus lap.
            referenced: !prefetched,
            prefetched,
        };
        let pos = match shard.free.pop() {
            Some(pos) => {
                shard.slots[pos] = Some(slot);
                pos
            }
            None => {
                shard.slots.push(Some(slot));
                shard.slots.len() - 1
            }
        };
        shard.map.insert(id, pos);
        Ok(())
    }

    /// One CLOCK sweep step: advance the hand until an unpinned,
    /// unreferenced victim is found (clearing reference bits on the way),
    /// write it back if dirty, and drop it. Gives up after two full laps
    /// (everything pinned).
    fn evict_one(&self, shard: &mut Shard) -> Result<bool> {
        let n = shard.slots.len();
        if n == 0 {
            return Ok(false);
        }
        for _ in 0..2 * n {
            let pos = shard.hand;
            shard.hand = (shard.hand + 1) % n;
            let Some(slot) = shard.slots[pos].as_mut() else {
                continue;
            };
            if Arc::strong_count(&slot.frame) > 1 {
                continue; // pinned — never evicted
            }
            if slot.referenced {
                slot.referenced = false; // second chance
                continue;
            }
            // The `as_mut` guard above saw this slot occupied; re-check via
            // take() so a logic slip degrades to "skip victim", not a panic.
            let Some(slot) = shard.slots[pos].take() else {
                continue;
            };
            shard.map.remove(&slot.id);
            shard.free.push(pos);
            if slot.prefetched {
                self.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
            }
            let guard = slot.frame.read();
            if guard.dirty {
                self.physical_writes.fetch_add(1, Ordering::Relaxed);
                self.writes_evict.fetch_add(1, Ordering::Relaxed);
                // lint:allow(eviction writes go through self.pager, the WAL-aware pager
                // the catalog handed in — this is the sanctioned write path, not a bypass)
                self.pager.write_page(slot.id, &guard.data[..])?;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(true);
        }
        Ok(false)
    }

    /// One background-writeback round: write back up to `budget` dirty,
    /// unpinned frames and clear their dirty bits. Frames stay resident —
    /// this only makes future evictions cheap, it evicts nothing itself.
    fn writeback_round(&self, budget: usize) -> Result<usize> {
        let mut written = 0usize;
        for shard in &self.shards {
            if written >= budget {
                break;
            }
            // Collect candidates under the shard lock, write them outside
            // it: the frame's own lock keeps the image stable, and the
            // brief extra Arc merely pins the frame against eviction while
            // it is being cleaned.
            let candidates: Vec<(PageId, Arc<RwLock<Frame>>)> = {
                let shard = shard.lock();
                shard
                    .slots
                    .iter()
                    .flatten()
                    .filter(|s| Arc::strong_count(&s.frame) == 1)
                    .take(budget - written)
                    .map(|s| (s.id, s.frame.clone()))
                    .collect()
            };
            for (id, frame) in &candidates {
                let mut guard = frame.write();
                if !guard.dirty {
                    continue;
                }
                self.physical_writes.fetch_add(1, Ordering::Relaxed);
                self.writes_writeback.fetch_add(1, Ordering::Relaxed);
                // lint:allow(background writeback writes through the catalog's
                // WAL-aware pager: under a WalPager this only stages the image in
                // memory, so no uncommitted byte reaches the log or base file)
                self.pager.write_page(*id, &guard.data[..])?;
                guard.dirty = false;
                written += 1;
            }
        }
        Ok(written)
    }
}

/// Background flusher: shared handshake state for pause/quiesce/shutdown.
struct FlusherShared {
    state: Mutex<FlusherState>,
    cond: Condvar,
}

#[derive(Default)]
struct FlusherState {
    shutdown: bool,
    paused: bool,
    /// True while the worker is inside a writeback round; `quiesce` waits
    /// for it to drop so "paused" means "not touching the pager".
    busy: bool,
}

struct Flusher {
    shared: Arc<FlusherShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// How long the flusher sleeps between trickle rounds.
const FLUSH_INTERVAL: Duration = Duration::from_millis(2);
/// Dirty frames written per trickle round.
const FLUSH_BUDGET: usize = 32;

/// A pinning buffer pool over a [`Pager`] with per-shard CLOCK eviction.
pub struct BufferPool {
    core: Arc<PoolCore>,
    prefetcher: Mutex<Option<Arc<Prefetcher>>>,
    flusher: Mutex<Option<Flusher>>,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages over `pager`.
    pub fn new(pager: Arc<dyn Pager>, capacity: usize) -> Self {
        let capacity = capacity.max(8);
        // Small pools stay single-sharded so capacity semantics (and the
        // deterministic cold-read counts the benchmarks rely on) match the
        // unsharded pool exactly; big pools split into up to 16 shards.
        let nshards = (capacity / 64).clamp(1, 16).next_power_of_two();
        let nshards = if nshards * 64 > capacity {
            (nshards / 2).max(1)
        } else {
            nshards
        };
        BufferPool {
            core: Arc::new(PoolCore {
                pager,
                capacity,
                shard_capacity: capacity.div_ceil(nshards),
                shards: (0..nshards).map(|_| Mutex::new(Shard::default())).collect(),
                logical_reads: AtomicU64::new(0),
                physical_reads: AtomicU64::new(0),
                physical_writes: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                writes_evict: AtomicU64::new(0),
                writes_checkpoint: AtomicU64::new(0),
                writes_writeback: AtomicU64::new(0),
                prefetch_issued: AtomicU64::new(0),
                prefetch_hits: AtomicU64::new(0),
                prefetch_wasted: AtomicU64::new(0),
            }),
            prefetcher: Mutex::new(None),
            flusher: Mutex::new(None),
        }
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Arc<dyn Pager> {
        &self.core.pager
    }

    /// Maximum resident pages.
    pub fn capacity(&self) -> usize {
        self.core.capacity
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.core.shards.len()
    }

    /// Fetch a page, faulting it in if needed. The returned frame stays
    /// pinned (ineligible for eviction) while the `Arc` is held.
    pub fn get(&self, id: PageId) -> Result<Arc<RwLock<Frame>>> {
        self.core.get(id)
    }

    /// Allocate a fresh page and return `(id, pinned frame)`. The frame is
    /// created dirty so it reaches the pager even if never written again.
    pub fn allocate(&self) -> Result<(PageId, Arc<RwLock<Frame>>)> {
        let id = self.core.pager.allocate()?;
        let frame = Arc::new(RwLock::new(Frame {
            data: Box::new([0u8; PAGE_SIZE]),
            dirty: true,
        }));
        let mut shard = self.core.shard_of(id).lock();
        self.core.admit(&mut shard, id, frame.clone(), false)?;
        Ok((id, frame))
    }

    // -- prefetch ----------------------------------------------------------

    /// Start the readahead workers. Idempotent; off by default so the
    /// deterministic physical-read counts stay exact for benchmarks.
    pub fn enable_prefetch(&self) {
        let mut slot = self.prefetcher.lock();
        if slot.is_none() {
            *slot = Some(Prefetcher::spawn(self.core.clone()));
        }
    }

    /// Whether the readahead workers are running.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetcher.lock().is_some()
    }

    /// Queue a run of pages for background readahead. A no-op unless
    /// [`BufferPool::enable_prefetch`] was called, so scan code can hint
    /// unconditionally.
    pub fn prefetch_hint(&self, run: &[PageId]) {
        if let Some(p) = self.prefetcher.lock().as_ref() {
            p.hint(run);
        }
    }

    /// Block until every queued prefetch hint has been processed.
    pub fn prefetch_quiesce(&self) {
        if let Some(p) = self.prefetcher.lock().as_ref() {
            p.quiesce();
        }
    }

    // -- background writeback ----------------------------------------------

    /// Start the background flusher thread. Idempotent; off by default so
    /// explicit-flush write counts stay deterministic.
    pub fn enable_writeback(&self) {
        let mut slot = self.flusher.lock();
        if slot.is_some() {
            return;
        }
        let shared = Arc::new(FlusherShared {
            state: Mutex::new(FlusherState::default()),
            cond: Condvar::new(),
        });
        let core = self.core.clone();
        let worker = shared.clone();
        let handle = std::thread::Builder::new()
            .name("pool-flusher".into())
            .spawn(move || loop {
                {
                    let mut st = worker.state.lock();
                    loop {
                        if st.shutdown {
                            return;
                        }
                        if !st.paused {
                            break;
                        }
                        worker.cond.wait(&mut st);
                    }
                    st.busy = true;
                }
                // Trickle a bounded batch; errors are swallowed — the
                // foreground hits the same pager error synchronously on
                // its own flush/evict path, where it can be reported.
                let _ = core.writeback_round(FLUSH_BUDGET);
                let mut st = worker.state.lock();
                st.busy = false;
                worker.cond.notify_all();
                if !st.shutdown {
                    worker.cond.wait_for(&mut st, FLUSH_INTERVAL);
                }
                if st.shutdown {
                    return;
                }
            })
            .expect("spawn pool-flusher thread"); // lint:allow(thread spawn fails only on resource exhaustion)
        *slot = Some(Flusher {
            shared,
            handle: Some(handle),
        });
    }

    /// Whether the background flusher is running (and not quiesced).
    pub fn writeback_enabled(&self) -> bool {
        self.flusher.lock().is_some()
    }

    /// Run one writeback round synchronously on the caller's thread —
    /// deterministic test/bench hook that works with or without the
    /// background thread.
    pub fn writeback_sync(&self) -> Result<usize> {
        self.core.writeback_round(usize::MAX)
    }

    /// Pause the flusher and wait until it is out of its current round:
    /// on return the background thread is guaranteed not to touch the
    /// pager until [`BufferPool::resume_writeback`].
    pub fn quiesce_writeback(&self) {
        if let Some(f) = self.flusher.lock().as_ref() {
            let mut st = f.shared.state.lock();
            st.paused = true;
            f.shared.cond.notify_all();
            while st.busy {
                f.shared.cond.wait(&mut st);
            }
        }
    }

    /// Let a quiesced flusher trickle again.
    pub fn resume_writeback(&self) {
        if let Some(f) = self.flusher.lock().as_ref() {
            f.shared.state.lock().paused = false;
            f.shared.cond.notify_all();
        }
    }

    // -- flush & stats -----------------------------------------------------

    /// Write back every dirty page and drop the whole cache. Emulates the
    /// paper's cache-invalidation protocol between benchmark runs.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.core.shards {
            let mut shard = shard.lock();
            for slot in shard.slots.drain(..).flatten() {
                if slot.prefetched {
                    self.core.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
                }
                let mut guard = slot.frame.write();
                if guard.dirty {
                    self.core.physical_writes.fetch_add(1, Ordering::Relaxed);
                    self.core.writes_checkpoint.fetch_add(1, Ordering::Relaxed);
                    // lint:allow(checkpoint flush writes through the catalog's WAL-aware
                    // pager; the frame lock keeps the image stable while it is written)
                    self.core.pager.write_page(slot.id, &guard.data[..])?;
                    guard.dirty = false;
                }
            }
            shard.map.clear();
            shard.free.clear();
            shard.hand = 0;
        }
        Ok(())
    }

    /// Write back every dirty page but keep the cache resident. This is
    /// the commit-time flush: the WAL pager underneath logs the images, so
    /// after this call plus [`Pager::commit`] the transaction is replayable
    /// without paying `flush_all`'s cold-cache penalty.
    pub fn flush_dirty(&self) -> Result<()> {
        for shard in &self.core.shards {
            let shard = shard.lock();
            for slot in shard.slots.iter().flatten() {
                let mut guard = slot.frame.write();
                if guard.dirty {
                    self.core.physical_writes.fetch_add(1, Ordering::Relaxed);
                    self.core.writes_checkpoint.fetch_add(1, Ordering::Relaxed);
                    // lint:allow(checkpoint flush writes through the catalog's WAL-aware
                    // pager; the frame lock keeps the image stable while it is written)
                    self.core.pager.write_page(slot.id, &guard.data[..])?;
                    guard.dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Current counter values, including the underlying pager's checksum
    /// verification counters.
    pub fn stats(&self) -> IoStats {
        let (checksum_verifications, checksum_failures) = self.core.pager.checksum_stats();
        IoStats {
            logical_reads: self.core.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.core.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.core.physical_writes.load(Ordering::Relaxed),
            evictions: self.core.evictions.load(Ordering::Relaxed),
            writes_evict: self.core.writes_evict.load(Ordering::Relaxed),
            writes_checkpoint: self.core.writes_checkpoint.load(Ordering::Relaxed),
            writes_writeback: self.core.writes_writeback.load(Ordering::Relaxed),
            prefetch_issued: self.core.prefetch_issued.load(Ordering::Relaxed),
            prefetch_hits: self.core.prefetch_hits.load(Ordering::Relaxed),
            prefetch_wasted: self.core.prefetch_wasted.load(Ordering::Relaxed),
            checksum_verifications,
            checksum_failures,
        }
    }

    /// Zero the counters (the pager's checksum counters included).
    pub fn reset_stats(&self) {
        self.core.logical_reads.store(0, Ordering::Relaxed);
        self.core.physical_reads.store(0, Ordering::Relaxed);
        self.core.physical_writes.store(0, Ordering::Relaxed);
        self.core.evictions.store(0, Ordering::Relaxed);
        self.core.writes_evict.store(0, Ordering::Relaxed);
        self.core.writes_checkpoint.store(0, Ordering::Relaxed);
        self.core.writes_writeback.store(0, Ordering::Relaxed);
        self.core.prefetch_issued.store(0, Ordering::Relaxed);
        self.core.prefetch_hits.store(0, Ordering::Relaxed);
        self.core.prefetch_wasted.store(0, Ordering::Relaxed);
        self.core.pager.reset_checksum_stats();
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Stop both background services before the core can go away:
        // the prefetcher drains its queue flag-first, and the flusher is
        // woken, told to shut down, and joined.
        if let Some(p) = self.prefetcher.lock().take() {
            p.shutdown();
        }
        if let Some(mut f) = self.flusher.lock().take() {
            {
                let mut st = f.shared.state.lock();
                st.shutdown = true;
                f.shared.cond.notify_all();
            }
            if let Some(h) = f.handle.take() {
                let _ = h.join(); // lint:allow(joining at drop; the flusher swallows its own errors)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemPager::new()), cap)
    }

    #[test]
    fn read_your_writes_through_cache() {
        let p = pool(8);
        let (id, frame) = p.allocate().unwrap();
        frame.write().data[0] = 0x5A;
        frame.write().dirty = true;
        drop(frame);
        let again = p.get(id).unwrap();
        assert_eq!(again.read().data[0], 0x5A);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(8);
        let (first, frame) = p.allocate().unwrap();
        frame.write().data[7] = 9;
        drop(frame);
        // Fill well past capacity to force eviction of `first`.
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            drop(f);
        }
        assert!(p.stats().evictions > 0, "pressure caused CLOCK evictions");
        // Re-read from pager via a fresh pool sharing the same pager.
        let p2 = BufferPool::new(p.pager().clone(), 8);
        let frame = p2.get(first).unwrap();
        assert_eq!(frame.read().data[7], 9, "dirty page reached the pager");
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let p = pool(8);
        let (id, pinned) = p.allocate().unwrap();
        pinned.write().data[0] = 1;
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            drop(f);
        }
        // Still the same frame (no fault): logical counter grows, physical doesn't.
        let before = p.stats().physical_reads;
        let again = p.get(id).unwrap();
        assert_eq!(
            p.stats().physical_reads,
            before,
            "pinned page was a cache hit"
        );
        assert!(Arc::ptr_eq(&pinned, &again));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        drop(f);
        p.flush_all().unwrap();
        p.reset_stats();
        p.get(id).unwrap(); // miss
        p.get(id).unwrap(); // hit
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn flush_all_empties_cache() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.write().data[3] = 3;
        f.write().dirty = true;
        drop(f);
        p.flush_all().unwrap();
        p.reset_stats();
        let f = p.get(id).unwrap();
        assert_eq!(f.read().data[3], 3);
        assert_eq!(p.stats().physical_reads, 1, "cold read after flush");
    }

    #[test]
    fn large_pools_shard_small_pools_do_not() {
        assert_eq!(pool(8).shard_count(), 1);
        assert_eq!(pool(63).shard_count(), 1);
        assert!(pool(4096).shard_count() > 1);
        // Shard budgets cover the nominal capacity.
        let p = pool(4096);
        assert!(p.shard_count() * p.capacity().div_ceil(p.shard_count()) >= 4096);
    }

    #[test]
    fn capacity_bounds_resident_pages_under_pressure() {
        let p = pool(64);
        for _ in 0..1024 {
            let (_, f) = p.allocate().unwrap();
            drop(f);
        }
        let resident: usize = p.core.shards.iter().map(|s| s.lock().map.len()).sum();
        assert!(resident <= p.capacity(), "{resident} resident > capacity");
    }

    #[test]
    fn hit_rate_of_idle_pool_is_one() {
        assert_eq!(IoStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn write_back_counters_split_evict_from_checkpoint() {
        let p = pool(8);
        // Dirty pages under pressure → eviction write-backs.
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            f.write().data[0] = 1;
            drop(f); // allocate() marks frames dirty
        }
        let s = p.stats();
        assert!(s.writes_evict > 0, "pressure produced eviction write-backs");
        assert_eq!(s.writes_checkpoint, 0);
        // Explicit flush → checkpoint write-backs for the remaining dirty set.
        p.flush_all().unwrap();
        let s = p.stats();
        assert!(s.writes_checkpoint > 0);
        assert_eq!(
            s.physical_writes,
            s.writes_evict + s.writes_checkpoint + s.writes_writeback,
            "the write-back causes partition total write-backs"
        );
    }

    #[test]
    fn flush_dirty_keeps_cache_resident() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.write().data[3] = 7;
        drop(f);
        p.flush_dirty().unwrap();
        let writes = p.stats().physical_writes;
        assert_eq!(p.stats().writes_checkpoint, writes);
        p.reset_stats();
        let f = p.get(id).unwrap();
        assert_eq!(f.read().data[3], 7);
        assert_eq!(
            p.stats().physical_reads,
            0,
            "page stayed cached across the flush"
        );
        // Clean pages are not rewritten by a second flush.
        drop(f);
        p.flush_dirty().unwrap();
        assert_eq!(p.stats().physical_writes, 0);
    }

    #[test]
    fn prefetched_pages_hit_without_physical_read() {
        let p = pool(16);
        let mut ids = Vec::new();
        for _ in 0..8 {
            let (id, f) = p.allocate().unwrap();
            drop(f);
            ids.push(id);
        }
        p.flush_all().unwrap();
        p.reset_stats();
        p.enable_prefetch();
        p.prefetch_hint(&ids);
        p.prefetch_quiesce();
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 8, "every hinted page was read ahead");
        assert_eq!(s.physical_reads, 8, "prefetch reads count as physical");
        for &id in &ids {
            p.get(id).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.prefetch_hits, 8);
        assert_eq!(s.physical_reads, 8, "foreground faulted nothing");
        assert_eq!(s.prefetch_wasted, 0);
    }

    #[test]
    fn unused_prefetched_pages_count_as_waste() {
        let p = pool(16);
        let (id, f) = p.allocate().unwrap();
        drop(f);
        p.flush_all().unwrap();
        p.reset_stats();
        p.enable_prefetch();
        p.prefetch_hint(&[id]);
        p.prefetch_quiesce();
        p.flush_all().unwrap();
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 1);
        assert_eq!(s.prefetch_hits, 0);
        assert_eq!(s.prefetch_wasted, 1, "dropped without a hit = waste");
    }

    #[test]
    fn prefetch_hint_skips_resident_pages() {
        let p = pool(16);
        let (id, f) = p.allocate().unwrap();
        drop(f);
        p.reset_stats();
        p.enable_prefetch();
        p.prefetch_hint(&[id]); // already resident
        p.prefetch_quiesce();
        let s = p.stats();
        assert_eq!(s.prefetch_issued, 0, "resident page not re-read");
        assert_eq!(s.physical_reads, 0);
    }

    #[test]
    fn writeback_sync_cleans_dirty_frames_in_place() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.write().data[0] = 0xAB;
        drop(f);
        let cleaned = p.writeback_sync().unwrap();
        assert!(cleaned >= 1);
        let s = p.stats();
        assert_eq!(s.writes_writeback as usize, cleaned);
        assert_eq!(s.physical_writes as usize, cleaned);
        // The frame stayed resident and clean: a flush now writes nothing.
        p.flush_dirty().unwrap();
        assert_eq!(p.stats().writes_checkpoint, 0);
        let f = p.get(id).unwrap();
        assert_eq!(f.read().data[0], 0xAB);
        assert_eq!(s.evictions, 0, "writeback evicts nothing");
    }

    #[test]
    fn background_writeback_trickles_and_quiesces() {
        let p = pool(64);
        p.enable_writeback();
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            f.write().data[0] = 1;
            drop(f);
        }
        // The trickle eventually cleans everything without eviction help.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let s = p.stats();
            if s.writes_writeback >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "flusher never wrote anything: {s:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Quiesce: after this returns the flusher must not write.
        p.quiesce_writeback();
        let frozen = p.stats().writes_writeback;
        for _ in 0..16 {
            let (_, f) = p.allocate().unwrap();
            f.write().data[0] = 2;
            drop(f);
        }
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            p.stats().writes_writeback,
            frozen,
            "quiesced flusher wrote pages"
        );
        p.resume_writeback();
    }
}
