//! The buffer pool.
//!
//! Pages are cached in frames handed out as `Arc<RwLock<Frame>>`; a page is
//! evictable while no caller holds a reference (strong count 1). The pool
//! is **sharded**: a page's shard is a hash of its [`PageId`], each shard
//! has its own lock and its own CLOCK (second-chance) eviction hand, so a
//! hit costs one shard-local lock plus an O(1) reference-bit set — no
//! global mutex and no O(n) LRU list traversal on the hot path. Shard
//! count scales with capacity (small pools collapse to one shard, which
//! keeps their eviction behaviour exactly LRU-like and deterministic).
//!
//! The pool keeps **I/O statistics** — logical reads (every page request),
//! physical reads (cache misses), physical writes and evictions — which
//! the benchmark harness uses as a deterministic proxy for the paper's
//! cold-cache disk measurements, plus a [`BufferPool::flush_all`] that
//! empties the cache to emulate the paper's "unmount the drive between
//! queries" protocol.

use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;
use crate::{Result, StoreError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached page.
pub struct Frame {
    /// The page bytes.
    pub data: Box<[u8; PAGE_SIZE]>,
    /// Set by writers; cleared on write-back.
    pub dirty: bool,
}

/// Cumulative I/O counters. Snapshot with [`BufferPool::stats`]; reset with
/// [`BufferPool::reset_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Pages faulted in from the pager.
    pub physical_reads: u64,
    /// Dirty pages written back (evictions + checkpoint/commit flushes).
    pub physical_writes: u64,
    /// Frames evicted by the CLOCK sweep (excludes `flush_all` drops).
    pub evictions: u64,
    /// Dirty write-backs caused by CLOCK eviction pressure.
    pub writes_evict: u64,
    /// Dirty write-backs caused by explicit flushes
    /// ([`BufferPool::flush_all`] / [`BufferPool::flush_dirty`], i.e.
    /// commits and checkpoints).
    pub writes_checkpoint: u64,
    /// Page reads whose on-disk checksum verified clean (file-backed
    /// pagers only; in-memory pagers report 0).
    pub checksum_verifications: u64,
    /// Page reads rejected for a checksum mismatch — each one is silent
    /// media corruption caught before it reached a caller.
    pub checksum_failures: u64,
}

impl IoStats {
    /// Fraction of page requests served from the cache, in `[0, 1]`.
    /// Returns 1.0 when no requests were made.
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            1.0
        } else {
            (self.logical_reads - self.physical_reads.min(self.logical_reads)) as f64
                / self.logical_reads as f64
        }
    }
}

/// One resident page within a shard.
struct Slot {
    id: PageId,
    frame: Arc<RwLock<Frame>>,
    /// CLOCK reference bit: set on every hit, cleared by the sweep.
    referenced: bool,
}

/// Shard state: an index into stable slot positions plus the clock hand.
#[derive(Default)]
struct Shard {
    map: HashMap<PageId, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    hand: usize,
}

/// A pinning buffer pool over a [`Pager`] with per-shard CLOCK eviction.
pub struct BufferPool {
    pager: Arc<dyn Pager>,
    capacity: usize,
    /// Per-shard frame budget (`capacity ÷ shards`, rounded up).
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    evictions: AtomicU64,
    writes_evict: AtomicU64,
    writes_checkpoint: AtomicU64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages over `pager`.
    pub fn new(pager: Arc<dyn Pager>, capacity: usize) -> Self {
        let capacity = capacity.max(8);
        // Small pools stay single-sharded so capacity semantics (and the
        // deterministic cold-read counts the benchmarks rely on) match the
        // unsharded pool exactly; big pools split into up to 16 shards.
        let nshards = (capacity / 64).clamp(1, 16).next_power_of_two();
        let nshards = if nshards * 64 > capacity {
            (nshards / 2).max(1)
        } else {
            nshards
        };
        BufferPool {
            pager,
            capacity,
            shard_capacity: capacity.div_ceil(nshards),
            shards: (0..nshards).map(|_| Mutex::new(Shard::default())).collect(),
            logical_reads: AtomicU64::new(0),
            physical_reads: AtomicU64::new(0),
            physical_writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writes_evict: AtomicU64::new(0),
            writes_checkpoint: AtomicU64::new(0),
        }
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Arc<dyn Pager> {
        &self.pager
    }

    /// Maximum resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: PageId) -> &Mutex<Shard> {
        // Fibonacci multiplicative hash spreads the sequential page ids
        // the pager hands out evenly across shards.
        let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards
            [(h >> (64 - self.shards.len().trailing_zeros().max(1))) as usize % self.shards.len()]
    }

    /// Fetch a page, faulting it in if needed. The returned frame stays
    /// pinned (ineligible for eviction) while the `Arc` is held.
    pub fn get(&self, id: PageId) -> Result<Arc<RwLock<Frame>>> {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(id).lock();
        if let Some(&pos) = shard.map.get(&id) {
            let slot = shard.slots[pos].as_mut().ok_or_else(|| {
                StoreError::corrupt_at(
                    id,
                    crate::CorruptObject::Page,
                    "buffer pool: page maps to an empty slot",
                )
            })?;
            slot.referenced = true;
            return Ok(slot.frame.clone());
        }
        // Fault under the shard lock so concurrent readers of the same
        // page cannot create duplicate frames.
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // lint:allow(page-miss read stays under the shard lock on purpose:
        // dropping it would let two threads load the same page into two frames)
        self.pager.read_page(id, &mut data[..])?;
        let frame = Arc::new(RwLock::new(Frame { data, dirty: false }));
        self.admit(&mut shard, id, frame.clone())?;
        Ok(frame)
    }

    /// Allocate a fresh page and return `(id, pinned frame)`. The frame is
    /// created dirty so it reaches the pager even if never written again.
    pub fn allocate(&self) -> Result<(PageId, Arc<RwLock<Frame>>)> {
        let id = self.pager.allocate()?;
        let frame = Arc::new(RwLock::new(Frame {
            data: Box::new([0u8; PAGE_SIZE]),
            dirty: true,
        }));
        let mut shard = self.shard_of(id).lock();
        self.admit(&mut shard, id, frame.clone())?;
        Ok((id, frame))
    }

    /// Insert a frame, evicting via CLOCK while the shard is over budget.
    /// When every resident frame is pinned the shard overflows temporarily
    /// (same policy as the paper's pin-respecting pools).
    fn admit(&self, shard: &mut Shard, id: PageId, frame: Arc<RwLock<Frame>>) -> Result<()> {
        while shard.map.len() >= self.shard_capacity {
            if !self.evict_one(shard)? {
                break; // everything pinned: allow temporary overflow
            }
        }
        let slot = Slot {
            id,
            frame,
            referenced: true,
        };
        let pos = match shard.free.pop() {
            Some(pos) => {
                shard.slots[pos] = Some(slot);
                pos
            }
            None => {
                shard.slots.push(Some(slot));
                shard.slots.len() - 1
            }
        };
        shard.map.insert(id, pos);
        Ok(())
    }

    /// One CLOCK sweep step: advance the hand until an unpinned,
    /// unreferenced victim is found (clearing reference bits on the way),
    /// write it back if dirty, and drop it. Gives up after two full laps
    /// (everything pinned).
    fn evict_one(&self, shard: &mut Shard) -> Result<bool> {
        let n = shard.slots.len();
        if n == 0 {
            return Ok(false);
        }
        for _ in 0..2 * n {
            let pos = shard.hand;
            shard.hand = (shard.hand + 1) % n;
            let Some(slot) = shard.slots[pos].as_mut() else {
                continue;
            };
            if Arc::strong_count(&slot.frame) > 1 {
                continue; // pinned — never evicted
            }
            if slot.referenced {
                slot.referenced = false; // second chance
                continue;
            }
            // The `as_mut` guard above saw this slot occupied; re-check via
            // take() so a logic slip degrades to "skip victim", not a panic.
            let Some(slot) = shard.slots[pos].take() else {
                continue;
            };
            shard.map.remove(&slot.id);
            shard.free.push(pos);
            let guard = slot.frame.read();
            if guard.dirty {
                self.physical_writes.fetch_add(1, Ordering::Relaxed);
                self.writes_evict.fetch_add(1, Ordering::Relaxed);
                // lint:allow(eviction writes go through self.pager, the WAL-aware pager
                // the catalog handed in — this is the sanctioned write path, not a bypass)
                self.pager.write_page(slot.id, &guard.data[..])?;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(true);
        }
        Ok(false)
    }

    /// Write back every dirty page and drop the whole cache. Emulates the
    /// paper's cache-invalidation protocol between benchmark runs.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut shard = shard.lock();
            for slot in shard.slots.drain(..).flatten() {
                let mut guard = slot.frame.write();
                if guard.dirty {
                    self.physical_writes.fetch_add(1, Ordering::Relaxed);
                    self.writes_checkpoint.fetch_add(1, Ordering::Relaxed);
                    // lint:allow(checkpoint flush writes through the catalog's WAL-aware
                    // pager; the frame lock keeps the image stable while it is written)
                    self.pager.write_page(slot.id, &guard.data[..])?;
                    guard.dirty = false;
                }
            }
            shard.map.clear();
            shard.free.clear();
            shard.hand = 0;
        }
        Ok(())
    }

    /// Write back every dirty page but keep the cache resident. This is
    /// the commit-time flush: the WAL pager underneath logs the images, so
    /// after this call plus [`Pager::commit`] the transaction is replayable
    /// without paying `flush_all`'s cold-cache penalty.
    pub fn flush_dirty(&self) -> Result<()> {
        for shard in &self.shards {
            let shard = shard.lock();
            for slot in shard.slots.iter().flatten() {
                let mut guard = slot.frame.write();
                if guard.dirty {
                    self.physical_writes.fetch_add(1, Ordering::Relaxed);
                    self.writes_checkpoint.fetch_add(1, Ordering::Relaxed);
                    // lint:allow(checkpoint flush writes through the catalog's WAL-aware
                    // pager; the frame lock keeps the image stable while it is written)
                    self.pager.write_page(slot.id, &guard.data[..])?;
                    guard.dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Current counter values, including the underlying pager's checksum
    /// verification counters.
    pub fn stats(&self) -> IoStats {
        let (checksum_verifications, checksum_failures) = self.pager.checksum_stats();
        IoStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writes_evict: self.writes_evict.load(Ordering::Relaxed),
            writes_checkpoint: self.writes_checkpoint.load(Ordering::Relaxed),
            checksum_verifications,
            checksum_failures,
        }
    }

    /// Zero the counters (the pager's checksum counters included).
    pub fn reset_stats(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writes_evict.store(0, Ordering::Relaxed);
        self.writes_checkpoint.store(0, Ordering::Relaxed);
        self.pager.reset_checksum_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemPager::new()), cap)
    }

    #[test]
    fn read_your_writes_through_cache() {
        let p = pool(8);
        let (id, frame) = p.allocate().unwrap();
        frame.write().data[0] = 0x5A;
        frame.write().dirty = true;
        drop(frame);
        let again = p.get(id).unwrap();
        assert_eq!(again.read().data[0], 0x5A);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(8);
        let (first, frame) = p.allocate().unwrap();
        frame.write().data[7] = 9;
        drop(frame);
        // Fill well past capacity to force eviction of `first`.
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            drop(f);
        }
        assert!(p.stats().evictions > 0, "pressure caused CLOCK evictions");
        // Re-read from pager via a fresh pool sharing the same pager.
        let p2 = BufferPool::new(p.pager().clone(), 8);
        let frame = p2.get(first).unwrap();
        assert_eq!(frame.read().data[7], 9, "dirty page reached the pager");
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let p = pool(8);
        let (id, pinned) = p.allocate().unwrap();
        pinned.write().data[0] = 1;
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            drop(f);
        }
        // Still the same frame (no fault): logical counter grows, physical doesn't.
        let before = p.stats().physical_reads;
        let again = p.get(id).unwrap();
        assert_eq!(
            p.stats().physical_reads,
            before,
            "pinned page was a cache hit"
        );
        assert!(Arc::ptr_eq(&pinned, &again));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        drop(f);
        p.flush_all().unwrap();
        p.reset_stats();
        p.get(id).unwrap(); // miss
        p.get(id).unwrap(); // hit
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn flush_all_empties_cache() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.write().data[3] = 3;
        f.write().dirty = true;
        drop(f);
        p.flush_all().unwrap();
        p.reset_stats();
        let f = p.get(id).unwrap();
        assert_eq!(f.read().data[3], 3);
        assert_eq!(p.stats().physical_reads, 1, "cold read after flush");
    }

    #[test]
    fn large_pools_shard_small_pools_do_not() {
        assert_eq!(pool(8).shard_count(), 1);
        assert_eq!(pool(63).shard_count(), 1);
        assert!(pool(4096).shard_count() > 1);
        // Shard budgets cover the nominal capacity.
        let p = pool(4096);
        assert!(p.shard_count() * p.capacity().div_ceil(p.shard_count()) >= 4096);
    }

    #[test]
    fn capacity_bounds_resident_pages_under_pressure() {
        let p = pool(64);
        for _ in 0..1024 {
            let (_, f) = p.allocate().unwrap();
            drop(f);
        }
        let resident: usize = p.shards.iter().map(|s| s.lock().map.len()).sum();
        assert!(resident <= p.capacity(), "{resident} resident > capacity");
    }

    #[test]
    fn hit_rate_of_idle_pool_is_one() {
        assert_eq!(IoStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn write_back_counters_split_evict_from_checkpoint() {
        let p = pool(8);
        // Dirty pages under pressure → eviction write-backs.
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            f.write().data[0] = 1;
            drop(f); // allocate() marks frames dirty
        }
        let s = p.stats();
        assert!(s.writes_evict > 0, "pressure produced eviction write-backs");
        assert_eq!(s.writes_checkpoint, 0);
        // Explicit flush → checkpoint write-backs for the remaining dirty set.
        p.flush_all().unwrap();
        let s = p.stats();
        assert!(s.writes_checkpoint > 0);
        assert_eq!(
            s.physical_writes,
            s.writes_evict + s.writes_checkpoint,
            "the two causes partition total write-backs"
        );
    }

    #[test]
    fn flush_dirty_keeps_cache_resident() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.write().data[3] = 7;
        drop(f);
        p.flush_dirty().unwrap();
        let writes = p.stats().physical_writes;
        assert_eq!(p.stats().writes_checkpoint, writes);
        p.reset_stats();
        let f = p.get(id).unwrap();
        assert_eq!(f.read().data[3], 7);
        assert_eq!(
            p.stats().physical_reads,
            0,
            "page stayed cached across the flush"
        );
        // Clean pages are not rewritten by a second flush.
        drop(f);
        p.flush_dirty().unwrap();
        assert_eq!(p.stats().physical_writes, 0);
    }
}
