//! The buffer pool.
//!
//! Pages are cached in frames handed out as `Arc<RwLock<Frame>>`; a page is
//! evictable while no caller holds a reference (strong count 1). Eviction is
//! LRU. The pool keeps **I/O statistics** — logical reads (every page
//! request), physical reads (cache misses) and physical writes — which the
//! benchmark harness uses as a deterministic proxy for the paper's
//! cold-cache disk measurements, plus a [`BufferPool::flush_all`] that
//! empties the cache to emulate the paper's "unmount the drive between
//! queries" protocol.

use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached page.
pub struct Frame {
    /// The page bytes.
    pub data: Box<[u8; PAGE_SIZE]>,
    /// Set by writers; cleared on write-back.
    pub dirty: bool,
}

/// Cumulative I/O counters. Snapshot with [`BufferPool::stats`]; reset with
/// [`BufferPool::reset_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Page requests served (hits + misses).
    pub logical_reads: u64,
    /// Pages faulted in from the pager.
    pub physical_reads: u64,
    /// Dirty pages written back.
    pub physical_writes: u64,
}

struct Inner {
    frames: HashMap<PageId, Arc<RwLock<Frame>>>,
    /// LRU order: front = oldest. Touched on every access.
    lru: Vec<PageId>,
}

/// A pinning LRU buffer pool over a [`Pager`].
pub struct BufferPool {
    pager: Arc<dyn Pager>,
    capacity: usize,
    inner: Mutex<Inner>,
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages over `pager`.
    pub fn new(pager: Arc<dyn Pager>, capacity: usize) -> Self {
        BufferPool {
            pager,
            capacity: capacity.max(8),
            inner: Mutex::new(Inner { frames: HashMap::new(), lru: Vec::new() }),
            logical_reads: AtomicU64::new(0),
            physical_reads: AtomicU64::new(0),
            physical_writes: AtomicU64::new(0),
        }
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Arc<dyn Pager> {
        &self.pager
    }

    /// Fetch a page, faulting it in if needed. The returned frame stays
    /// pinned (ineligible for eviction) while the `Arc` is held.
    pub fn get(&self, id: PageId) -> Result<Arc<RwLock<Frame>>> {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get(&id).cloned() {
            touch(&mut inner.lru, id);
            return Ok(frame);
        }
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        let mut data = Box::new([0u8; PAGE_SIZE]);
        self.pager.read_page(id, &mut data[..])?;
        let frame = Arc::new(RwLock::new(Frame { data, dirty: false }));
        self.admit(&mut inner, id, frame.clone())?;
        Ok(frame)
    }

    /// Allocate a fresh page and return `(id, pinned frame)`. The frame is
    /// created dirty so it reaches the pager even if never written again.
    pub fn allocate(&self) -> Result<(PageId, Arc<RwLock<Frame>>)> {
        let id = self.pager.allocate()?;
        let frame =
            Arc::new(RwLock::new(Frame { data: Box::new([0u8; PAGE_SIZE]), dirty: true }));
        let mut inner = self.inner.lock();
        self.admit(&mut inner, id, frame.clone())?;
        Ok((id, frame))
    }

    fn admit(&self, inner: &mut Inner, id: PageId, frame: Arc<RwLock<Frame>>) -> Result<()> {
        while inner.frames.len() >= self.capacity {
            // Find the oldest unpinned page.
            let victim = inner
                .lru
                .iter()
                .position(|pid| inner.frames.get(pid).map_or(false, |f| Arc::strong_count(f) == 1));
            let Some(pos) = victim else {
                break; // everything pinned: allow temporary overflow
            };
            let vid = inner.lru.remove(pos);
            if let Some(f) = inner.frames.remove(&vid) {
                let guard = f.read();
                if guard.dirty {
                    self.physical_writes.fetch_add(1, Ordering::Relaxed);
                    self.pager.write_page(vid, &guard.data[..])?;
                }
            }
        }
        inner.frames.insert(id, frame);
        inner.lru.push(id);
        Ok(())
    }

    /// Write back every dirty page and drop the whole cache. Emulates the
    /// paper's cache-invalidation protocol between benchmark runs.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for (id, frame) in inner.frames.drain() {
            let mut guard = frame.write();
            if guard.dirty {
                self.physical_writes.fetch_add(1, Ordering::Relaxed);
                self.pager.write_page(id, &guard.data[..])?;
                guard.dirty = false;
            }
        }
        inner.lru.clear();
        Ok(())
    }

    /// Current counter values.
    pub fn stats(&self) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
        }
    }

    /// Zero the counters.
    pub fn reset_stats(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
    }
}

fn touch(lru: &mut Vec<PageId>, id: PageId) {
    if let Some(pos) = lru.iter().position(|&p| p == id) {
        lru.remove(pos);
    }
    lru.push(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemPager::new()), cap)
    }

    #[test]
    fn read_your_writes_through_cache() {
        let p = pool(8);
        let (id, frame) = p.allocate().unwrap();
        frame.write().data[0] = 0x5A;
        frame.write().dirty = true;
        drop(frame);
        let again = p.get(id).unwrap();
        assert_eq!(again.read().data[0], 0x5A);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(8);
        let (first, frame) = p.allocate().unwrap();
        frame.write().data[7] = 9;
        drop(frame);
        // Fill well past capacity to force eviction of `first`.
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            drop(f);
        }
        // Re-read from pager via a fresh pool sharing the same pager.
        let p2 = BufferPool::new(p.pager().clone(), 8);
        let frame = p2.get(first).unwrap();
        assert_eq!(frame.read().data[7], 9, "dirty page reached the pager");
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let p = pool(8);
        let (id, pinned) = p.allocate().unwrap();
        pinned.write().data[0] = 1;
        for _ in 0..32 {
            let (_, f) = p.allocate().unwrap();
            drop(f);
        }
        // Still the same frame (no fault): logical counter grows, physical doesn't.
        let before = p.stats().physical_reads;
        let again = p.get(id).unwrap();
        assert_eq!(p.stats().physical_reads, before, "pinned page was a cache hit");
        assert!(Arc::ptr_eq(&pinned, &again));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        drop(f);
        p.flush_all().unwrap();
        p.reset_stats();
        p.get(id).unwrap(); // miss
        p.get(id).unwrap(); // hit
        let s = p.stats();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
    }

    #[test]
    fn flush_all_empties_cache() {
        let p = pool(8);
        let (id, f) = p.allocate().unwrap();
        f.write().data[3] = 3;
        f.write().dirty = true;
        drop(f);
        p.flush_all().unwrap();
        p.reset_stats();
        let f = p.get(id).unwrap();
        assert_eq!(f.read().data[3], 3);
        assert_eq!(p.stats().physical_reads, 1, "cold read after flush");
    }
}
