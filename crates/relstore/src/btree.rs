//! A page-based B+tree over byte-string keys.
//!
//! Keys are the order-preserving encodings of [`crate::value::encode_key`];
//! values are arbitrary byte strings (a packed [`crate::heap::RecordId`]
//! for secondary indexes, a full encoded row for clustered tables — the
//! BerkeleyDB-style layout of the "ArchIS-ATLaS" configuration).
//!
//! Duplicate keys are allowed; entries sort by `(key, value)`. Deletion is
//! lazy (no rebalancing): ArchIS history tables never delete from archived
//! segments, and live-segment rewrites rebuild their trees wholesale.

use crate::buffer::BufferPool;
use crate::page::{PageId, PAGE_SIZE};
use crate::{Result, StoreError};
use parking_lot::Mutex;
use std::ops::Bound;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

const LEAF_TAG: u8 = 0;
const INTERNAL_TAG: u8 = 1;
const NO_PAGE: u64 = u64::MAX;

/// Most leaves one [`BTree::prefetch_range`] call will hint. Bounds the
/// internal-node walk and keeps a huge range from flooding the readahead
/// queue with pages the cursor will not reach for a long time.
const PREFETCH_LEAF_CAP: usize = 512;

/// Leaf header: tag(1) + count(2) + next(8).
const LEAF_HEADER: usize = 11;
/// Internal header: tag(1) + count(2) + first child(8).
const INTERNAL_HEADER: usize = 11;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        next: Option<PageId>,
    },
    Internal {
        first_child: PageId,
        entries: Vec<(Vec<u8>, PageId)>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                LEAF_HEADER
                    + entries
                        .iter()
                        .map(|(k, v)| 4 + k.len() + v.len())
                        .sum::<usize>()
            }
            Node::Internal { entries, .. } => {
                INTERNAL_HEADER + entries.iter().map(|(k, _)| 10 + k.len()).sum::<usize>()
            }
        }
    }

    fn serialize(&self, out: &mut [u8]) {
        debug_assert!(self.serialized_size() <= PAGE_SIZE);
        match self {
            Node::Leaf { entries, next } => {
                out[0] = LEAF_TAG;
                out[1..3].copy_from_slice(&(entries.len() as u16).to_be_bytes());
                out[3..11].copy_from_slice(&next.unwrap_or(NO_PAGE).to_be_bytes());
                let mut pos = LEAF_HEADER;
                for (k, v) in entries {
                    out[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_be_bytes());
                    out[pos + 2..pos + 4].copy_from_slice(&(v.len() as u16).to_be_bytes());
                    pos += 4;
                    out[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    out[pos..pos + v.len()].copy_from_slice(v);
                    pos += v.len();
                }
            }
            Node::Internal {
                first_child,
                entries,
            } => {
                out[0] = INTERNAL_TAG;
                out[1..3].copy_from_slice(&(entries.len() as u16).to_be_bytes());
                out[3..11].copy_from_slice(&first_child.to_be_bytes());
                let mut pos = INTERNAL_HEADER;
                for (k, child) in entries {
                    out[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_be_bytes());
                    pos += 2;
                    out[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    out[pos..pos + 8].copy_from_slice(&child.to_be_bytes());
                    pos += 8;
                }
            }
        }
    }

    /// Decode a node from the bytes of page `pid` (threaded through so a
    /// damaged node reports which page holds it — fsck and the
    /// index-fallback paths match on that attribution).
    fn deserialize(pid: PageId, data: &[u8]) -> Result<Node> {
        let corrupt = |m: &str| {
            StoreError::corrupt_at(pid, crate::CorruptObject::BTree, format!("node: {m}"))
        };
        match data[0] {
            LEAF_TAG => {
                let count = u16::from_be_bytes(data[1..3].try_into().unwrap()) as usize;
                let next_raw = u64::from_be_bytes(data[3..11].try_into().unwrap());
                let next = (next_raw != NO_PAGE).then_some(next_raw);
                let mut entries = Vec::with_capacity(count);
                let mut pos = LEAF_HEADER;
                for _ in 0..count {
                    let klen = u16::from_be_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
                    let vlen =
                        u16::from_be_bytes(data[pos + 2..pos + 4].try_into().unwrap()) as usize;
                    pos += 4;
                    if pos + klen + vlen > data.len() {
                        return Err(corrupt("leaf entry overruns page"));
                    }
                    let k = data[pos..pos + klen].to_vec();
                    pos += klen;
                    let v = data[pos..pos + vlen].to_vec();
                    pos += vlen;
                    entries.push((k, v));
                }
                Ok(Node::Leaf { entries, next })
            }
            INTERNAL_TAG => {
                let count = u16::from_be_bytes(data[1..3].try_into().unwrap()) as usize;
                let first_child = u64::from_be_bytes(data[3..11].try_into().unwrap());
                let mut entries = Vec::with_capacity(count);
                let mut pos = INTERNAL_HEADER;
                for _ in 0..count {
                    let klen = u16::from_be_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
                    pos += 2;
                    if pos + klen + 8 > data.len() {
                        return Err(corrupt("internal entry overruns page"));
                    }
                    let k = data[pos..pos + klen].to_vec();
                    pos += klen;
                    let child = u64::from_be_bytes(data[pos..pos + 8].try_into().unwrap());
                    pos += 8;
                    entries.push((k, child));
                }
                Ok(Node::Internal {
                    first_child,
                    entries,
                })
            }
            t => Err(corrupt(&format!("unknown tag {t}"))),
        }
    }
}

/// A B+tree. Clone-cheap handle (shares the pool); the root page id is the
/// persistent identity of the tree.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: Mutex<PageId>,
    /// Cached page count; 0 means "unknown" (a tree always has ≥ 1 page).
    /// Pages are only ever added (deletion is lazy), so once known the
    /// counter stays exact by bumping it on every allocation. Shared
    /// (`Arc`) across `clone_handle` so writes through any handle keep
    /// every clone's view exact; only independently `open`ed handles have
    /// separate counters, and such a tree must have a single writer handle.
    pages: Arc<AtomicU64>,
    /// Cached entry count; −1 means "unknown". `create`/`bulk_load` seed
    /// it and insert/delete keep it exact, so `len` on a handle that built
    /// the tree never walks the leaves. Shared across `clone_handle` like
    /// `pages`.
    entries: Arc<AtomicI64>,
}

impl BTree {
    /// Create an empty tree (one empty leaf).
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let node = Node::Leaf {
            entries: Vec::new(),
            next: None,
        };
        let (id, frame) = pool.allocate()?;
        {
            let mut guard = frame.write();
            node.serialize(&mut guard.data[..]);
            guard.dirty = true;
        }
        Ok(BTree {
            pool,
            root: Mutex::new(id),
            pages: Arc::new(AtomicU64::new(1)),
            entries: Arc::new(AtomicI64::new(0)),
        })
    }

    /// Reattach to an existing tree by its root page. The counters start
    /// unknown and are private to this handle (use [`BTree::clone_handle`]
    /// to share them): open the same root twice and the two handles'
    /// cached `len`/`page_count` diverge on writes, so an opened tree must
    /// have at most one writing handle.
    ///
    /// This is a session-layer entry point: production code must reach a
    /// tree through [`Table`](crate::table::Table) (the live writer
    /// session) or through a [`Snapshot`](crate::catalog::Snapshot)'s
    /// frozen pool — never by opening a root against the shared pool
    /// directly, which would bypass the writer-vs-snapshot handle
    /// discipline. `archis-lint`'s `session-layer` rule enforces this.
    pub fn open(pool: Arc<BufferPool>, root: PageId) -> Self {
        BTree {
            pool,
            root: Mutex::new(root),
            pages: Arc::new(AtomicU64::new(0)),
            entries: Arc::new(AtomicI64::new(-1)),
        }
    }

    /// The current root page id (persist as the index root; note it changes
    /// when the root splits).
    pub fn root_page(&self) -> PageId {
        *self.root.lock()
    }

    /// An independent handle to the same tree: shares the pool and the
    /// cached size counters, snapshots the current root. Lets owning
    /// iterators (streaming scans) keep reading without borrowing the
    /// original, and writes through either handle keep both handles'
    /// `len`/`page_count` exact.
    pub fn clone_handle(&self) -> BTree {
        BTree {
            pool: self.pool.clone(),
            root: Mutex::new(self.root_page()),
            pages: self.pages.clone(),
            entries: self.entries.clone(),
        }
    }

    /// Build a tree bottom-up from entries already sorted by `(key, value)`
    /// — the tree's native order. Leaves are packed to capacity and chained
    /// left to right, then each internal level is built from the first key
    /// of every right sibling (the same separator convention `insert`'s
    /// splits produce), so the result obeys every invariant of an
    /// incrementally built tree while writing each page exactly once: no
    /// top-down descent, no splits, no rewritten WAL page images.
    ///
    /// Returns `Corrupt` if the input is out of order and `RecordTooLarge`
    /// for entries `insert` would also reject.
    pub fn bulk_load<I>(pool: Arc<BufferPool>, entries: I) -> Result<BTree>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let mut pages = 0u64;
        let mut alloc_blank = |pool: &Arc<BufferPool>| -> Result<PageId> {
            pages += 1;
            Ok(pool.allocate()?.0)
        };
        let store_at = |pid: PageId, node: &Node| -> Result<()> {
            let frame = pool.get(pid)?;
            let mut guard = frame.write();
            guard.data[..].fill(0);
            node.serialize(&mut guard.data[..]);
            guard.dirty = true;
            Ok(())
        };

        // Leaf level: stream entries into packed leaves. The next-pointer
        // forces allocating a leaf's page before its contents are final, so
        // each leaf's page id is claimed when the previous one closes.
        let mut level: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, page)
        let mut cur: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut cur_size = LEAF_HEADER;
        let mut cur_pid = alloc_blank(&pool)?;
        let mut prev: Option<(Vec<u8>, Vec<u8>)> = None;
        let mut total = 0i64;
        for (k, v) in entries {
            if 4 + k.len() + v.len() > PAGE_SIZE - LEAF_HEADER {
                return Err(StoreError::RecordTooLarge(k.len() + v.len()));
            }
            if let Some((pk, pv)) = &prev {
                if (pk.as_slice(), pv.as_slice()) > (k.as_slice(), v.as_slice()) {
                    return Err(StoreError::corrupt(
                        crate::CorruptObject::BTree,
                        "bulk_load input not sorted by (key, value)",
                    ));
                }
            }
            let cost = 4 + k.len() + v.len();
            if cur_size + cost > PAGE_SIZE {
                let next_pid = alloc_blank(&pool)?;
                let first_key = cur[0].0.clone();
                store_at(
                    cur_pid,
                    &Node::Leaf {
                        entries: std::mem::take(&mut cur),
                        next: Some(next_pid),
                    },
                )?;
                level.push((first_key, cur_pid));
                cur_pid = next_pid;
                cur_size = LEAF_HEADER;
            }
            cur_size += cost;
            prev = Some((k.clone(), v.clone()));
            cur.push((k, v));
            total += 1;
        }
        let first_key = cur.first().map(|(k, _)| k.clone()).unwrap_or_default();
        store_at(
            cur_pid,
            &Node::Leaf {
                entries: cur,
                next: None,
            },
        )?;
        level.push((first_key, cur_pid));

        // Internal levels: group children under packed internal nodes until
        // one node remains. Every key fitting in a leaf also fits as a
        // separator (10 + klen ≤ PAGE_SIZE − INTERNAL_HEADER), so each node
        // absorbs ≥ 2 children when available and the level count shrinks.
        while level.len() > 1 {
            let mut parents: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let (first_key, first_child) = level[i].clone();
                i += 1;
                let mut node_entries: Vec<(Vec<u8>, PageId)> = Vec::new();
                let mut size = INTERNAL_HEADER;
                while i < level.len() {
                    let cost = 10 + level[i].0.len();
                    if size + cost > PAGE_SIZE {
                        break;
                    }
                    node_entries.push(level[i].clone());
                    size += cost;
                    i += 1;
                }
                let pid = alloc_blank(&pool)?;
                store_at(
                    pid,
                    &Node::Internal {
                        first_child,
                        entries: node_entries,
                    },
                )?;
                parents.push((first_key, pid));
            }
            level = parents;
        }

        let root = level[0].1;
        Ok(BTree {
            pool,
            root: Mutex::new(root),
            pages: Arc::new(AtomicU64::new(pages)),
            entries: Arc::new(AtomicI64::new(total)),
        })
    }

    /// Bulk-load `entries` (sorted by `(key, value)`) into this tree,
    /// replacing its contents. Intended for trees known to be empty or
    /// being rewritten wholesale (fresh indexes, vacuum, segment
    /// rewrites): the previous pages are abandoned to lazy reclamation,
    /// like every other delete path in this store.
    pub fn bulk_fill<I>(&self, entries: I) -> Result<()>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let built = BTree::bulk_load(self.pool.clone(), entries)?;
        let mut root = self.root.lock();
        *root = built.root_page();
        self.pages
            .store(built.pages.load(Ordering::Relaxed), Ordering::Relaxed);
        self.entries
            .store(built.entries.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    fn load(&self, id: PageId) -> Result<Node> {
        let frame = self.pool.get(id)?;
        let guard = frame.read();
        Node::deserialize(id, &guard.data[..])
    }

    fn store(&self, id: PageId, node: &Node) -> Result<()> {
        let frame = self.pool.get(id)?;
        let mut guard = frame.write();
        guard.data[..].fill(0);
        node.serialize(&mut guard.data[..]);
        guard.dirty = true;
        Ok(())
    }

    fn alloc(&self, node: &Node) -> Result<PageId> {
        let (id, frame) = self.pool.allocate()?;
        let mut guard = frame.write();
        node.serialize(&mut guard.data[..]);
        guard.dirty = true;
        // Keep the cached page count exact once it is known.
        let _ = self
            .pages
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n != 0).then(|| n + 1)
            });
        Ok(id)
    }

    /// Insert an entry. Duplicate `(key, value)` pairs are stored as given.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<()> {
        if 4 + key.len() + value.len() > PAGE_SIZE - LEAF_HEADER {
            return Err(StoreError::RecordTooLarge(key.len() + value.len()));
        }
        let mut root = self.root.lock();
        if let Some((sep, right)) = self.insert_rec(*root, key, value)? {
            let new_root = Node::Internal {
                first_child: *root,
                entries: vec![(sep, right)],
            };
            *root = self.alloc(&new_root)?;
        }
        // Keep the cached entry count exact once it is known.
        let _ = self
            .entries
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n >= 0).then(|| n + 1)
            });
        Ok(())
    }

    /// Recursive insert; returns `(separator, new right page)` on split.
    fn insert_rec(
        &self,
        pid: PageId,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let mut node = self.load(pid)?;
        match &mut node {
            Node::Leaf { entries, next: _ } => {
                let pos =
                    entries.partition_point(|(k, v)| (k.as_slice(), v.as_slice()) <= (key, value));
                entries.insert(pos, (key.to_vec(), value.to_vec()));
                let appended_at_end = pos == entries.len() - 1;
                if node.serialized_size() <= PAGE_SIZE {
                    self.store(pid, &node)?;
                    return Ok(None);
                }
                // Split by bytes so oversized entries still distribute.
                let Node::Leaf { entries, next } = node else {
                    unreachable!()
                };
                let total: usize = entries.iter().map(|(k, v)| 4 + k.len() + v.len()).sum();
                let mut acc = 0usize;
                let mut cut = entries.len() - 1;
                for (i, (k, v)) in entries.iter().enumerate() {
                    acc += 4 + k.len() + v.len();
                    if acc >= total / 2 {
                        cut = (i + 1).min(entries.len() - 1).max(1);
                        break;
                    }
                }
                if appended_at_end {
                    // Rightmost split: ascending bulk loads (ArchIS's
                    // id-sorted segment rewrites) keep left leaves ~full
                    // instead of half-empty.
                    cut = entries.len() - 1;
                }
                let right_entries = entries[cut..].to_vec();
                let left_entries = entries[..cut].to_vec();
                let sep = right_entries[0].0.clone();
                let right = Node::Leaf {
                    entries: right_entries,
                    next,
                };
                let right_pid = self.alloc(&right)?;
                let left = Node::Leaf {
                    entries: left_entries,
                    next: Some(right_pid),
                };
                self.store(pid, &left)?;
                Ok(Some((sep, right_pid)))
            }
            Node::Internal {
                first_child,
                entries,
            } => {
                // Route to the rightmost child whose separator <= key.
                let idx = entries.partition_point(|(k, _)| k.as_slice() <= key);
                let child = if idx == 0 {
                    *first_child
                } else {
                    entries[idx - 1].1
                };
                if let Some((sep, new_child)) = self.insert_rec(child, key, value)? {
                    entries.insert(idx, (sep, new_child));
                    if node.serialized_size() <= PAGE_SIZE {
                        self.store(pid, &node)?;
                        return Ok(None);
                    }
                    let Node::Internal {
                        first_child,
                        entries,
                    } = node
                    else {
                        unreachable!()
                    };
                    let mid = entries.len() / 2;
                    let (up_key, up_child) = entries[mid].clone();
                    let right = Node::Internal {
                        first_child: up_child,
                        entries: entries[mid + 1..].to_vec(),
                    };
                    let right_pid = self.alloc(&right)?;
                    let left = Node::Internal {
                        first_child,
                        entries: entries[..mid].to_vec(),
                    };
                    self.store(pid, &left)?;
                    Ok(Some((up_key, right_pid)))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// All values stored under exactly `key`.
    pub fn get(&self, key: &[u8]) -> Result<Vec<Vec<u8>>> {
        Ok(self
            .range(Bound::Included(key), Bound::Included(key))?
            .map(|(_, v)| v)
            .collect())
    }

    /// Remove one entry matching `(key, value)`. Returns whether anything
    /// was removed. No rebalancing (lazy deletion).
    pub fn delete(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        let root = self.root.lock();
        let mut pid = *root;
        loop {
            let mut node = self.load(pid)?;
            match &mut node {
                Node::Internal {
                    first_child,
                    entries,
                } => {
                    // Strict `<`, matching `range`: a separator equal to
                    // `key` may leave duplicates of that key in the left
                    // subtree (bulk-loaded leaf boundaries fall wherever a
                    // page fills), so land one child early and let the
                    // forward leaf-chain scan below skip ahead.
                    let idx = entries.partition_point(|(k, _)| k.as_slice() < key);
                    pid = if idx == 0 {
                        *first_child
                    } else {
                        entries[idx - 1].1
                    };
                }
                Node::Leaf { .. } => break,
            }
        }
        // The pair may sit in a later leaf if duplicates span pages.
        loop {
            let mut node = self.load(pid)?;
            let Node::Leaf { entries, next } = &mut node else {
                unreachable!()
            };
            if let Some(pos) = entries.iter().position(|(k, v)| k == key && v == value) {
                entries.remove(pos);
                self.store(pid, &node)?;
                let _ = self
                    .entries
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                        (n > 0).then(|| n - 1)
                    });
                return Ok(true);
            }
            // Stop once past the key.
            if entries.last().is_some_and(|(k, _)| k.as_slice() > key) {
                return Ok(false);
            }
            match next {
                Some(n) => pid = *n,
                None => return Ok(false),
            }
        }
    }

    /// Iterate entries with keys in the given bounds, in key order.
    pub fn range(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> Result<RangeIter> {
        let start_key: &[u8] = match lo {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let root = self.root.lock();
        let mut pid = *root;
        // Descend with strict `<`: a separator equal to the start key may
        // leave duplicates of that key in the left subtree (splits cut by
        // bytes, and bulk-loaded leaf boundaries fall wherever a page
        // fills), so land one child early and let the iterator's lo-bound
        // filter skip ahead along the leaf chain.
        while let Node::Internal {
            first_child,
            entries,
        } = self.load(pid)?
        {
            let idx = entries.partition_point(|(k, _)| k.as_slice() < start_key);
            pid = if idx == 0 {
                first_child
            } else {
                entries[idx - 1].1
            };
        }
        Ok(RangeIter {
            tree: BTree {
                pool: self.pool.clone(),
                root: Mutex::new(*root),
                pages: self.pages.clone(),
                entries: self.entries.clone(),
            },
            leaf: Some(pid),
            entries: Vec::new(),
            pos: 0,
            lo: bound_owned(lo),
            hi: bound_owned(hi),
            primed: false,
            error: None,
        })
    }

    /// The leaf pages a `range(lo, hi)` walk will visit, in visit order,
    /// derived **without loading any leaf**: the tree's height is measured
    /// by one descent along the `lo` edge (those internal nodes are warm
    /// for the range call that follows), then only internal nodes are
    /// walked to enumerate the child pointers one level above the leaves.
    /// Capped at `cap` leaves; bounds are conservative (a leaf or two past
    /// `hi` may be included — harmless for readahead).
    pub fn leaf_runs(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>, cap: usize) -> Result<Vec<PageId>> {
        let start_key: &[u8] = match lo {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let hi_key: Option<&[u8]> = match hi {
            Bound::Included(k) | Bound::Excluded(k) => Some(k),
            Bound::Unbounded => None,
        };
        let root = *self.root.lock();
        // Height probe along the lo edge (same strict-< child choice as
        // `range`, see the comment there about duplicate keys).
        let mut depth = 0usize;
        let mut pid = root;
        loop {
            match self.load(pid)? {
                Node::Leaf { .. } => break,
                Node::Internal {
                    first_child,
                    entries,
                } => {
                    let idx = entries.partition_point(|(k, _)| k.as_slice() < start_key);
                    pid = if idx == 0 {
                        first_child
                    } else {
                        entries[idx - 1].1
                    };
                    depth += 1;
                }
            }
        }
        if depth == 0 {
            return Ok(vec![root]);
        }
        let mut out = Vec::new();
        self.collect_leaf_children(root, depth, start_key, hi_key, cap, &mut out)?;
        Ok(out)
    }

    /// Recursive arm of [`BTree::leaf_runs`]: walk internal nodes down to
    /// one level above the leaves, pushing in-range child (leaf) pointers.
    fn collect_leaf_children(
        &self,
        pid: PageId,
        depth: usize,
        start_key: &[u8],
        hi_key: Option<&[u8]>,
        cap: usize,
        out: &mut Vec<PageId>,
    ) -> Result<()> {
        if out.len() >= cap {
            return Ok(());
        }
        let Node::Internal {
            first_child,
            entries,
        } = self.load(pid)?
        else {
            // Shallower than the probe said (concurrent restructure):
            // readahead is advisory, so just stop quietly.
            return Ok(());
        };
        let idx = entries.partition_point(|(k, _)| k.as_slice() < start_key);
        for j in idx..=entries.len() {
            if out.len() >= cap {
                break;
            }
            // Child j's subtree holds keys ≥ its lower separator; once
            // that separator passes `hi` the remaining children are out of
            // range. (`>` even for an exclusive bound: one extra leaf is
            // cheaper than reasoning about duplicate separators here.)
            if j > 0 {
                if let Some(h) = hi_key {
                    if entries[j - 1].0.as_slice() > h {
                        break;
                    }
                }
            }
            let child = if j == 0 {
                first_child
            } else {
                entries[j - 1].1
            };
            if depth == 1 {
                out.push(child);
            } else {
                self.collect_leaf_children(child, depth - 1, start_key, hi_key, cap, out)?;
            }
        }
        Ok(())
    }

    /// Hint the buffer pool's readahead workers at the leaf pages a
    /// `range(lo, hi)` walk is about to visit. A cheap no-op when prefetch
    /// is disabled; errors are swallowed (the scan itself will surface
    /// them with proper context).
    pub fn prefetch_range(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) {
        if !self.pool.prefetch_enabled() {
            return;
        }
        if let Ok(runs) = self.leaf_runs(lo, hi, PREFETCH_LEAF_CAP) {
            self.pool.prefetch_hint(&runs);
        }
    }

    /// Entries whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<RangeIter> {
        let hi = prefix_upper(prefix);
        match &hi {
            Some(h) => self.range(Bound::Included(prefix), Bound::Excluded(h)),
            None => self.range(Bound::Included(prefix), Bound::Unbounded),
        }
    }

    /// Total entries. O(1) once the count is known: `create`/`bulk_load`
    /// seed it and insert/delete keep it exact; only a tree reattached
    /// with `open` pays one full leaf walk, on the first call.
    pub fn len(&self) -> Result<usize> {
        let cached = self.entries.load(Ordering::Relaxed);
        if cached >= 0 {
            return Ok(cached as usize);
        }
        let mut it = self.range(Bound::Unbounded, Bound::Unbounded)?;
        let n = it.by_ref().count();
        // A walk cut short by a corrupt leaf must not publish (or serve) a
        // silently low count.
        if let Some(e) = it.take_error() {
            return Err(e);
        }
        // Racy double-compute is fine: competing walks publish the same
        // value, and insert/delete only adjust an already-published count.
        let _ = self
            .entries
            .compare_exchange(-1, n as i64, Ordering::Relaxed, Ordering::Relaxed);
        Ok(n)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Pages used by the tree (for storage-size experiments). O(1) once the
    /// count is known: `create`/`bulk_load` seed it and `alloc` keeps it
    /// exact; only a tree reattached with `open` pays one full walk, on the
    /// first call.
    pub fn page_count(&self) -> Result<u64> {
        let cached = self.pages.load(Ordering::Relaxed);
        if cached != 0 {
            return Ok(cached);
        }
        fn rec(t: &BTree, pid: PageId) -> Result<u64> {
            match t.load(pid)? {
                Node::Leaf { .. } => Ok(1),
                Node::Internal {
                    first_child,
                    entries,
                } => {
                    let mut n = 1 + rec(t, first_child)?;
                    for (_, c) in entries {
                        n += rec(t, c)?;
                    }
                    Ok(n)
                }
            }
        }
        let root = *self.root.lock();
        let n = rec(self, root)?;
        // Racy double-compute is fine; both walks see the same tree or a
        // superset, and alloc only bumps an already-published count.
        let _ = self
            .pages
            .compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
        Ok(n)
    }

    /// Test/debug aid: walk the whole tree and check its structural
    /// invariants — uniform leaf depth, sorted entries and separators,
    /// separator bounds on every subtree (keys under a child lie between
    /// its flanking separators, inclusively: duplicates of a separator may
    /// legally sit in the left sibling), and a leaf chain that visits
    /// exactly the tree's leaves in order. Both `insert`-built and
    /// `bulk_load`-built trees must satisfy these.
    pub fn verify_structure(&self) -> Result<()> {
        let bad =
            |m: String| StoreError::corrupt(crate::CorruptObject::BTree, format!("structure: {m}"));
        struct Walk<'a> {
            t: &'a BTree,
            leaves: Vec<PageId>,
            leaf_depth: Option<usize>,
        }
        impl Walk<'_> {
            fn rec(
                &mut self,
                pid: PageId,
                depth: usize,
                lo: Option<&[u8]>,
                hi: Option<&[u8]>,
            ) -> Result<()> {
                let bad = |m: String| {
                    StoreError::corrupt(crate::CorruptObject::BTree, format!("structure: {m}"))
                };
                match self.t.load(pid)? {
                    Node::Leaf { entries, .. } => {
                        match self.leaf_depth {
                            None => self.leaf_depth = Some(depth),
                            Some(d) if d != depth => {
                                return Err(bad(format!(
                                    "leaf {pid} at depth {depth}, expected {d}"
                                )))
                            }
                            _ => {}
                        }
                        let mut prev: Option<(&Vec<u8>, &Vec<u8>)> = None;
                        for (k, v) in &entries {
                            if let Some((pk, pv)) = prev {
                                if (pk, pv) > (k, v) {
                                    return Err(bad(format!("leaf {pid} entries unsorted")));
                                }
                            }
                            if lo.is_some_and(|lo| k.as_slice() < lo) {
                                return Err(bad(format!("leaf {pid} key below separator")));
                            }
                            if hi.is_some_and(|hi| k.as_slice() > hi) {
                                return Err(bad(format!("leaf {pid} key above separator")));
                            }
                            prev = Some((k, v));
                        }
                        self.leaves.push(pid);
                        Ok(())
                    }
                    Node::Internal {
                        first_child,
                        entries,
                    } => {
                        let mut prev: Option<&[u8]> = None;
                        for (k, _) in &entries {
                            if prev.is_some_and(|p| p > k.as_slice()) {
                                return Err(bad(format!("internal {pid} separators unsorted")));
                            }
                            prev = Some(k);
                        }
                        // Recurse with flanking separators as inclusive
                        // bounds; clone to drop the borrow of `entries`.
                        let seps: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
                        let first_hi = seps.first().map(|k| k.as_slice()).or(hi);
                        self.rec(first_child, depth + 1, lo, first_hi)?;
                        for (i, (k, child)) in entries.iter().enumerate() {
                            let child_hi = seps.get(i + 1).map(|k| k.as_slice()).or(hi);
                            self.rec(*child, depth + 1, Some(k), child_hi)?;
                        }
                        Ok(())
                    }
                }
            }
        }
        let root = *self.root.lock();
        let mut walk = Walk {
            t: self,
            leaves: Vec::new(),
            leaf_depth: None,
        };
        walk.rec(root, 0, None, None)?;
        // The leaf chain must visit exactly the in-order leaves.
        let mut pid = walk.leaves[0];
        for (i, want) in walk.leaves.iter().enumerate() {
            if pid != *want {
                return Err(bad(format!("leaf chain diverges at position {i}")));
            }
            match self.load(pid)? {
                Node::Leaf { next, .. } => match next {
                    Some(n) => pid = n,
                    None => {
                        if i + 1 != walk.leaves.len() {
                            return Err(bad("leaf chain ends early".into()));
                        }
                    }
                },
                _ => unreachable!(),
            }
        }
        Ok(())
    }
}

/// The smallest byte string greater than every string with this prefix.
pub fn prefix_upper(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut hi = prefix.to_vec();
    while let Some(last) = hi.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(hi);
        }
        hi.pop();
    }
    None
}

fn bound_owned(b: Bound<&[u8]>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(k) => Bound::Included(k.to_vec()),
        Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Ordered iterator over a key range; walks the leaf chain lazily.
///
/// A leaf that fails to load (checksum mismatch, mangled node) ends the
/// iteration and parks the error in [`RangeIter::take_error`]; callers
/// that must not return silently truncated results check it after
/// draining the iterator.
pub struct RangeIter {
    tree: BTree,
    leaf: Option<PageId>,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    lo: Bound<Vec<u8>>,
    hi: Bound<Vec<u8>>,
    primed: bool,
    error: Option<StoreError>,
}

impl RangeIter {
    /// The error that cut the walk short, if any. `None` after a walk that
    /// visited every in-range entry.
    pub fn take_error(&mut self) -> Option<StoreError> {
        self.error.take()
    }
}

impl Iterator for RangeIter {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.entries.len() {
                let (k, v) = &self.entries[self.pos];
                self.pos += 1;
                if !self.primed {
                    let in_lo = match &self.lo {
                        Bound::Included(lo) => k >= lo,
                        Bound::Excluded(lo) => k > lo,
                        Bound::Unbounded => true,
                    };
                    if !in_lo {
                        continue;
                    }
                    self.primed = true;
                }
                let in_hi = match &self.hi {
                    Bound::Included(hi) => k <= hi,
                    Bound::Excluded(hi) => k < hi,
                    Bound::Unbounded => true,
                };
                if !in_hi {
                    self.leaf = None;
                    self.entries.clear();
                    return None;
                }
                return Some((k.clone(), v.clone()));
            }
            let pid = self.leaf.take()?;
            match self.tree.load(pid) {
                Ok(Node::Leaf { entries, next }) => {
                    self.entries = entries;
                    self.pos = 0;
                    self.leaf = next;
                }
                Ok(Node::Internal { .. }) => {
                    self.error = Some(StoreError::corrupt_at(
                        pid,
                        crate::CorruptObject::BTree,
                        "internal node linked into the leaf chain",
                    ));
                    return None;
                }
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn tree() -> BTree {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 256));
        BTree::create(pool).unwrap()
    }

    #[test]
    fn insert_and_point_lookup() {
        let t = tree();
        t.insert(b"bob", b"1").unwrap();
        t.insert(b"alice", b"2").unwrap();
        t.insert(b"carol", b"3").unwrap();
        assert_eq!(t.get(b"alice").unwrap(), vec![b"2".to_vec()]);
        assert_eq!(t.get(b"dave").unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn duplicates_all_returned() {
        let t = tree();
        t.insert(b"k", b"v1").unwrap();
        t.insert(b"k", b"v2").unwrap();
        t.insert(b"k", b"v1").unwrap();
        let mut vs = t.get(b"k").unwrap();
        vs.sort();
        assert_eq!(vs, vec![b"v1".to_vec(), b"v1".to_vec(), b"v2".to_vec()]);
    }

    #[test]
    fn thousands_of_keys_stay_sorted() {
        let t = tree();
        let mut keys: Vec<u32> = (0..5000).collect();
        // Insert in a scrambled order.
        for i in 0..keys.len() {
            let j = (i * 2654435761) % keys.len();
            keys.swap(i, j);
        }
        for k in &keys {
            t.insert(&k.to_be_bytes(), format!("val{k}").as_bytes())
                .unwrap();
        }
        let all: Vec<_> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect();
        assert_eq!(all.len(), 5000);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(k, &(i as u32).to_be_bytes().to_vec());
            assert_eq!(v, format!("val{i}").as_bytes());
        }
        assert!(t.page_count().unwrap() > 3, "tree must have split");
    }

    #[test]
    fn range_bounds_are_respected() {
        let t = tree();
        for k in 0u32..100 {
            t.insert(&k.to_be_bytes(), b"x").unwrap();
        }
        let collect = |lo: Bound<&[u8]>, hi: Bound<&[u8]>| -> Vec<u32> {
            t.range(lo, hi)
                .unwrap()
                .map(|(k, _)| u32::from_be_bytes(k.try_into().unwrap()))
                .collect()
        };
        let lo = 10u32.to_be_bytes();
        let hi = 20u32.to_be_bytes();
        assert_eq!(
            collect(Bound::Included(&lo), Bound::Excluded(&hi)),
            (10..20).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(Bound::Excluded(&lo), Bound::Included(&hi)),
            (11..=20).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(Bound::Unbounded, Bound::Excluded(&lo)),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(Bound::Included(&hi), Bound::Unbounded),
            (20..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn leaf_runs_cover_exactly_the_pages_a_range_walk_visits() {
        let t = tree();
        for k in 0u32..3000 {
            t.insert(&k.to_be_bytes(), format!("v{k}").as_bytes())
                .unwrap();
        }
        // The leaf chain a full walk visits, gathered directly.
        let mut walked = Vec::new();
        let mut pid = {
            let mut p = *t.root.lock();
            loop {
                match t.load(p).unwrap() {
                    Node::Leaf { .. } => break p,
                    Node::Internal { first_child, .. } => p = first_child,
                }
            }
        };
        loop {
            walked.push(pid);
            match t.load(pid).unwrap() {
                Node::Leaf { next: Some(n), .. } => pid = n,
                Node::Leaf { next: None, .. } => break,
                Node::Internal { .. } => unreachable!("leaf chain left the leaf level"),
            }
        }
        let runs = t
            .leaf_runs(Bound::Unbounded, Bound::Unbounded, usize::MAX)
            .unwrap();
        assert_eq!(runs, walked, "unbounded runs = the whole leaf chain");

        // A bounded range's runs are a contiguous slice of the chain that
        // covers every leaf the bounded walk touches.
        let lo = 700u32.to_be_bytes();
        let hi = 2100u32.to_be_bytes();
        let bounded = t
            .leaf_runs(Bound::Included(&lo), Bound::Excluded(&hi), usize::MAX)
            .unwrap();
        assert!(!bounded.is_empty());
        let start = walked
            .iter()
            .position(|p| *p == bounded[0])
            .expect("runs start on the chain");
        assert_eq!(
            &walked[start..start + bounded.len()],
            &bounded[..],
            "bounded runs are a contiguous chain slice"
        );
        let n: usize = t
            .range(Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
            .unwrap()
            .count();
        assert_eq!(n, 1400);
        // Every key in range lives in a leaf listed by leaf_runs: prove it
        // by checking the leaves outside `bounded` hold no in-range key.
        for (i, leaf) in walked.iter().enumerate() {
            if i >= start && i < start + bounded.len() {
                continue;
            }
            let Node::Leaf { entries, .. } = t.load(*leaf).unwrap() else {
                unreachable!()
            };
            assert!(
                !entries
                    .iter()
                    .any(|(k, _)| k.as_slice() >= &lo[..] && k.as_slice() < &hi[..]),
                "leaf {leaf} outside the runs holds an in-range key"
            );
        }

        // The cap is honoured.
        let capped = t.leaf_runs(Bound::Unbounded, Bound::Unbounded, 3).unwrap();
        assert_eq!(capped.len(), 3);
        assert_eq!(&walked[..3], &capped[..]);
    }

    #[test]
    fn prefix_scan() {
        let t = tree();
        t.insert(b"emp:1:salary", b"a").unwrap();
        t.insert(b"emp:1:title", b"b").unwrap();
        t.insert(b"emp:2:salary", b"c").unwrap();
        t.insert(b"dept:1", b"d").unwrap();
        let hits: Vec<_> = t.scan_prefix(b"emp:1:").unwrap().map(|(k, _)| k).collect();
        assert_eq!(
            hits,
            vec![b"emp:1:salary".to_vec(), b"emp:1:title".to_vec()]
        );
        assert_eq!(t.scan_prefix(b"zzz").unwrap().count(), 0);
    }

    #[test]
    fn prefix_upper_bound_handles_ff() {
        assert_eq!(prefix_upper(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_upper(&[0x61, 0xFF]), Some(vec![0x62]));
        assert_eq!(prefix_upper(&[0xFF, 0xFF]), None);
    }

    #[test]
    fn delete_removes_one_instance() {
        let t = tree();
        t.insert(b"k", b"v").unwrap();
        t.insert(b"k", b"v").unwrap();
        assert!(t.delete(b"k", b"v").unwrap());
        assert_eq!(t.get(b"k").unwrap().len(), 1);
        assert!(t.delete(b"k", b"v").unwrap());
        assert!(!t.delete(b"k", b"v").unwrap());
        assert!(t.is_empty().unwrap());
    }

    #[test]
    fn delete_across_split_leaves() {
        let t = tree();
        for i in 0u32..2000 {
            t.insert(&i.to_be_bytes(), &[0u8; 16]).unwrap();
        }
        for i in (0u32..2000).step_by(3) {
            assert!(
                t.delete(&i.to_be_bytes(), &[0u8; 16]).unwrap(),
                "delete {i}"
            );
        }
        assert_eq!(t.len().unwrap(), 2000 - 2000usize.div_ceil(3));
    }

    #[test]
    fn large_values_split_correctly() {
        let t = tree();
        for i in 0u32..16 {
            t.insert(&i.to_be_bytes(), &vec![i as u8; 800]).unwrap();
        }
        let all: Vec<_> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect();
        assert_eq!(all.len(), 16);
        for (i, (_, v)) in all.iter().enumerate() {
            assert_eq!(v.len(), 800);
            assert_eq!(v[0], i as u8);
        }
    }

    #[test]
    fn oversized_entry_rejected() {
        let t = tree();
        assert!(matches!(
            t.insert(b"k", &vec![0u8; PAGE_SIZE]),
            Err(StoreError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn bulk_load_matches_incremental_scan() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 512));
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0u32..5000)
            .map(|i| (i.to_be_bytes().to_vec(), format!("val{i}").into_bytes()))
            .collect();
        let bulk = BTree::bulk_load(pool.clone(), entries.clone()).unwrap();
        let inc = BTree::create(pool).unwrap();
        for (k, v) in &entries {
            inc.insert(k, v).unwrap();
        }
        let scan = |t: &BTree| -> Vec<(Vec<u8>, Vec<u8>)> {
            t.range(Bound::Unbounded, Bound::Unbounded)
                .unwrap()
                .collect()
        };
        assert_eq!(scan(&bulk), scan(&inc));
        assert_eq!(
            bulk.get(&1234u32.to_be_bytes()).unwrap(),
            vec![b"val1234".to_vec()]
        );
        assert!(
            bulk.page_count().unwrap() > 3,
            "bulk tree must have multiple pages"
        );
        // Packed leaves: the bulk tree never uses more pages than splits do.
        assert!(bulk.page_count().unwrap() <= inc.page_count().unwrap());
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 64));
        let empty = BTree::bulk_load(pool.clone(), Vec::new()).unwrap();
        assert!(empty.is_empty().unwrap());
        empty.insert(b"k", b"v").unwrap();
        assert_eq!(empty.get(b"k").unwrap(), vec![b"v".to_vec()]);
        let one = BTree::bulk_load(pool, vec![(b"a".to_vec(), b"1".to_vec())]).unwrap();
        assert_eq!(one.len().unwrap(), 1);
        assert_eq!(one.page_count().unwrap(), 1);
    }

    #[test]
    fn bulk_load_duplicates_across_pages() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 256));
        // 3000 copies of one key span many leaves; range must see them all.
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0u32..3000)
            .map(|i| (b"dup".to_vec(), i.to_be_bytes().to_vec()))
            .collect();
        let t = BTree::bulk_load(pool, entries).unwrap();
        assert_eq!(t.get(b"dup").unwrap().len(), 3000);
        assert!(t.page_count().unwrap() > 3);
    }

    #[test]
    fn bulk_load_rejects_unsorted_and_oversized() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 64));
        let unsorted = vec![(b"b".to_vec(), vec![]), (b"a".to_vec(), vec![])];
        assert!(matches!(
            BTree::bulk_load(pool.clone(), unsorted),
            Err(StoreError::Corrupt { .. })
        ));
        let oversized = vec![(b"k".to_vec(), vec![0u8; PAGE_SIZE])];
        assert!(matches!(
            BTree::bulk_load(pool, oversized),
            Err(StoreError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 512));
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0u32..2000)
            .map(|i| ((i * 2).to_be_bytes().to_vec(), vec![7u8; 8]))
            .collect();
        let t = BTree::bulk_load(pool, entries).unwrap();
        // Odd keys land between packed leaves and force immediate splits.
        for i in 0u32..2000 {
            t.insert(&(i * 2 + 1).to_be_bytes(), &[9u8; 8]).unwrap();
        }
        let all: Vec<_> = t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect();
        assert_eq!(all.len(), 4000);
        for (i, (k, _)) in all.iter().enumerate() {
            assert_eq!(k, &(i as u32).to_be_bytes().to_vec());
        }
    }

    #[test]
    fn page_count_is_cached_without_io() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 8));
        let t = BTree::create(pool.clone()).unwrap();
        for i in 0u32..4000 {
            t.insert(&i.to_be_bytes(), &[0u8; 16]).unwrap();
        }
        let walked = {
            // A fresh handle must pay exactly one full walk...
            let reopened = BTree::open(pool.clone(), t.root_page());
            let n = reopened.page_count().unwrap();
            pool.reset_stats();
            assert_eq!(reopened.page_count().unwrap(), n);
            let after = pool.stats();
            assert_eq!(
                after.physical_reads, 0,
                "second page_count must not hit disk"
            );
            assert_eq!(
                after.logical_reads, 0,
                "second page_count must not touch the pool"
            );
            n
        };
        // ...while the tree that allocated its own pages never walks at all.
        assert!(
            walked as usize > 8,
            "tree must outgrow the pool for this test"
        );
        pool.reset_stats();
        assert_eq!(t.page_count().unwrap(), walked);
        assert_eq!(pool.stats().logical_reads, 0);
    }

    #[test]
    fn len_is_cached_without_io() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 8));
        let t = BTree::create(pool.clone()).unwrap();
        for i in 0u32..4000 {
            t.insert(&i.to_be_bytes(), &[0u8; 16]).unwrap();
        }
        for i in 0u32..100 {
            assert!(t.delete(&i.to_be_bytes(), &[0u8; 16]).unwrap());
        }
        // The building handle tracked every insert/delete: len is free.
        pool.reset_stats();
        assert_eq!(t.len().unwrap(), 3900);
        assert!(!t.is_empty().unwrap());
        assert_eq!(
            pool.stats().logical_reads,
            0,
            "len on a tracked handle must not do I/O"
        );
        // A reopened handle pays one walk, then answers from the cache.
        let reopened = BTree::open(pool.clone(), t.root_page());
        assert_eq!(reopened.len().unwrap(), 3900);
        pool.reset_stats();
        assert_eq!(reopened.len().unwrap(), 3900);
        assert_eq!(
            pool.stats().logical_reads,
            0,
            "second len must not touch the pool"
        );
        // Deleting a missing pair leaves the count alone.
        assert!(!t.delete(b"missing", b"none").unwrap());
        assert_eq!(t.len().unwrap(), 3900);
    }

    #[test]
    fn range_finds_duplicates_left_of_separator() {
        // Force duplicates of one key to straddle a leaf boundary, then ask
        // for exactly that key: the descent must land left of the equal
        // separator or the left leaf's copies are lost.
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 256));
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0u32..500 {
            entries.push((b"aa".to_vec(), i.to_be_bytes().to_vec()));
        }
        for i in 0u32..500 {
            entries.push((b"bb".to_vec(), i.to_be_bytes().to_vec()));
        }
        let t = BTree::bulk_load(pool, entries).unwrap();
        assert_eq!(t.get(b"aa").unwrap().len(), 500);
        assert_eq!(t.get(b"bb").unwrap().len(), 500);
    }

    #[test]
    fn delete_finds_duplicates_left_of_separator() {
        // Delete-side twin of range_finds_duplicates_left_of_separator:
        // bulk_load packs duplicates of one key across leaf boundaries, so
        // internal separators equal the key and the copies sit in the left
        // subtree. Every (key, value) pair must still be deletable.
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 256));
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0u32..500 {
            entries.push((b"aa".to_vec(), i.to_be_bytes().to_vec()));
        }
        for i in 0u32..500 {
            entries.push((b"bb".to_vec(), i.to_be_bytes().to_vec()));
        }
        let t = BTree::bulk_load(pool, entries).unwrap();
        for i in 0u32..500 {
            assert!(
                t.delete(b"aa", &i.to_be_bytes()).unwrap(),
                "aa/{i} must be found despite equal separators"
            );
        }
        assert_eq!(t.get(b"aa").unwrap().len(), 0);
        assert_eq!(t.get(b"bb").unwrap().len(), 500);
        // Deleting the already-deleted pairs reports false, not a hang.
        assert!(!t.delete(b"aa", &0u32.to_be_bytes()).unwrap());
    }

    #[test]
    fn reopen_by_root_page() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 256));
        let t = BTree::create(pool.clone()).unwrap();
        for i in 0u32..1000 {
            t.insert(&i.to_be_bytes(), b"v").unwrap();
        }
        let root = t.root_page();
        drop(t);
        let t2 = BTree::open(pool, root);
        assert_eq!(t2.len().unwrap(), 1000);
    }
}
