//! A page-based B+tree over byte-string keys.
//!
//! Keys are the order-preserving encodings of [`crate::value::encode_key`];
//! values are arbitrary byte strings (a packed [`crate::heap::RecordId`]
//! for secondary indexes, a full encoded row for clustered tables — the
//! BerkeleyDB-style layout of the "ArchIS-ATLaS" configuration).
//!
//! Duplicate keys are allowed; entries sort by `(key, value)`. Deletion is
//! lazy (no rebalancing): ArchIS history tables never delete from archived
//! segments, and live-segment rewrites rebuild their trees wholesale.

use crate::buffer::BufferPool;
use crate::page::{PageId, PAGE_SIZE};
use crate::{Result, StoreError};
use parking_lot::Mutex;
use std::ops::Bound;
use std::sync::Arc;

const LEAF_TAG: u8 = 0;
const INTERNAL_TAG: u8 = 1;
const NO_PAGE: u64 = u64::MAX;

/// Leaf header: tag(1) + count(2) + next(8).
const LEAF_HEADER: usize = 11;
/// Internal header: tag(1) + count(2) + first child(8).
const INTERNAL_HEADER: usize = 11;

#[derive(Debug, Clone)]
enum Node {
    Leaf { entries: Vec<(Vec<u8>, Vec<u8>)>, next: Option<PageId> },
    Internal { first_child: PageId, entries: Vec<(Vec<u8>, PageId)> },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                LEAF_HEADER + entries.iter().map(|(k, v)| 4 + k.len() + v.len()).sum::<usize>()
            }
            Node::Internal { entries, .. } => {
                INTERNAL_HEADER + entries.iter().map(|(k, _)| 10 + k.len()).sum::<usize>()
            }
        }
    }

    fn serialize(&self, out: &mut [u8]) {
        debug_assert!(self.serialized_size() <= PAGE_SIZE);
        match self {
            Node::Leaf { entries, next } => {
                out[0] = LEAF_TAG;
                out[1..3].copy_from_slice(&(entries.len() as u16).to_be_bytes());
                out[3..11].copy_from_slice(&next.unwrap_or(NO_PAGE).to_be_bytes());
                let mut pos = LEAF_HEADER;
                for (k, v) in entries {
                    out[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_be_bytes());
                    out[pos + 2..pos + 4].copy_from_slice(&(v.len() as u16).to_be_bytes());
                    pos += 4;
                    out[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    out[pos..pos + v.len()].copy_from_slice(v);
                    pos += v.len();
                }
            }
            Node::Internal { first_child, entries } => {
                out[0] = INTERNAL_TAG;
                out[1..3].copy_from_slice(&(entries.len() as u16).to_be_bytes());
                out[3..11].copy_from_slice(&first_child.to_be_bytes());
                let mut pos = INTERNAL_HEADER;
                for (k, child) in entries {
                    out[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_be_bytes());
                    pos += 2;
                    out[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    out[pos..pos + 8].copy_from_slice(&child.to_be_bytes());
                    pos += 8;
                }
            }
        }
    }

    fn deserialize(data: &[u8]) -> Result<Node> {
        let corrupt = |m: &str| StoreError::Corrupt(format!("btree node: {m}"));
        match data[0] {
            LEAF_TAG => {
                let count = u16::from_be_bytes(data[1..3].try_into().unwrap()) as usize;
                let next_raw = u64::from_be_bytes(data[3..11].try_into().unwrap());
                let next = (next_raw != NO_PAGE).then_some(next_raw);
                let mut entries = Vec::with_capacity(count);
                let mut pos = LEAF_HEADER;
                for _ in 0..count {
                    let klen =
                        u16::from_be_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
                    let vlen =
                        u16::from_be_bytes(data[pos + 2..pos + 4].try_into().unwrap()) as usize;
                    pos += 4;
                    if pos + klen + vlen > data.len() {
                        return Err(corrupt("leaf entry overruns page"));
                    }
                    let k = data[pos..pos + klen].to_vec();
                    pos += klen;
                    let v = data[pos..pos + vlen].to_vec();
                    pos += vlen;
                    entries.push((k, v));
                }
                Ok(Node::Leaf { entries, next })
            }
            INTERNAL_TAG => {
                let count = u16::from_be_bytes(data[1..3].try_into().unwrap()) as usize;
                let first_child = u64::from_be_bytes(data[3..11].try_into().unwrap());
                let mut entries = Vec::with_capacity(count);
                let mut pos = INTERNAL_HEADER;
                for _ in 0..count {
                    let klen =
                        u16::from_be_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
                    pos += 2;
                    if pos + klen + 8 > data.len() {
                        return Err(corrupt("internal entry overruns page"));
                    }
                    let k = data[pos..pos + klen].to_vec();
                    pos += klen;
                    let child = u64::from_be_bytes(data[pos..pos + 8].try_into().unwrap());
                    pos += 8;
                    entries.push((k, child));
                }
                Ok(Node::Internal { first_child, entries })
            }
            t => Err(corrupt(&format!("unknown tag {t}"))),
        }
    }
}

/// A B+tree. Clone-cheap handle (shares the pool); the root page id is the
/// persistent identity of the tree.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: Mutex<PageId>,
}

impl BTree {
    /// Create an empty tree (one empty leaf).
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let node = Node::Leaf { entries: Vec::new(), next: None };
        let (id, frame) = pool.allocate()?;
        {
            let mut guard = frame.write();
            node.serialize(&mut guard.data[..]);
            guard.dirty = true;
        }
        Ok(BTree { pool, root: Mutex::new(id) })
    }

    /// Reattach to an existing tree by its root page.
    pub fn open(pool: Arc<BufferPool>, root: PageId) -> Self {
        BTree { pool, root: Mutex::new(root) }
    }

    /// The current root page id (persist as the index root; note it changes
    /// when the root splits).
    pub fn root_page(&self) -> PageId {
        *self.root.lock()
    }

    /// An independent handle to the same tree: shares the pool, snapshots
    /// the current root. Lets owning iterators (streaming scans) keep
    /// reading without borrowing the original.
    pub fn clone_handle(&self) -> BTree {
        BTree { pool: self.pool.clone(), root: Mutex::new(self.root_page()) }
    }

    fn load(&self, id: PageId) -> Result<Node> {
        let frame = self.pool.get(id)?;
        let guard = frame.read();
        Node::deserialize(&guard.data[..])
    }

    fn store(&self, id: PageId, node: &Node) -> Result<()> {
        let frame = self.pool.get(id)?;
        let mut guard = frame.write();
        guard.data[..].fill(0);
        node.serialize(&mut guard.data[..]);
        guard.dirty = true;
        Ok(())
    }

    fn alloc(&self, node: &Node) -> Result<PageId> {
        let (id, frame) = self.pool.allocate()?;
        let mut guard = frame.write();
        node.serialize(&mut guard.data[..]);
        guard.dirty = true;
        Ok(id)
    }

    /// Insert an entry. Duplicate `(key, value)` pairs are stored as given.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<()> {
        if 4 + key.len() + value.len() > PAGE_SIZE - LEAF_HEADER {
            return Err(StoreError::RecordTooLarge(key.len() + value.len()));
        }
        let mut root = self.root.lock();
        if let Some((sep, right)) = self.insert_rec(*root, key, value)? {
            let new_root =
                Node::Internal { first_child: *root, entries: vec![(sep, right)] };
            *root = self.alloc(&new_root)?;
        }
        Ok(())
    }

    /// Recursive insert; returns `(separator, new right page)` on split.
    fn insert_rec(
        &self,
        pid: PageId,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let mut node = self.load(pid)?;
        match &mut node {
            Node::Leaf { entries, next: _ } => {
                let pos = entries
                    .partition_point(|(k, v)| (k.as_slice(), v.as_slice()) <= (key, value));
                entries.insert(pos, (key.to_vec(), value.to_vec()));
                let appended_at_end = pos == entries.len() - 1;
                if node.serialized_size() <= PAGE_SIZE {
                    self.store(pid, &node)?;
                    return Ok(None);
                }
                // Split by bytes so oversized entries still distribute.
                let Node::Leaf { entries, next } = node else { unreachable!() };
                let total: usize = entries.iter().map(|(k, v)| 4 + k.len() + v.len()).sum();
                let mut acc = 0usize;
                let mut cut = entries.len() - 1;
                for (i, (k, v)) in entries.iter().enumerate() {
                    acc += 4 + k.len() + v.len();
                    if acc >= total / 2 {
                        cut = (i + 1).min(entries.len() - 1).max(1);
                        break;
                    }
                }
                if appended_at_end {
                    // Rightmost split: ascending bulk loads (ArchIS's
                    // id-sorted segment rewrites) keep left leaves ~full
                    // instead of half-empty.
                    cut = entries.len() - 1;
                }
                let right_entries = entries[cut..].to_vec();
                let left_entries = entries[..cut].to_vec();
                let sep = right_entries[0].0.clone();
                let right = Node::Leaf { entries: right_entries, next };
                let right_pid = self.alloc(&right)?;
                let left = Node::Leaf { entries: left_entries, next: Some(right_pid) };
                self.store(pid, &left)?;
                Ok(Some((sep, right_pid)))
            }
            Node::Internal { first_child, entries } => {
                // Route to the rightmost child whose separator <= key.
                let idx = entries.partition_point(|(k, _)| k.as_slice() <= key);
                let child = if idx == 0 { *first_child } else { entries[idx - 1].1 };
                if let Some((sep, new_child)) = self.insert_rec(child, key, value)? {
                    entries.insert(idx, (sep, new_child));
                    if node.serialized_size() <= PAGE_SIZE {
                        self.store(pid, &node)?;
                        return Ok(None);
                    }
                    let Node::Internal { first_child, entries } = node else { unreachable!() };
                    let mid = entries.len() / 2;
                    let (up_key, up_child) = entries[mid].clone();
                    let right = Node::Internal {
                        first_child: up_child,
                        entries: entries[mid + 1..].to_vec(),
                    };
                    let right_pid = self.alloc(&right)?;
                    let left =
                        Node::Internal { first_child, entries: entries[..mid].to_vec() };
                    self.store(pid, &left)?;
                    Ok(Some((up_key, right_pid)))
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// All values stored under exactly `key`.
    pub fn get(&self, key: &[u8]) -> Result<Vec<Vec<u8>>> {
        Ok(self
            .range(Bound::Included(key), Bound::Included(key))?
            .map(|(_, v)| v)
            .collect())
    }

    /// Remove one entry matching `(key, value)`. Returns whether anything
    /// was removed. No rebalancing (lazy deletion).
    pub fn delete(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        let root = self.root.lock();
        let mut pid = *root;
        loop {
            let mut node = self.load(pid)?;
            match &mut node {
                Node::Internal { first_child, entries } => {
                    let idx = entries.partition_point(|(k, _)| k.as_slice() <= key);
                    pid = if idx == 0 { *first_child } else { entries[idx - 1].1 };
                }
                Node::Leaf { .. } => break,
            }
        }
        // The pair may sit in a later leaf if duplicates span pages.
        loop {
            let mut node = self.load(pid)?;
            let Node::Leaf { entries, next } = &mut node else { unreachable!() };
            if let Some(pos) = entries.iter().position(|(k, v)| k == key && v == value) {
                entries.remove(pos);
                self.store(pid, &node)?;
                return Ok(true);
            }
            // Stop once past the key.
            if entries.last().map_or(false, |(k, _)| k.as_slice() > key) {
                return Ok(false);
            }
            match next {
                Some(n) => pid = *n,
                None => return Ok(false),
            }
        }
    }

    /// Iterate entries with keys in the given bounds, in key order.
    pub fn range(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> Result<RangeIter> {
        let start_key: &[u8] = match lo {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let root = self.root.lock();
        let mut pid = *root;
        loop {
            match self.load(pid)? {
                Node::Internal { first_child, entries } => {
                    let idx = entries.partition_point(|(k, _)| k.as_slice() <= start_key);
                    pid = if idx == 0 { first_child } else { entries[idx - 1].1 };
                }
                Node::Leaf { .. } => break,
            }
        }
        Ok(RangeIter {
            tree: BTree { pool: self.pool.clone(), root: Mutex::new(*root) },
            leaf: Some(pid),
            entries: Vec::new(),
            pos: 0,
            lo: bound_owned(lo),
            hi: bound_owned(hi),
            primed: false,
        })
    }

    /// Entries whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<RangeIter> {
        let hi = prefix_upper(prefix);
        match &hi {
            Some(h) => self.range(Bound::Included(prefix), Bound::Excluded(h)),
            None => self.range(Bound::Included(prefix), Bound::Unbounded),
        }
    }

    /// Total entries (walks every leaf).
    pub fn len(&self) -> Result<usize> {
        Ok(self.range(Bound::Unbounded, Bound::Unbounded)?.count())
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Pages used by the tree (for storage-size experiments).
    pub fn page_count(&self) -> Result<u64> {
        fn rec(t: &BTree, pid: PageId) -> Result<u64> {
            match t.load(pid)? {
                Node::Leaf { .. } => Ok(1),
                Node::Internal { first_child, entries } => {
                    let mut n = 1 + rec(t, first_child)?;
                    for (_, c) in entries {
                        n += rec(t, c)?;
                    }
                    Ok(n)
                }
            }
        }
        let root = *self.root.lock();
        rec(self, root)
    }
}

/// The smallest byte string greater than every string with this prefix.
pub fn prefix_upper(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut hi = prefix.to_vec();
    while let Some(last) = hi.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(hi);
        }
        hi.pop();
    }
    None
}

fn bound_owned(b: Bound<&[u8]>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(k) => Bound::Included(k.to_vec()),
        Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Ordered iterator over a key range; walks the leaf chain lazily.
pub struct RangeIter {
    tree: BTree,
    leaf: Option<PageId>,
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    lo: Bound<Vec<u8>>,
    hi: Bound<Vec<u8>>,
    primed: bool,
}

impl Iterator for RangeIter {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.entries.len() {
                let (k, v) = &self.entries[self.pos];
                self.pos += 1;
                if !self.primed {
                    let in_lo = match &self.lo {
                        Bound::Included(lo) => k >= lo,
                        Bound::Excluded(lo) => k > lo,
                        Bound::Unbounded => true,
                    };
                    if !in_lo {
                        continue;
                    }
                    self.primed = true;
                }
                let in_hi = match &self.hi {
                    Bound::Included(hi) => k <= hi,
                    Bound::Excluded(hi) => k < hi,
                    Bound::Unbounded => true,
                };
                if !in_hi {
                    self.leaf = None;
                    self.entries.clear();
                    return None;
                }
                return Some((k.clone(), v.clone()));
            }
            let pid = self.leaf.take()?;
            match self.tree.load(pid) {
                Ok(Node::Leaf { entries, next }) => {
                    self.entries = entries;
                    self.pos = 0;
                    self.leaf = next;
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn tree() -> BTree {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 256));
        BTree::create(pool).unwrap()
    }

    #[test]
    fn insert_and_point_lookup() {
        let t = tree();
        t.insert(b"bob", b"1").unwrap();
        t.insert(b"alice", b"2").unwrap();
        t.insert(b"carol", b"3").unwrap();
        assert_eq!(t.get(b"alice").unwrap(), vec![b"2".to_vec()]);
        assert_eq!(t.get(b"dave").unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn duplicates_all_returned() {
        let t = tree();
        t.insert(b"k", b"v1").unwrap();
        t.insert(b"k", b"v2").unwrap();
        t.insert(b"k", b"v1").unwrap();
        let mut vs = t.get(b"k").unwrap();
        vs.sort();
        assert_eq!(vs, vec![b"v1".to_vec(), b"v1".to_vec(), b"v2".to_vec()]);
    }

    #[test]
    fn thousands_of_keys_stay_sorted() {
        let t = tree();
        let mut keys: Vec<u32> = (0..5000).collect();
        // Insert in a scrambled order.
        for i in 0..keys.len() {
            let j = (i * 2654435761) % keys.len();
            keys.swap(i, j);
        }
        for k in &keys {
            t.insert(&k.to_be_bytes(), format!("val{k}").as_bytes()).unwrap();
        }
        let all: Vec<_> = t.range(Bound::Unbounded, Bound::Unbounded).unwrap().collect();
        assert_eq!(all.len(), 5000);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(k, &(i as u32).to_be_bytes().to_vec());
            assert_eq!(v, format!("val{i}").as_bytes());
        }
        assert!(t.page_count().unwrap() > 3, "tree must have split");
    }

    #[test]
    fn range_bounds_are_respected() {
        let t = tree();
        for k in 0u32..100 {
            t.insert(&k.to_be_bytes(), b"x").unwrap();
        }
        let collect = |lo: Bound<&[u8]>, hi: Bound<&[u8]>| -> Vec<u32> {
            t.range(lo, hi)
                .unwrap()
                .map(|(k, _)| u32::from_be_bytes(k.try_into().unwrap()))
                .collect()
        };
        let lo = 10u32.to_be_bytes();
        let hi = 20u32.to_be_bytes();
        assert_eq!(collect(Bound::Included(&lo), Bound::Excluded(&hi)), (10..20).collect::<Vec<_>>());
        assert_eq!(collect(Bound::Excluded(&lo), Bound::Included(&hi)), (11..=20).collect::<Vec<_>>());
        assert_eq!(collect(Bound::Unbounded, Bound::Excluded(&lo)), (0..10).collect::<Vec<_>>());
        assert_eq!(collect(Bound::Included(&hi), Bound::Unbounded), (20..100).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_scan() {
        let t = tree();
        t.insert(b"emp:1:salary", b"a").unwrap();
        t.insert(b"emp:1:title", b"b").unwrap();
        t.insert(b"emp:2:salary", b"c").unwrap();
        t.insert(b"dept:1", b"d").unwrap();
        let hits: Vec<_> = t.scan_prefix(b"emp:1:").unwrap().map(|(k, _)| k).collect();
        assert_eq!(hits, vec![b"emp:1:salary".to_vec(), b"emp:1:title".to_vec()]);
        assert_eq!(t.scan_prefix(b"zzz").unwrap().count(), 0);
    }

    #[test]
    fn prefix_upper_bound_handles_ff() {
        assert_eq!(prefix_upper(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_upper(&[0x61, 0xFF]), Some(vec![0x62]));
        assert_eq!(prefix_upper(&[0xFF, 0xFF]), None);
    }

    #[test]
    fn delete_removes_one_instance() {
        let t = tree();
        t.insert(b"k", b"v").unwrap();
        t.insert(b"k", b"v").unwrap();
        assert!(t.delete(b"k", b"v").unwrap());
        assert_eq!(t.get(b"k").unwrap().len(), 1);
        assert!(t.delete(b"k", b"v").unwrap());
        assert!(!t.delete(b"k", b"v").unwrap());
        assert!(t.is_empty().unwrap());
    }

    #[test]
    fn delete_across_split_leaves() {
        let t = tree();
        for i in 0u32..2000 {
            t.insert(&i.to_be_bytes(), &[0u8; 16]).unwrap();
        }
        for i in (0u32..2000).step_by(3) {
            assert!(t.delete(&i.to_be_bytes(), &[0u8; 16]).unwrap(), "delete {i}");
        }
        assert_eq!(t.len().unwrap(), 2000 - 2000usize.div_ceil(3));
    }

    #[test]
    fn large_values_split_correctly() {
        let t = tree();
        for i in 0u32..16 {
            t.insert(&i.to_be_bytes(), &vec![i as u8; 800]).unwrap();
        }
        let all: Vec<_> = t.range(Bound::Unbounded, Bound::Unbounded).unwrap().collect();
        assert_eq!(all.len(), 16);
        for (i, (_, v)) in all.iter().enumerate() {
            assert_eq!(v.len(), 800);
            assert_eq!(v[0], i as u8);
        }
    }

    #[test]
    fn oversized_entry_rejected() {
        let t = tree();
        assert!(matches!(
            t.insert(b"k", &vec![0u8; PAGE_SIZE]),
            Err(StoreError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn reopen_by_root_page() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 256));
        let t = BTree::create(pool.clone()).unwrap();
        for i in 0u32..1000 {
            t.insert(&i.to_be_bytes(), b"v").unwrap();
        }
        let root = t.root_page();
        drop(t);
        let t2 = BTree::open(pool, root);
        assert_eq!(t2.len().unwrap(), 1000);
    }
}
