//! Page files: the persistence layer under the buffer pool.
//!
//! The file-backed pager writes a versioned format (see
//! [`PAGE_FORMAT_VERSION`]): a small header identifies the file, and every
//! page slot carries a trailing CRC-32 over `page_id ++ payload`. The
//! checksum is stamped on every write and verified on every read miss, so
//! at-rest bit rot — in a heap page, a B+tree node, the catalog, or a
//! compressed block — surfaces as a structured
//! [`StoreError::Corrupt`](crate::StoreError::Corrupt) instead of a
//! garbage decode or, worse, a silently wrong answer. Including the page
//! id in the checksummed bytes also catches misdirected reads/writes (a
//! valid page returned for the wrong id). Unversioned legacy files are
//! still readable, without verification.

use crate::page::{PageId, PAGE_SIZE};
use crate::wal::{crc32, crc32_oct};
use crate::{CorruptObject, Result, StoreError};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Something that can read, write and allocate fixed-size pages.
///
/// Implementations must be internally synchronized; the buffer pool calls
/// them from behind its own lock but unit tests may not.
pub trait Pager: Send + Sync {
    /// Read page `id` into `buf` (exactly [`PAGE_SIZE`] bytes).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;
    /// Write `buf` to page `id`.
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;
    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&self) -> Result<PageId>;
    /// Number of allocated pages (also the next id to be allocated).
    fn num_pages(&self) -> u64;

    /// Force all durable state to stable storage.
    ///
    /// Non-durable pagers (e.g. [`MemPager`]) treat this as a no-op.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Mark a transaction boundary.
    ///
    /// Transactional pagers ([`crate::wal::WalPager`]) append a commit
    /// record and schedule an fsync under the group-commit policy; plain
    /// pagers, which write pages in place, treat every write as already
    /// "committed" and do nothing.
    fn commit(&self) -> Result<()> {
        Ok(())
    }

    /// Fold logged state into the base page file and reclaim the log.
    ///
    /// For plain pagers this degenerates to [`Pager::sync`].
    fn checkpoint(&self) -> Result<()> {
        self.sync()
    }

    /// Whether [`Pager::commit`] is meaningful (i.e. writes are staged in a
    /// log and crash recovery rolls the store back to the last commit).
    fn is_transactional(&self) -> bool {
        false
    }

    /// Page-checksum `(verifications, failures)` counters since open or
    /// the last [`Pager::reset_checksum_stats`]. Pagers without durable
    /// checksums ([`MemPager`]) report zeros; wrappers delegate to the
    /// durable base so the buffer pool's [`crate::IoStats`] always reflect
    /// the real verification work.
    fn checksum_stats(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Reset the page-checksum counters (see [`Pager::checksum_stats`]).
    fn reset_checksum_stats(&self) {}

    /// Commit sequence number of the most recently sealed transaction.
    ///
    /// Monotonic within a process for transactional pagers; plain pagers
    /// (which have no commit notion) report 0.
    fn commit_lsn(&self) -> u64 {
        0
    }

    /// Pin a read-only snapshot of the durable committed state.
    ///
    /// Transactional pagers return `Some((commit_lsn, num_pages))`: the
    /// sequence number of the last committed transaction — forced durable
    /// first, so the snapshot survives any crash — and the page count as
    /// of that commit. Until [`Pager::unpin_snapshot`] releases the pin,
    /// [`Pager::read_page_at`] with that LSN must keep returning the exact
    /// committed page images, no matter what the writer commits, flushes
    /// or checkpoints in the meantime. Non-transactional pagers return
    /// `Ok(None)` (they overwrite pages in place; there is no committed
    /// state to freeze).
    fn pin_snapshot(&self) -> Result<Option<(u64, u64)>> {
        Ok(None)
    }

    /// Release a pin taken by [`Pager::pin_snapshot`]. Must be called with
    /// the same LSN; pins are refcounted per LSN.
    fn unpin_snapshot(&self, _commit_lsn: u64) {}

    /// Read page `id` as of pinned commit `commit_lsn`.
    ///
    /// Only meaningful between [`Pager::pin_snapshot`] and
    /// [`Pager::unpin_snapshot`] for that LSN. The default falls back to
    /// the current image (correct for pagers whose pages never change
    /// after a pin — i.e. none; transactional pagers override this).
    fn read_page_at(&self, id: PageId, _commit_lsn: u64, buf: &mut [u8]) -> Result<()> {
        self.read_page(id, buf)
    }
}

/// An in-memory pager: pages live in a `Vec`. The default for tests and
/// benchmarks (the paper's I/O effects are captured by the buffer pool's
/// logical-read counters rather than by actual disk latency).
#[derive(Default)]
pub struct MemPager {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
}

impl MemPager {
    /// An empty in-memory page file.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pager for MemPager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or_else(|| crate::StoreError::NotFound(format!("page {id}")))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.lock();
        let page = pages
            .get_mut(id as usize)
            .ok_or_else(|| crate::StoreError::NotFound(format!("page {id}")))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(pages.len() as u64 - 1)
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }
}

/// Current on-disk page-file format version. Version 2 added the file
/// header and the per-page trailing CRC-32; version 3 widens the checksum
/// combine from four to eight interleaved CRC lanes (different stamp bytes
/// for the same page, hence the bump — `open` hard-errors on a mismatch
/// rather than silently flagging every page corrupt). "Version 1" is the
/// headerless legacy layout (`page i` at byte `i * PAGE_SIZE`, no
/// checksums).
pub const PAGE_FORMAT_VERSION: u32 = 3;

/// Magic bytes opening a versioned page file.
const V2_MAGIC: [u8; 8] = *b"ARCHISPG";

/// v2 header: magic (8) + format version (u32 LE) + reserved (u32).
const V2_HEADER_LEN: u64 = 16;

/// v2 on-disk slot: the page payload plus its trailing CRC-32.
const V2_SLOT_LEN: u64 = PAGE_SIZE as u64 + 4;

/// Byte layout of a page file, decoded from its header. Gives fsck's
/// scrub and the fault-injection bit-rot tooling the location of every
/// page's on-disk bytes without opening a pager (and without racing one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFileLayout {
    /// Format version (see [`PAGE_FORMAT_VERSION`]; 1 = legacy headerless).
    pub version: u32,
    /// Bytes of file header before the first page slot.
    pub header_len: u64,
    /// Bytes per on-disk page slot (payload + checksum in v2).
    pub slot_len: u64,
    /// Complete page slots present in the file.
    pub pages: u64,
}

impl PageFileLayout {
    /// Byte offset of page `id`'s slot.
    pub fn slot_offset(&self, id: PageId) -> u64 {
        self.header_len + id * self.slot_len
    }

    /// Decode the layout of the page file at `path`.
    pub fn of_file(path: impl AsRef<Path>) -> Result<PageFileLayout> {
        let mut f = File::open(path)?;
        let len = f.metadata()?.len();
        let mut head = [0u8; V2_HEADER_LEN as usize];
        let is_v2 = len >= V2_HEADER_LEN && {
            f.read_exact(&mut head)?;
            head[..8] == V2_MAGIC
        };
        if is_v2 {
            let version = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
            Ok(PageFileLayout {
                version,
                header_len: V2_HEADER_LEN,
                slot_len: V2_SLOT_LEN,
                pages: (len - V2_HEADER_LEN) / V2_SLOT_LEN,
            })
        } else {
            Ok(PageFileLayout {
                version: 1,
                header_len: 0,
                slot_len: PAGE_SIZE as u64,
                pages: len / PAGE_SIZE as u64,
            })
        }
    }
}

/// Fold window of the page checksum, in bytes. Wide enough that the XOR
/// pass auto-vectorizes and any error burst shorter than the window maps
/// injectively into the fold; small enough that the CRC over the fold is
/// a rounding error per physical read.
const CRC_FOLD_BYTES: usize = 512;

/// The v2 page-slot checksum: what [`FilePager`] stamps on write and
/// recomputes on every read (public so the scrub benchmark can measure
/// exactly the verify compute).
///
/// A table-driven CRC is one table load per byte — on a 2-load/cycle
/// core that caps out near 3 GB/s no matter how many interleaved lanes
/// run, which is real overhead on every physical read. So, like
/// Postgres's page checksum, the hot pass is a *parallel fold*: the page
/// is XOR-folded column-wise into a [`CRC_FOLD_BYTES`]-byte window (a
/// linear, auto-vectorizable sweep), and only the fold goes through
/// CRC-32 — eight interleaved lanes over its eighths (eight independent
/// dependency chains keep the table loads pipelined where four left the
/// load ports half idle), combined with per-lane rotations, plus the page
/// id folded in so a valid page served from the wrong slot (misdirected
/// I/O) still fails verification.
///
/// Detection guarantees survive the fold because XOR is linear: a single
/// flipped bit in the page flips exactly that bit of one fold column,
/// which lands in exactly one CRC lane — CRC-32's single-bit guarantee
/// then makes the stamp change. Likewise any error burst shorter than
/// the fold window hits each column at most once, so it cannot cancel
/// itself. Only error patterns that XOR to zero across columns exactly
/// [`CRC_FOLD_BYTES`] apart escape (probability ~2⁻³² territory for
/// random multi-bit damage), the same trade Postgres's folded FNV makes.
pub fn page_crc(id: PageId, payload: &[u8]) -> u32 {
    const FOLD_WORDS: usize = CRC_FOLD_BYTES / 8;
    let mut fold = [0u64; FOLD_WORDS];
    let mut blocks = payload.chunks_exact(CRC_FOLD_BYTES);
    for block in &mut blocks {
        for (slot, w) in fold.iter_mut().zip(block.chunks_exact(8)) {
            *slot ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk")); // lint:allow(unreachable: chunks_exact guarantees the length)
        }
    }
    // A trailing partial block (pages are normally a multiple of the
    // window) folds byte-wise so every payload bit is still covered.
    for (i, &b) in blocks.remainder().iter().enumerate() {
        fold[i / 8] ^= (b as u64) << (8 * (i % 8));
    }
    let mut buf = [0u8; CRC_FOLD_BYTES];
    for (chunk, w) in buf.chunks_exact_mut(8).zip(&fold) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    let e = CRC_FOLD_BYTES / 8;
    let lanes: [&[u8]; 8] = std::array::from_fn(|k| &buf[k * e..(k + 1) * e]);
    let crcs = crc32_oct(lanes);
    let mut stamp = crc32(&id.to_le_bytes());
    for (k, c) in crcs.iter().enumerate() {
        // Distinct rotations (0,4,…,28) keep the eight lanes from
        // cancelling each other under symmetric damage.
        stamp ^= c.rotate_left(4 * k as u32);
    }
    stamp
}

/// A file-backed pager.
///
/// New files are created in the v2 format: a 16-byte header, then one
/// `PAGE_SIZE + 4`-byte slot per page whose trailing CRC-32 stamp (a
/// vectorizable XOR-fold of the page, CRC'd with the page id folded in,
/// see [`page_crc`]) is written by every [`Pager::write_page`] /
/// [`Pager::allocate`] and verified by every [`Pager::read_page`].
/// Headerless legacy files keep working read/write without checksums.
pub struct FilePager {
    file: Mutex<File>,
    len_pages: Mutex<u64>,
    layout: PageFileLayout,
    crc_verified: AtomicU64,
    crc_failed: AtomicU64,
}

impl FilePager {
    /// Open (or create) a page file at `path`.
    ///
    /// Existing contents are deliberately kept (`truncate(false)`): a page
    /// file is the durable store, and reopening it after a restart *is*
    /// the recovery path — `num_pages` is derived from the surviving file
    /// length.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let layout = if len == 0 {
            // Fresh file: stamp the v2 header.
            let mut head = [0u8; V2_HEADER_LEN as usize];
            head[..8].copy_from_slice(&V2_MAGIC);
            head[8..12].copy_from_slice(&PAGE_FORMAT_VERSION.to_le_bytes());
            // lint:allow(the file was just created empty and is not yet shared;
            // the header must exist before any page I/O)
            file.write_all(&head)?;
            PageFileLayout {
                version: PAGE_FORMAT_VERSION,
                header_len: V2_HEADER_LEN,
                slot_len: V2_SLOT_LEN,
                pages: 0,
            }
        } else {
            let mut head = [0u8; V2_HEADER_LEN as usize];
            let is_v2 = len >= V2_HEADER_LEN && {
                file.seek(SeekFrom::Start(0))?;
                // lint:allow(header probe on open, before the pager is shared)
                file.read_exact(&mut head)?;
                head[..8] == V2_MAGIC
            };
            if is_v2 {
                let version = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
                if version != PAGE_FORMAT_VERSION {
                    return Err(StoreError::corrupt(
                        CorruptObject::Page,
                        format!(
                            "page file format version {version} (this build reads {PAGE_FORMAT_VERSION})"
                        ),
                    ));
                }
                PageFileLayout {
                    version,
                    header_len: V2_HEADER_LEN,
                    slot_len: V2_SLOT_LEN,
                    pages: (len - V2_HEADER_LEN) / V2_SLOT_LEN,
                }
            } else {
                // Legacy headerless layout: readable, but unverified.
                PageFileLayout {
                    version: 1,
                    header_len: 0,
                    slot_len: PAGE_SIZE as u64,
                    pages: len / PAGE_SIZE as u64,
                }
            }
        };
        Ok(FilePager {
            file: Mutex::new(file),
            len_pages: Mutex::new(layout.pages),
            layout,
            crc_verified: AtomicU64::new(0),
            crc_failed: AtomicU64::new(0),
        })
    }

    /// The on-disk format version this file uses.
    pub fn format_version(&self) -> u32 {
        self.layout.version
    }

    /// Whether reads of this file are checksum-verified (v2 files only).
    pub fn verifies_checksums(&self) -> bool {
        self.layout.version >= 2
    }

    fn offset(&self, id: PageId) -> u64 {
        self.layout.header_len + id * self.layout.slot_len
    }

    /// Write payload + stamped CRC as one slot-sized write; the caller
    /// already holds the file lock and passes the guarded `File` in.
    fn write_slot(&self, f: &mut File, id: PageId, buf: &[u8]) -> Result<()> {
        f.seek(SeekFrom::Start(self.offset(id)))?;
        if self.layout.version >= 2 {
            let mut slot = [0u8; V2_SLOT_LEN as usize];
            slot[..PAGE_SIZE].copy_from_slice(buf);
            slot[PAGE_SIZE..].copy_from_slice(&page_crc(id, buf).to_le_bytes());
            // lint:allow(the file mutex exists precisely to make seek+write
            // atomic on the single shared descriptor)
            f.write_all(&slot)?;
        } else {
            // lint:allow(the file mutex exists precisely to make seek+write
            // atomic on the single shared descriptor)
            f.write_all(buf)?;
        }
        Ok(())
    }
}

impl Pager for FilePager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(self.offset(id)))?;
        // lint:allow(the file mutex exists precisely to make seek+read atomic
        // on the single shared descriptor)
        f.read_exact(buf)?;
        if self.layout.version >= 2 {
            let mut stored = [0u8; 4];
            // lint:allow(trailing-checksum read continues the same locked read)
            f.read_exact(&mut stored)?;
            drop(f);
            let stored = u32::from_le_bytes(stored);
            let computed = page_crc(id, buf);
            if stored != computed {
                self.crc_failed.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::corrupt_at(
                    id,
                    CorruptObject::Page,
                    format!("checksum mismatch (stored {stored:08x}, computed {computed:08x})"),
                ));
            }
            self.crc_verified.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut f = self.file.lock();
        self.write_slot(&mut f, id, buf)
    }

    fn allocate(&self) -> Result<PageId> {
        let mut len = self.len_pages.lock();
        let id = *len;
        let mut f = self.file.lock();
        // lint:allow(allocation must extend the file and bump len_pages as one
        // step; both locks guard exactly this pairing)
        self.write_slot(&mut f, id, &[0u8; PAGE_SIZE])?;
        *len += 1;
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        *self.len_pages.lock()
    }

    fn sync(&self) -> Result<()> {
        // lint:allow(sync_data under the file lock orders the fsync after every
        // buffered write that raced it)
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn checksum_stats(&self) -> (u64, u64) {
        (
            self.crc_verified.load(Ordering::Relaxed),
            self.crc_failed.load(Ordering::Relaxed),
        )
    }

    fn reset_checksum_stats(&self) {
        self.crc_verified.store(0, Ordering::Relaxed);
        self.crc_failed.store(0, Ordering::Relaxed);
    }
}

/// A read-only view of another pager frozen at a pinned commit.
///
/// Built by `Database::begin_snapshot`: holds the pin taken via
/// [`Pager::pin_snapshot`] and routes every read through
/// [`Pager::read_page_at`] at the pinned LSN, so a buffer pool layered on
/// top serves a consistent committed page image of the whole store — the
/// catalog, every table root and every data page as of one commit — while
/// the writer keeps mutating the underlying pager. The pin is released
/// when the last clone of this pager drops.
///
/// Writes and allocations fail with [`StoreError::Io`]: a snapshot is a
/// reader's world. `num_pages` is frozen at the pin-time committed page
/// count, so pages allocated after the pin are unreachable by
/// construction.
pub struct SnapshotPager {
    inner: Arc<dyn Pager>,
    commit_lsn: u64,
    num_pages: u64,
}

impl SnapshotPager {
    /// Wrap `inner` at pinned commit `commit_lsn` with `num_pages` pages.
    /// The caller must already hold the pin (via [`Pager::pin_snapshot`]);
    /// this wrapper takes ownership of releasing it on drop.
    pub fn new(inner: Arc<dyn Pager>, commit_lsn: u64, num_pages: u64) -> Self {
        SnapshotPager {
            inner,
            commit_lsn,
            num_pages,
        }
    }

    /// The commit this snapshot is frozen at.
    pub fn commit_lsn(&self) -> u64 {
        self.commit_lsn
    }
}

impl Pager for SnapshotPager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if id >= self.num_pages {
            return Err(StoreError::NotFound(format!(
                "page {id} (allocated after snapshot commit {})",
                self.commit_lsn
            )));
        }
        self.inner.read_page_at(id, self.commit_lsn, buf)
    }

    fn write_page(&self, id: PageId, _buf: &[u8]) -> Result<()> {
        Err(StoreError::Io(format!(
            "write to page {id} on a read-only snapshot (commit {})",
            self.commit_lsn
        )))
    }

    fn allocate(&self) -> Result<PageId> {
        Err(StoreError::Io(format!(
            "allocation on a read-only snapshot (commit {})",
            self.commit_lsn
        )))
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn commit_lsn(&self) -> u64 {
        self.commit_lsn
    }

    fn checksum_stats(&self) -> (u64, u64) {
        self.inner.checksum_stats()
    }

    fn reset_checksum_stats(&self) {
        self.inner.reset_checksum_stats();
    }
}

impl Drop for SnapshotPager {
    fn drop(&mut self) {
        self.inner.unpin_snapshot(self.commit_lsn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(pager: &dyn Pager) {
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(pager.num_pages(), 2);
        let mut w = [0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        pager.write_page(b, &w).unwrap();
        let mut r = [0u8; PAGE_SIZE];
        pager.read_page(b, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        assert_eq!(r[PAGE_SIZE - 1], 0xCD);
        pager.read_page(a, &mut r).unwrap();
        assert_eq!(r[0], 0, "fresh pages are zeroed");
    }

    #[test]
    fn mem_pager_roundtrip() {
        exercise(&MemPager::new());
        assert!(MemPager::new().read_page(7, &mut [0u8; PAGE_SIZE]).is_err());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("relstore-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_pager_roundtrip_and_reopen() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("pages.db");
        {
            let p = FilePager::open(&path).unwrap();
            assert_eq!(p.format_version(), PAGE_FORMAT_VERSION);
            assert!(p.verifies_checksums());
            exercise(&p);
            let (verified, failed) = p.checksum_stats();
            assert!(verified >= 2, "reads were checksum-verified");
            assert_eq!(failed, 0);
        }
        {
            let p = FilePager::open(&path).unwrap();
            assert_eq!(p.num_pages(), 2, "page count recovered from file length");
            let mut r = [0u8; PAGE_SIZE];
            p.read_page(1, &mut r).unwrap();
            assert_eq!(r[0], 0xAB, "data persisted");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_pager_detects_bit_flip() {
        use std::io::{Seek, SeekFrom, Write};
        let dir = temp_dir("bitflip");
        let path = dir.join("pages.db");
        {
            let p = FilePager::open(&path).unwrap();
            let id = p.allocate().unwrap();
            let mut w = [7u8; PAGE_SIZE];
            w[100] = 42;
            p.write_page(id, &w).unwrap();
        }
        let layout = PageFileLayout::of_file(&path).unwrap();
        assert_eq!(layout.version, PAGE_FORMAT_VERSION);
        assert_eq!(layout.pages, 1);
        // Flip one bit in the middle of page 0's payload, at rest.
        {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let off = layout.slot_offset(0) + 2000;
            f.seek(SeekFrom::Start(off)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            b[0] ^= 0x10;
            f.seek(SeekFrom::Start(off)).unwrap();
            f.write_all(&b).unwrap();
        }
        let p = FilePager::open(&path).unwrap();
        let mut r = [0u8; PAGE_SIZE];
        let err = p.read_page(0, &mut r).unwrap_err();
        assert!(err.is_corrupt(), "bit flip surfaces as Corrupt: {err}");
        assert_eq!(p.checksum_stats().1, 1, "failure counted");
        // Rewriting the page restamps the checksum and heals the slot.
        p.write_page(0, &[9u8; PAGE_SIZE]).unwrap();
        p.read_page(0, &mut r).unwrap();
        assert_eq!(r[0], 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_pager_reads_legacy_v1_files() {
        use std::io::Write;
        let dir = temp_dir("legacy");
        let path = dir.join("pages.db");
        // Hand-craft a headerless v1 file: two raw pages, no checksums.
        {
            let mut f = File::create(&path).unwrap();
            let mut page = [0u8; PAGE_SIZE];
            page[0] = 0x11;
            f.write_all(&page).unwrap();
            page[0] = 0x22;
            f.write_all(&page).unwrap();
        }
        let p = FilePager::open(&path).unwrap();
        assert_eq!(p.format_version(), 1);
        assert!(!p.verifies_checksums());
        assert_eq!(p.num_pages(), 2);
        let mut r = [0u8; PAGE_SIZE];
        p.read_page(1, &mut r).unwrap();
        assert_eq!(r[0], 0x22);
        assert_eq!(p.checksum_stats(), (0, 0), "v1 reads are unverified");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_crc_binds_page_id() {
        let payload = [5u8; PAGE_SIZE];
        assert_ne!(
            page_crc(1, &payload),
            page_crc(2, &payload),
            "same payload under a different id must not verify"
        );
    }
}
