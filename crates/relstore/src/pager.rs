//! Page files: the persistence layer under the buffer pool.

use crate::page::{PageId, PAGE_SIZE};
use crate::Result;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Something that can read, write and allocate fixed-size pages.
///
/// Implementations must be internally synchronized; the buffer pool calls
/// them from behind its own lock but unit tests may not.
pub trait Pager: Send + Sync {
    /// Read page `id` into `buf` (exactly [`PAGE_SIZE`] bytes).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()>;
    /// Write `buf` to page `id`.
    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()>;
    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&self) -> Result<PageId>;
    /// Number of allocated pages (also the next id to be allocated).
    fn num_pages(&self) -> u64;

    /// Force all durable state to stable storage.
    ///
    /// Non-durable pagers (e.g. [`MemPager`]) treat this as a no-op.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Mark a transaction boundary.
    ///
    /// Transactional pagers ([`crate::wal::WalPager`]) append a commit
    /// record and schedule an fsync under the group-commit policy; plain
    /// pagers, which write pages in place, treat every write as already
    /// "committed" and do nothing.
    fn commit(&self) -> Result<()> {
        Ok(())
    }

    /// Fold logged state into the base page file and reclaim the log.
    ///
    /// For plain pagers this degenerates to [`Pager::sync`].
    fn checkpoint(&self) -> Result<()> {
        self.sync()
    }

    /// Whether [`Pager::commit`] is meaningful (i.e. writes are staged in a
    /// log and crash recovery rolls the store back to the last commit).
    fn is_transactional(&self) -> bool {
        false
    }
}

/// An in-memory pager: pages live in a `Vec`. The default for tests and
/// benchmarks (the paper's I/O effects are captured by the buffer pool's
/// logical-read counters rather than by actual disk latency).
#[derive(Default)]
pub struct MemPager {
    pages: Mutex<Vec<Box<[u8; PAGE_SIZE]>>>,
}

impl MemPager {
    /// An empty in-memory page file.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Pager for MemPager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.lock();
        let page = pages
            .get(id as usize)
            .ok_or_else(|| crate::StoreError::NotFound(format!("page {id}")))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.lock();
        let page = pages
            .get_mut(id as usize)
            .ok_or_else(|| crate::StoreError::NotFound(format!("page {id}")))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut pages = self.pages.lock();
        pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(pages.len() as u64 - 1)
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }
}

/// A file-backed pager: page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FilePager {
    file: Mutex<File>,
    len_pages: Mutex<u64>,
}

impl FilePager {
    /// Open (or create) a page file at `path`.
    ///
    /// Existing contents are deliberately kept (`truncate(false)`): a page
    /// file is the durable store, and reopening it after a restart *is*
    /// the recovery path — `num_pages` is derived from the surviving file
    /// length.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FilePager {
            file: Mutex::new(file),
            len_pages: Mutex::new(len / PAGE_SIZE as u64),
        })
    }
}

impl Pager for FilePager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        // lint:allow(the file mutex exists precisely to make seek+read atomic
        // on the single shared descriptor)
        f.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        // lint:allow(the file mutex exists precisely to make seek+write atomic
        // on the single shared descriptor)
        f.write_all(buf)?;
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        let mut len = self.len_pages.lock();
        let id = *len;
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id * PAGE_SIZE as u64))?;
        // lint:allow(allocation must extend the file and bump len_pages as one
        // step; both locks guard exactly this pairing)
        f.write_all(&[0u8; PAGE_SIZE])?;
        *len += 1;
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        *self.len_pages.lock()
    }

    fn sync(&self) -> Result<()> {
        // lint:allow(sync_data under the file lock orders the fsync after every
        // buffered write that raced it)
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(pager: &dyn Pager) {
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(pager.num_pages(), 2);
        let mut w = [0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        pager.write_page(b, &w).unwrap();
        let mut r = [0u8; PAGE_SIZE];
        pager.read_page(b, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        assert_eq!(r[PAGE_SIZE - 1], 0xCD);
        pager.read_page(a, &mut r).unwrap();
        assert_eq!(r[0], 0, "fresh pages are zeroed");
    }

    #[test]
    fn mem_pager_roundtrip() {
        exercise(&MemPager::new());
        assert!(MemPager::new().read_page(7, &mut [0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn file_pager_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("relstore-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let p = FilePager::open(&path).unwrap();
            exercise(&p);
        }
        {
            let p = FilePager::open(&path).unwrap();
            assert_eq!(p.num_pages(), 2, "page count recovered from file length");
            let mut r = [0u8; PAGE_SIZE];
            p.read_page(1, &mut r).unwrap();
            assert_eq!(r[0], 0xAB, "data persisted");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
