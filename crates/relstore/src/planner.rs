//! Cost-based access-path selection.
//!
//! Until now the SQL/XML engine chose scans by a fixed rule (any indexable
//! bound beats a sequential scan; equality beats range). That rule is
//! selectivity-blind: it happily probes a secondary index for a bound that
//! matches the whole table, and it cannot tell a narrow time slice from a
//! full-history sweep. This module replaces the rule with a small
//! cost model in the classic System-R shape:
//!
//! * **Statistics** — per-segment rows, live/dead split, `tstart`/`tend`
//!   min-max, an equi-depth `tstart` histogram, distinct-key and
//!   compressed-block counts, persisted in the ordinary table
//!   [`STATS_TABLE`] (the `sqlite_stat1` trick: stats ride the same
//!   catalog, WAL and MVCC snapshots as the data they describe, so a
//!   pinned snapshot plans against the stats frozen at pin time).
//! * **Cost formulas** — sequential pages are cheap (and cheaper still
//!   with the PR 6 prefetcher overlapping the run), random page fetches
//!   through a secondary index cost [`RANDOM_PAGE_COST`]× more, clustered
//!   ranges read only the covered fraction of the primary tree.
//! * **Selectivity** — segment bounds resolve against the per-segment row
//!   counts; temporal bounds interpolate the histogram; equality on a key
//!   column uses distinct counts; everything else falls back to textbook
//!   constants.
//!
//! The chooser is deliberately advisory: callers re-apply every predicate
//! as a filter, so a wrong estimate can only cost time, never correctness.
//! `ARCHIS_FORCE_PATH` (`seq` | `index` | `cluster` | `rule`) pins the
//! decision for A/B debugging; `rule` reproduces the old fixed rule
//! exactly, which is what the `plan` benchmark measures against.

use crate::catalog::Database;
use crate::table::Table;
use crate::value::{DataType, Field, Schema, Value};
use crate::{Result, StorageKind};
use std::cell::RefCell;
use std::fmt;
use std::ops::Bound;
use std::sync::atomic::{AtomicU8, Ordering};
use temporal::Date;

/// Name of the durable per-segment statistics table (created on demand by
/// the archiver through [`ensure_stats_table`]). Layout:
/// `(tbl, segno, nrows, nlive, tsmin, tsmax, temin, temax, dkeys, blocks, hist)`.
pub const STATS_TABLE: &str = "archis_segstats";

/// Secondary index on the stats table (`tbl` prefix lookups).
pub const STATS_INDEX: &str = "archis_segstats_by_tbl";

/// Number of equi-depth histogram buckets kept per segment.
pub const HIST_BUCKETS: usize = 8;

// --- cost constants -------------------------------------------------------
//
// Calibrated against the bench crate's cold-device model (25 µs per
// physical page): what matters is the *ratio* between sequential and
// random page costs, not the absolute scale.

/// Cost of one sequentially-read base page.
pub const SEQ_PAGE_COST: f64 = 1.0;

/// Cost of one randomly-fetched page (secondary-index row fetch).
pub const RANDOM_PAGE_COST: f64 = 4.0;

/// Multiplier applied to sequential runs when the buffer pool's
/// prefetcher is on: PR 6 measured cold dense scans roughly overlapping
/// 40 % of page latency with readahead.
pub const PREFETCH_RUN_DISCOUNT: f64 = 0.6;

/// Per-row CPU cost (decode + predicate check) in page-cost units.
pub const CPU_ROW_COST: f64 = 0.01;

/// Fixed cost of a B+tree root-to-leaf descent.
pub const BTREE_DESCENT_COST: f64 = 3.0;

/// Index entries per leaf page (both index layouts pack hundreds of
/// small keys per 4 KiB page; 128 is deliberately conservative).
pub const INDEX_ENTRIES_PER_LEAF: f64 = 128.0;

/// Fallback rows-per-page estimate when a table's page count is unknown.
pub const ROWS_PER_PAGE_FALLBACK: f64 = 64.0;

// Fallback selectivities when no statistics apply (textbook constants).
const EQ_SEL_FALLBACK: f64 = 0.005;
const RANGE_SEL_FALLBACK: f64 = 0.25;
const OPEN_RANGE_SEL_FALLBACK: f64 = 0.4;

/// The live segment's well-known number (mirrors `archis::LIVE_SEGNO`;
/// duplicated here because the stats layer sits below the core crate).
pub const LIVE_SEGNO: i64 = 1_000_000;

// ---------------------------------------------------------------------------
// Per-segment statistics
// ---------------------------------------------------------------------------

/// Statistics for one archived segment of one H-table (or, with
/// `segno == LIVE_SEGNO`, for the live segment).
#[derive(Debug, Clone, PartialEq)]
pub struct SegStat {
    /// H-table the segment belongs to.
    pub tbl: String,
    /// Segment number (archived segments count from 1).
    pub segno: i64,
    /// Total rows stored in the segment.
    pub rows: i64,
    /// Rows still open (`tend` = forever).
    pub live: i64,
    /// Minimum `tstart` over the segment's rows.
    pub tsmin: Date,
    /// Maximum `tstart` over the segment's rows.
    pub tsmax: Date,
    /// Minimum `tend` over the segment's rows.
    pub temin: Date,
    /// Maximum `tend` over the segment's rows.
    pub temax: Date,
    /// Estimated distinct key values in the segment.
    pub distinct_keys: i64,
    /// Compressed BlockZIP blocks holding the segment (0 = uncompressed).
    pub blocks: i64,
    /// Equi-depth histogram over `tstart`: ascending bucket upper bounds,
    /// each bucket holding ≈ `rows / len` rows. Empty when `rows == 0`.
    pub hist: Vec<Date>,
}

impl SegStat {
    /// Compute statistics from H-table segment rows shaped
    /// `(key, tstart, tend)` — callers project those three columns out of
    /// whatever row layout they hold. Rows need not be sorted.
    pub fn compute(tbl: &str, segno: i64, rows: &[(i64, Date, Date)]) -> SegStat {
        let n = rows.len() as i64;
        if rows.is_empty() {
            return SegStat {
                tbl: tbl.to_string(),
                segno,
                rows: 0,
                live: 0,
                tsmin: temporal::END_OF_TIME,
                tsmax: temporal::DAWN_OF_TIME,
                temin: temporal::END_OF_TIME,
                temax: temporal::DAWN_OF_TIME,
                distinct_keys: 0,
                blocks: 0,
                hist: Vec::new(),
            };
        }
        let mut tsmin = rows[0].1;
        let mut tsmax = rows[0].1;
        let mut temin = rows[0].2;
        let mut temax = rows[0].2;
        let mut live = 0i64;
        let mut keys: Vec<i64> = Vec::with_capacity(rows.len());
        let mut starts: Vec<Date> = Vec::with_capacity(rows.len());
        for &(k, ts, te) in rows {
            tsmin = tsmin.min(ts);
            tsmax = tsmax.max(ts);
            temin = temin.min(te);
            temax = temax.max(te);
            if te.is_forever() {
                live += 1;
            }
            keys.push(k);
            starts.push(ts);
        }
        keys.sort_unstable();
        keys.dedup();
        starts.sort_unstable();
        let buckets = HIST_BUCKETS.min(starts.len());
        let mut hist = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            // Upper bound of bucket b: the (b/buckets) quantile.
            let idx = (b * starts.len()) / buckets;
            hist.push(starts[idx.saturating_sub(1).min(starts.len() - 1)]);
        }
        SegStat {
            tbl: tbl.to_string(),
            segno,
            rows: n,
            live,
            tsmin,
            tsmax,
            temin,
            temax,
            distinct_keys: keys.len() as i64,
            blocks: 0,
            hist,
        }
    }

    /// Fold one more row into the statistics (used by the incremental
    /// maintenance paths that move single rows between segments). The
    /// histogram is left untouched — it stays an estimate until the next
    /// recompute — but the exact fields (`rows`, `live`, min/max bounds)
    /// are kept exact, which is what `archis-fsck` audits.
    pub fn absorb(&mut self, _key: i64, tstart: Date, tend: Date) {
        self.rows += 1;
        if tend.is_forever() {
            self.live += 1;
        }
        self.tsmin = self.tsmin.min(tstart);
        self.tsmax = self.tsmax.max(tstart);
        self.temin = self.temin.min(tend);
        self.temax = self.temax.max(tend);
    }

    /// Serialize to the [`STATS_TABLE`] row layout.
    pub fn to_row(&self) -> Vec<Value> {
        let hist = self
            .hist
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("|");
        vec![
            Value::Str(self.tbl.clone()),
            Value::Int(self.segno),
            Value::Int(self.rows),
            Value::Int(self.live),
            Value::Date(self.tsmin),
            Value::Date(self.tsmax),
            Value::Date(self.temin),
            Value::Date(self.temax),
            Value::Int(self.distinct_keys),
            Value::Int(self.blocks),
            Value::Str(hist),
        ]
    }

    /// Decode a [`STATS_TABLE`] row; `None` if the row is malformed.
    pub fn from_row(row: &[Value]) -> Option<SegStat> {
        if row.len() != 11 {
            return None;
        }
        let date = |v: &Value| -> Option<Date> {
            match v {
                Value::Date(d) => Some(*d),
                _ => None,
            }
        };
        let int = |v: &Value| v.as_int();
        let hist_str = match &row[10] {
            Value::Str(s) => s.clone(),
            _ => return None,
        };
        let mut hist = Vec::new();
        if !hist_str.is_empty() {
            for part in hist_str.split('|') {
                hist.push(Date::parse(part).ok()?);
            }
        }
        Some(SegStat {
            tbl: match &row[0] {
                Value::Str(s) => s.clone(),
                _ => return None,
            },
            segno: int(&row[1])?,
            rows: int(&row[2])?,
            live: int(&row[3])?,
            tsmin: date(&row[4])?,
            tsmax: date(&row[5])?,
            temin: date(&row[6])?,
            temax: date(&row[7])?,
            distinct_keys: int(&row[8])?,
            blocks: int(&row[9])?,
            hist,
        })
    }

    /// Estimated fraction of this segment's rows with
    /// `tstart <= hi && tend >= lo` (overlap with `[lo, hi]`). Exact
    /// min/max bounds short-circuit to 0 when no overlap is possible.
    pub fn overlap_fraction(&self, lo: Date, hi: Date) -> f64 {
        if self.rows == 0 || self.tsmin > hi || self.temax < lo {
            return 0.0;
        }
        // Fraction with tstart <= hi, from the histogram when present.
        let start_frac = self.tstart_le_fraction(hi);
        // Fraction with tend >= lo by linear interpolation on [temin, temax].
        let end_frac = if lo <= self.temin {
            1.0
        } else if lo > self.temax {
            0.0
        } else {
            let span = (self.temax.day_number() - self.temin.day_number()).max(1) as f64;
            let above = (self.temax.day_number() - lo.day_number()).max(0) as f64;
            (above / span).clamp(0.0, 1.0)
        };
        (start_frac * end_frac).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows with `tstart <= d` (equi-depth
    /// histogram walk; falls back to min/max interpolation).
    pub fn tstart_le_fraction(&self, d: Date) -> f64 {
        if d < self.tsmin {
            return 0.0;
        }
        if d >= self.tsmax {
            return 1.0;
        }
        if !self.hist.is_empty() {
            let below = self.hist.iter().filter(|&&b| b <= d).count();
            return (below as f64 / self.hist.len() as f64).clamp(0.0, 1.0);
        }
        let span = (self.tsmax.day_number() - self.tsmin.day_number()).max(1) as f64;
        let below = (d.day_number() - self.tsmin.day_number()).max(0) as f64;
        (below / span).clamp(0.0, 1.0)
    }
}

/// Schema of the stats table.
pub fn stats_schema() -> Schema {
    Schema::new(vec![
        Field::new("tbl", DataType::Str),
        Field::new("segno", DataType::Int),
        Field::new("nrows", DataType::Int),
        Field::new("nlive", DataType::Int),
        Field::new("tsmin", DataType::Date),
        Field::new("tsmax", DataType::Date),
        Field::new("temin", DataType::Date),
        Field::new("temax", DataType::Date),
        Field::new("dkeys", DataType::Int),
        Field::new("blocks", DataType::Int),
        Field::new("hist", DataType::Str),
    ])
}

/// Create the stats table (heap, indexed by `tbl`) if it does not exist.
pub fn ensure_stats_table(db: &Database) -> Result<()> {
    if db.has_table(STATS_TABLE) {
        return Ok(());
    }
    let t = db.create_table(STATS_TABLE, stats_schema(), StorageKind::Heap, &[])?;
    t.create_index(STATS_INDEX, &["tbl"])?;
    Ok(())
}

/// All persisted segment stats for one H-table, ascending by segment.
/// Returns an empty vector when the stats table (or the entry) is absent
/// or unreadable — statistics are advisory and must never fail a query.
pub fn load_stats(db: &Database, tbl: &str) -> Vec<SegStat> {
    let Ok(t) = db.table(STATS_TABLE) else {
        return Vec::new();
    };
    let key = [Value::Str(tbl.to_string())];
    let Ok(rows) = t.index_lookup(STATS_INDEX, &key) else {
        return Vec::new();
    };
    let mut out: Vec<SegStat> = rows.iter().filter_map(|r| SegStat::from_row(r)).collect();
    out.sort_by_key(|s| s.segno);
    out
}

/// Replace the persisted stats row(s) for `(tbl, segno)` with `stat`.
pub fn store_stat(db: &Database, stat: &SegStat) -> Result<()> {
    ensure_stats_table(db)?;
    let t = db.table(STATS_TABLE)?;
    let pred_tbl = Value::Str(stat.tbl.clone());
    let pred_seg = Value::Int(stat.segno);
    t.delete_where(|row| row.first() == Some(&pred_tbl) && row.get(1) == Some(&pred_seg))?;
    t.insert(stat.to_row())?;
    Ok(())
}

/// Drop all persisted stats rows for one H-table.
pub fn clear_stats(db: &Database, tbl: &str) -> Result<()> {
    if !db.has_table(STATS_TABLE) {
        return Ok(());
    }
    let t = db.table(STATS_TABLE)?;
    let pred = Value::Str(tbl.to_string());
    t.delete_where(|row| row.first() == Some(&pred))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Forced access paths (`ARCHIS_FORCE_PATH`)
// ---------------------------------------------------------------------------

/// An access-path override for A/B debugging and benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcedPath {
    /// Always scan the base storage sequentially.
    Seq,
    /// Always take a secondary-index range when one is available.
    Index,
    /// Always take the clustered-primary range when one is available.
    Cluster,
    /// Reproduce the pre-planner fixed rule (first indexable bound wins,
    /// equality beats range, clustered leading column beats the index).
    Rule,
}

impl ForcedPath {
    fn from_code(code: u8) -> Option<ForcedPath> {
        match code {
            2 => Some(ForcedPath::Seq),
            3 => Some(ForcedPath::Index),
            4 => Some(ForcedPath::Cluster),
            5 => Some(ForcedPath::Rule),
            _ => None,
        }
    }

    fn code(path: Option<ForcedPath>) -> u8 {
        match path {
            None => 1,
            Some(ForcedPath::Seq) => 2,
            Some(ForcedPath::Index) => 3,
            Some(ForcedPath::Cluster) => 4,
            Some(ForcedPath::Rule) => 5,
        }
    }

    /// Parse the `ARCHIS_FORCE_PATH` value.
    pub fn parse(s: &str) -> Option<ForcedPath> {
        match s.trim().to_ascii_lowercase().as_str() {
            "seq" | "seqscan" => Some(ForcedPath::Seq),
            "index" => Some(ForcedPath::Index),
            "cluster" | "clustered" => Some(ForcedPath::Cluster),
            "rule" => Some(ForcedPath::Rule),
            _ => None,
        }
    }
}

impl fmt::Display for ForcedPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ForcedPath::Seq => "seq",
            ForcedPath::Index => "index",
            ForcedPath::Cluster => "cluster",
            ForcedPath::Rule => "rule",
        })
    }
}

// 0 = uninitialized (read the environment once), then ForcedPath::code.
static FORCE_PATH: AtomicU8 = AtomicU8::new(0);

/// The active access-path override, if any. First call reads
/// `ARCHIS_FORCE_PATH`; later calls (and [`set_forced_path`]) are
/// process-wide and race-free, which matters for multi-threaded tests.
pub fn forced_path() -> Option<ForcedPath> {
    let code = FORCE_PATH.load(Ordering::Relaxed);
    if code != 0 {
        return ForcedPath::from_code(code);
    }
    let from_env = std::env::var("ARCHIS_FORCE_PATH")
        .ok()
        .and_then(|v| ForcedPath::parse(&v));
    // Another thread may race the first read; both write the same value.
    FORCE_PATH.store(ForcedPath::code(from_env), Ordering::Relaxed);
    from_env
}

/// Override (or with `None`, restore cost-based planning over) the
/// access-path decision for the whole process.
pub fn set_forced_path(path: Option<ForcedPath>) {
    FORCE_PATH.store(ForcedPath::code(path), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Plan log (EXPLAIN)
// ---------------------------------------------------------------------------

/// One access-path decision, recorded per scanned table.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEntry {
    /// Table scanned.
    pub table: String,
    /// Chosen path, e.g. `seq`, `index(employee_salary_by_seg)`,
    /// `cluster(segno)`.
    pub path: String,
    /// Estimated rows produced by the access path (before residual
    /// filters).
    pub est_rows: f64,
    /// Estimated physical pages touched.
    pub est_pages: f64,
    /// Total estimated cost in page-cost units.
    pub cost: f64,
    /// What made the decision: `cost`, `rule`, or `forced:<path>`.
    pub chosen_by: String,
}

impl fmt::Display for PlanEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scan {}: path={} est_rows={:.0} est_pages={:.1} cost={:.1} [{}]",
            self.table, self.path, self.est_rows, self.est_pages, self.cost, self.chosen_by
        )
    }
}

thread_local! {
    static PLAN_LOG: RefCell<Vec<PlanEntry>> = const { RefCell::new(Vec::new()) };
}

/// Record a plan decision for the current thread's EXPLAIN log.
pub fn record_plan(entry: PlanEntry) {
    PLAN_LOG.with(|l| l.borrow_mut().push(entry));
}

/// Drain this thread's plan log (decisions since the last drain).
pub fn take_plan_log() -> Vec<PlanEntry> {
    PLAN_LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// Format a drained plan log as an EXPLAIN-style dump, one scan per line.
pub fn explain(entries: &[PlanEntry]) -> String {
    entries
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------------------
// Table profiles and candidates
// ---------------------------------------------------------------------------

/// What the cost model knows about one table.
#[derive(Debug, Clone)]
pub struct TableProfile {
    /// Table name.
    pub name: String,
    /// Live row count (from the table's cached counter).
    pub rows: f64,
    /// Base-storage pages (heap chain or clustered-tree pages, indexes
    /// excluded — a sequential scan never touches them).
    pub base_pages: f64,
    /// Whether the buffer pool's prefetcher overlaps sequential runs.
    pub prefetch: bool,
    /// Per-segment statistics, empty for non-H-tables (or before the
    /// first archive populated them).
    pub segs: Vec<SegStat>,
}

impl TableProfile {
    /// Profile `table`, loading persisted segment stats from `db`.
    pub fn of(db: &Database, table: &Table) -> TableProfile {
        let rows = table.row_count() as f64;
        let base_pages = table
            .base_page_count()
            .map(|p| p as f64)
            .unwrap_or_else(|_| (rows / ROWS_PER_PAGE_FALLBACK).ceil().max(1.0));
        let segs = if table.name() == STATS_TABLE {
            Vec::new()
        } else {
            load_stats(db, table.name())
        };
        TableProfile {
            name: table.name().to_string(),
            rows,
            base_pages: base_pages.max(1.0),
            prefetch: table.prefetch_enabled(),
            segs,
        }
    }

    /// Profile without statistics (tests, stats-free tables).
    pub fn bare(name: &str, rows: u64, base_pages: u64, prefetch: bool) -> TableProfile {
        TableProfile {
            name: name.to_string(),
            rows: rows as f64,
            base_pages: (base_pages as f64).max(1.0),
            prefetch,
            segs: Vec::new(),
        }
    }

    fn seq_discount(&self) -> f64 {
        if self.prefetch {
            PREFETCH_RUN_DISCOUNT
        } else {
            1.0
        }
    }
}

/// How a candidate reaches rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Sequential scan of base storage.
    Seq,
    /// Secondary B+tree range, fetching rows one at a time.
    Index,
    /// Range over the clustered primary B+tree.
    Cluster,
}

/// One bounded column the engine found in the pushed-down predicates.
#[derive(Debug, Clone)]
pub struct ScanCandidate {
    /// `Index` or `Cluster` (a `Seq` candidate is always implicit).
    pub kind: PathKind,
    /// Secondary-index name for `Index` candidates.
    pub index: Option<String>,
    /// The bounded column.
    pub column: String,
    /// Whether an equality bound participates.
    pub eq: bool,
    /// Leading-column bounds.
    pub lo: Bound<Value>,
    /// Leading-column upper bound.
    pub hi: Bound<Value>,
}

/// The chooser's verdict.
#[derive(Debug, Clone)]
pub struct Choice {
    /// Selected path kind.
    pub kind: PathKind,
    /// Index of the winning candidate in the input slice (`None` = seq).
    pub candidate: Option<usize>,
    /// EXPLAIN record for this decision (also pushed to the plan log by
    /// [`choose_path`]).
    pub entry: PlanEntry,
}

/// Estimated fraction of rows matching `[lo, hi]` on `column`.
pub fn selectivity(
    profile: &TableProfile,
    column: &str,
    eq: bool,
    lo: &Bound<Value>,
    hi: &Bound<Value>,
) -> f64 {
    let rows = profile.rows.max(1.0);
    if !profile.segs.is_empty() {
        match column {
            "segno" => {
                let mut matched = 0.0;
                let mut counted = 0.0;
                for s in &profile.segs {
                    counted += s.rows as f64;
                    if int_in_bounds(s.segno, lo, hi) {
                        matched += s.rows as f64;
                    }
                }
                // Rows not covered by any stats entry (for H-tables, the
                // live segment) count as matched only if LIVE_SEGNO is in
                // bounds.
                let residual = (rows - counted).max(0.0);
                let has_live_stat = profile.segs.iter().any(|s| s.segno == LIVE_SEGNO);
                if !has_live_stat && int_in_bounds(LIVE_SEGNO, lo, hi) {
                    matched += residual;
                }
                return (matched / rows).clamp(0.0, 1.0);
            }
            "tstart" => {
                if let (Some(dlo), Some(dhi)) = (date_bound(lo), date_bound(hi)) {
                    let mut matched = 0.0;
                    for s in &profile.segs {
                        let le_hi = dhi.map_or(1.0, |d| s.tstart_le_fraction(d));
                        let lt_lo = dlo.map_or(0.0, |d| s.tstart_le_fraction(d.pred()));
                        matched += (le_hi - lt_lo).max(0.0) * s.rows as f64;
                    }
                    return (matched / rows).clamp(0.0, 1.0);
                }
            }
            "tend" => {
                if let (Some(dlo), Some(dhi)) = (date_bound(lo), date_bound(hi)) {
                    let mut matched = 0.0;
                    for s in &profile.segs {
                        // Linear interpolation on [temin, temax].
                        let span = (s.temax.day_number() - s.temin.day_number()).max(1) as f64;
                        let ge_lo = match dlo {
                            None => 1.0,
                            Some(d) if d <= s.temin => 1.0,
                            Some(d) if d > s.temax => 0.0,
                            Some(d) => (s.temax.day_number() - d.day_number()).max(0) as f64 / span,
                        };
                        let gt_hi = match dhi {
                            None => 0.0,
                            Some(d) if d >= s.temax => 0.0,
                            Some(d) if d < s.temin => 1.0,
                            Some(d) => (s.temax.day_number() - d.day_number()).max(0) as f64 / span,
                        };
                        matched += (ge_lo - gt_hi).max(0.0) * s.rows as f64;
                    }
                    return (matched / rows).clamp(0.0, 1.0);
                }
            }
            _ => {
                if eq {
                    // Equality on a key-ish column: distinct estimate. Keys
                    // recur across segments (live rows are carried
                    // forward), so the table-wide distinct count is close
                    // to the largest per-segment count, not the sum.
                    let distinct = profile
                        .segs
                        .iter()
                        .map(|s| s.distinct_keys)
                        .max()
                        .unwrap_or(0)
                        .max(1) as f64;
                    return (1.0 / distinct).clamp(1.0 / rows, 1.0);
                }
            }
        }
    }
    // Stats-free fallbacks.
    if eq {
        EQ_SEL_FALLBACK.max(1.0 / rows)
    } else {
        match (lo, hi) {
            (Bound::Unbounded, Bound::Unbounded) => 1.0,
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => OPEN_RANGE_SEL_FALLBACK,
            _ => RANGE_SEL_FALLBACK,
        }
    }
}

fn int_in_bounds(v: i64, lo: &Bound<Value>, hi: &Bound<Value>) -> bool {
    let lo_ok = match lo {
        Bound::Unbounded => true,
        Bound::Included(Value::Int(l)) => v >= *l,
        Bound::Excluded(Value::Int(l)) => v > *l,
        _ => true,
    };
    let hi_ok = match hi {
        Bound::Unbounded => true,
        Bound::Included(Value::Int(h)) => v <= *h,
        Bound::Excluded(Value::Int(h)) => v < *h,
        _ => true,
    };
    lo_ok && hi_ok
}

/// Extract a date from a bound; `Ok(None)` for unbounded, `None` (outer)
/// when the bound is not a date at all.
#[allow(clippy::option_option)]
fn date_bound(b: &Bound<Value>) -> Option<Option<Date>> {
    match b {
        Bound::Unbounded => Some(None),
        Bound::Included(Value::Date(d)) => Some(Some(*d)),
        Bound::Excluded(Value::Date(d)) => Some(Some(*d)),
        _ => None,
    }
}

/// Cost of a sequential scan.
pub fn seq_cost(profile: &TableProfile) -> f64 {
    profile.base_pages * SEQ_PAGE_COST * profile.seq_discount() + profile.rows * CPU_ROW_COST
}

/// Cost of one candidate path given its selectivity.
fn candidate_cost(profile: &TableProfile, cand: &ScanCandidate, sel: f64) -> (f64, f64, f64) {
    let est_rows = sel * profile.rows;
    match cand.kind {
        PathKind::Seq => {
            let pages = profile.base_pages * profile.seq_discount();
            (seq_cost(profile), profile.rows, pages)
        }
        PathKind::Cluster => {
            let pages = (sel * profile.base_pages).ceil() * profile.seq_discount();
            let cost = BTREE_DESCENT_COST + pages * SEQ_PAGE_COST + est_rows * CPU_ROW_COST;
            (cost, est_rows, pages + BTREE_DESCENT_COST)
        }
        PathKind::Index => {
            let leaf_pages = (est_rows / INDEX_ENTRIES_PER_LEAF).ceil();
            // Archived segments are written contiguously at archival time
            // (the paper's §6 segment clustering), so a `segno` range that
            // stays below the live segment walks sequential runs the
            // prefetcher can overlap — price it like a clustered range.
            // The live segment is mutation churn and gets no such break.
            let archived_run = cand.column == "segno"
                && !profile.segs.is_empty()
                && !int_in_bounds(LIVE_SEGNO, &cand.lo, &cand.hi);
            if archived_run {
                let pages = (sel * profile.base_pages).ceil() * profile.seq_discount();
                let cost = BTREE_DESCENT_COST
                    + (leaf_pages + pages) * SEQ_PAGE_COST
                    + est_rows * CPU_ROW_COST;
                return (cost, est_rows, BTREE_DESCENT_COST + leaf_pages + pages);
            }
            // Row fetches are random single-page reads, but can never
            // exceed re-reading the whole base twice over (eviction bound).
            let fetch_pages = est_rows.min(2.0 * profile.base_pages);
            let cost = BTREE_DESCENT_COST
                + leaf_pages * SEQ_PAGE_COST
                + fetch_pages * RANDOM_PAGE_COST
                + est_rows * CPU_ROW_COST;
            (
                cost,
                est_rows,
                BTREE_DESCENT_COST + leaf_pages + fetch_pages,
            )
        }
    }
}

fn path_label(cand: Option<&ScanCandidate>) -> String {
    match cand {
        None => "seq".to_string(),
        Some(c) => match c.kind {
            PathKind::Seq => "seq".to_string(),
            PathKind::Cluster => format!("cluster({})", c.column),
            PathKind::Index => format!(
                "index({})",
                c.index.clone().unwrap_or_else(|| c.column.clone())
            ),
        },
    }
}

/// Pick an access path for one table scan.
///
/// `candidates` must list at most one entry per bounded column, in the
/// order the bounds appear in the predicate list (the old rule's
/// tie-break). A sequential scan is always considered implicitly. The
/// decision (including any `ARCHIS_FORCE_PATH` override) is appended to
/// the thread's plan log.
pub fn choose_path(profile: &TableProfile, candidates: &[ScanCandidate]) -> Choice {
    let forced = forced_path();
    let (winner, chosen_by): (Option<usize>, String) = match forced {
        Some(ForcedPath::Seq) => (None, "forced:seq".to_string()),
        Some(ForcedPath::Index) => {
            let idx = pick_cheapest(profile, candidates, Some(PathKind::Index));
            (idx, "forced:index".to_string())
        }
        Some(ForcedPath::Cluster) => {
            let idx = pick_cheapest(profile, candidates, Some(PathKind::Cluster));
            (idx, "forced:cluster".to_string())
        }
        Some(ForcedPath::Rule) => (rule_choice(candidates), "rule".to_string()),
        None => (pick_cheapest(profile, candidates, None), "cost".to_string()),
    };
    let cand = winner.map(|i| &candidates[i]);
    let sel = cand.map_or(1.0, |c| selectivity(profile, &c.column, c.eq, &c.lo, &c.hi));
    let (cost, est_rows, est_pages) = match cand {
        None => {
            let pages = profile.base_pages * profile.seq_discount();
            (seq_cost(profile), profile.rows, pages)
        }
        Some(c) => candidate_cost(profile, c, sel),
    };
    let entry = PlanEntry {
        table: profile.name.clone(),
        path: path_label(cand),
        est_rows,
        est_pages,
        cost,
        chosen_by,
    };
    record_plan(entry.clone());
    Choice {
        kind: cand.map_or(PathKind::Seq, |c| c.kind),
        candidate: winner,
        entry,
    }
}

/// Cheapest candidate by the cost model; `None` when the sequential scan
/// wins (or, with `only` set, when no candidate of that kind exists).
fn pick_cheapest(
    profile: &TableProfile,
    candidates: &[ScanCandidate],
    only: Option<PathKind>,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.iter().enumerate() {
        if let Some(k) = only {
            if c.kind != k {
                continue;
            }
        }
        let sel = selectivity(profile, &c.column, c.eq, &c.lo, &c.hi);
        let (cost, _, _) = candidate_cost(profile, c, sel);
        if best.is_none_or(|(_, b)| cost < b) {
            best = Some((i, cost));
        }
    }
    match only {
        // Forced kinds take the best candidate of that kind, whatever the
        // cost (that is the point of forcing).
        Some(_) => best.map(|(i, _)| i),
        None => {
            let seq = seq_cost(profile);
            best.and_then(|(i, c)| if c < seq { Some(i) } else { None })
        }
    }
}

/// The pre-planner fixed rule: first bounded column wins; a later
/// equality-bounded column replaces a range-bounded choice.
fn rule_choice(candidates: &[ScanCandidate]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, c) in candidates.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(b) if !candidates[b].eq && c.eq => best = Some(i),
            _ => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    // Tests that read or write the process-wide forced path serialize on
    // this lock so the parallel test runner cannot interleave them.
    static FORCE_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    fn reset_force() {
        set_forced_path(None);
    }

    #[test]
    fn segstat_roundtrip_and_compute() {
        let rows: Vec<(i64, Date, Date)> = (0..100)
            .map(|i| {
                (
                    i % 10,
                    Date::from_day_number(d("1990-01-01").day_number() + (i as i32) * 30),
                    if i % 4 == 0 {
                        temporal::END_OF_TIME
                    } else {
                        d("1999-06-30")
                    },
                )
            })
            .collect();
        let s = SegStat::compute("emp_salary", 3, &rows);
        assert_eq!(s.rows, 100);
        assert_eq!(s.live, 25);
        assert_eq!(s.distinct_keys, 10);
        assert_eq!(s.tsmin, d("1990-01-01"));
        assert_eq!(s.hist.len(), HIST_BUCKETS);
        let back = SegStat::from_row(&s.to_row()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn stats_persist_through_database() {
        let db = Database::in_memory();
        let s = SegStat::compute("t_a", 1, &[(1, d("1990-01-01"), d("1991-01-01"))]);
        store_stat(&db, &s).unwrap();
        let loaded = load_stats(&db, "t_a");
        assert_eq!(loaded, vec![s.clone()]);
        // Overwrite, not duplicate.
        let mut s2 = s.clone();
        s2.rows = 7;
        store_stat(&db, &s2).unwrap();
        assert_eq!(load_stats(&db, "t_a"), vec![s2]);
        clear_stats(&db, "t_a").unwrap();
        assert!(load_stats(&db, "t_a").is_empty());
    }

    #[test]
    fn cost_model_prefers_seq_for_unselective_index() {
        let _g = FORCE_LOCK.lock();
        reset_force();
        let profile = TableProfile::bare("t", 100_000, 1_600, false);
        let cand = ScanCandidate {
            kind: PathKind::Index,
            index: Some("by_id".into()),
            column: "id".into(),
            eq: false,
            lo: Bound::Included(Value::Int(0)),
            hi: Bound::Unbounded,
        };
        let choice = take_choice(&profile, &[cand]);
        assert_eq!(choice.kind, PathKind::Seq, "sel≈0.4 range must not probe");
    }

    #[test]
    fn cost_model_prefers_index_for_narrow_eq() {
        let _g = FORCE_LOCK.lock();
        reset_force();
        let profile = TableProfile::bare("t", 100_000, 1_600, false);
        let cand = ScanCandidate {
            kind: PathKind::Index,
            index: Some("by_id".into()),
            column: "id".into(),
            eq: true,
            lo: Bound::Included(Value::Int(42)),
            hi: Bound::Included(Value::Int(42)),
        };
        let choice = take_choice(&profile, &[cand]);
        assert_eq!(choice.kind, PathKind::Index);
    }

    #[test]
    fn segment_stats_drive_segno_selectivity() {
        // selectivity() never consults the force flag: no lock needed.
        let mut segs = Vec::new();
        for sn in 1..=10 {
            let rows: Vec<(i64, Date, Date)> = (0..1000)
                .map(|i| (i, d("1990-01-01"), d("1995-01-01")))
                .collect();
            let mut s = SegStat::compute("t", sn, &rows);
            s.rows = 1000;
            segs.push(s);
        }
        let profile = TableProfile {
            name: "t".into(),
            rows: 10_000.0,
            base_pages: 200.0,
            prefetch: false,
            segs,
        };
        // One segment out of ten.
        let sel = selectivity(
            &profile,
            "segno",
            true,
            &Bound::Included(Value::Int(3)),
            &Bound::Included(Value::Int(3)),
        );
        assert!((sel - 0.1).abs() < 1e-9, "sel {sel}");
        // All segments.
        let sel_all = selectivity(
            &profile,
            "segno",
            false,
            &Bound::Included(Value::Int(1)),
            &Bound::Unbounded,
        );
        assert!((sel_all - 1.0).abs() < 1e-9, "sel {sel_all}");
    }

    #[test]
    fn forced_paths_override_cost() {
        let _g = FORCE_LOCK.lock();
        let profile = TableProfile::bare("t", 100_000, 1_600, false);
        let cand = ScanCandidate {
            kind: PathKind::Index,
            index: Some("by_id".into()),
            column: "id".into(),
            eq: false,
            lo: Bound::Included(Value::Int(0)),
            hi: Bound::Unbounded,
        };
        set_forced_path(Some(ForcedPath::Index));
        let c = take_choice(&profile, std::slice::from_ref(&cand));
        assert_eq!(c.kind, PathKind::Index);
        set_forced_path(Some(ForcedPath::Seq));
        let c = take_choice(&profile, std::slice::from_ref(&cand));
        assert_eq!(c.kind, PathKind::Seq);
        set_forced_path(Some(ForcedPath::Rule));
        let c = take_choice(&profile, std::slice::from_ref(&cand));
        assert_eq!(c.kind, PathKind::Index, "old rule takes any bound");
        reset_force();
    }

    #[test]
    fn rule_prefers_equality_in_pred_order() {
        let range = ScanCandidate {
            kind: PathKind::Index,
            index: Some("a".into()),
            column: "x".into(),
            eq: false,
            lo: Bound::Included(Value::Int(0)),
            hi: Bound::Unbounded,
        };
        let eq = ScanCandidate {
            kind: PathKind::Index,
            index: Some("b".into()),
            column: "y".into(),
            eq: true,
            lo: Bound::Included(Value::Int(1)),
            hi: Bound::Included(Value::Int(1)),
        };
        assert_eq!(rule_choice(&[range.clone(), eq.clone()]), Some(1));
        assert_eq!(rule_choice(&[eq.clone(), range.clone()]), Some(0));
        assert_eq!(rule_choice(&[range.clone(), range]), Some(0));
    }

    #[test]
    fn overlap_fraction_prunes_disjoint_windows() {
        let rows: Vec<(i64, Date, Date)> = (0..100)
            .map(|i| {
                (
                    i,
                    Date::from_day_number(d("1995-01-01").day_number() + i as i32),
                    Date::from_day_number(d("1996-01-01").day_number() + i as i32),
                )
            })
            .collect();
        let s = SegStat::compute("t", 1, &rows);
        // Window entirely before the first tstart: prunable.
        assert_eq!(s.overlap_fraction(d("1990-01-01"), d("1994-12-31")), 0.0);
        // Window after every tend: prunable.
        assert_eq!(s.overlap_fraction(d("1997-01-01"), d("1999-01-01")), 0.0);
        // Window covering everything: full.
        assert!(s.overlap_fraction(d("1990-01-01"), d("1999-01-01")) > 0.99);
    }

    #[test]
    fn explain_formats_plan_entries() {
        let _g = FORCE_LOCK.lock();
        take_plan_log();
        reset_force();
        let profile = TableProfile::bare("emp", 1000, 16, false);
        let _ = choose_path(&profile, &[]);
        let log = take_plan_log();
        assert_eq!(log.len(), 1);
        let text = explain(&log);
        assert!(text.contains("scan emp: path=seq"), "{text}");
        assert!(
            text.contains("[cost]") || text.contains("[forced"),
            "{text}"
        );
    }

    /// choose_path, but with the plan-log side effect drained so tests
    /// stay independent.
    fn take_choice(profile: &TableProfile, cands: &[ScanCandidate]) -> Choice {
        let c = choose_path(profile, cands);
        take_plan_log();
        c
    }
}
