//! Physical page-level write-ahead logging.
//!
//! The paper's H-tables are transaction-time history: once a tuple version
//! is archived it must survive anything short of media loss. The seed
//! engine wrote dirty pages in place, so a crash mid-archival could corrupt
//! both the live tables and the history itself. This module adds the
//! standard fix: full page images go to an append-only, CRC-framed log
//! first; the base page file is only rewritten at checkpoints; recovery
//! replays the committed tail of the log.
//!
//! Log record framing (all integers little-endian):
//!
//! ```text
//! [kind: u8][page_id: u64][len: u32][crc32: u32][payload: len bytes]
//! ```
//!
//! * `kind` is [`WAL_REC_PAGE`] (payload = full page image) or
//!   [`WAL_REC_COMMIT`] (payload empty; `page_id` reuses its slot to carry
//!   the allocated page count at commit time).
//! * `crc32` is the IEEE CRC-32 of `kind ++ page_id ++ len ++ payload`, so
//!   a torn header is rejected just like a torn payload.
//!
//! Because records carry *full* page images, replay is idempotent and
//! needs no undo pass: recovery scans forward, buffering page images, and
//! only publishes them when it sees the transaction's commit record. The
//! scan stops at the first truncated or CRC-invalid record — everything
//! after a torn write is garbage by definition.
//!
//! Group commit: [`WalPager::commit`] seals the transaction's page images
//! into the current batch but only writes-and-fsyncs the log once every
//! [`WalConfig::group_commit`] commits (or on an explicit [`Pager::sync`] /
//! checkpoint / drop). Deferring the appends lets the batch *dedupe* page
//! images — hot pages (the catalog, a heap tail) that every transaction in
//! the batch rewrites are logged once per batch, not once per commit — so
//! larger batches amortize both the fsync and the log volume. The cost is
//! a bounded durability window: a crash mid-batch rolls back to the
//! previous batch boundary, which is itself a commit boundary — the same
//! trade DB2 exposes as `MINCOMMIT`.
//!
//! Snapshot isolation (MVCC): every commit seal bumps a monotonic
//! `commit_lsn`, and [`Pager::pin_snapshot`] freezes the store at the
//! current (forced-durable) commit. While any pin is live the pager
//! retains superseded *committed* page images in per-page version chains,
//! copy-on-write: the first uncommitted overwrite of a committed image
//! pushes the pre-image (tagged with its commit LSN) onto the page's
//! chain, and [`Pager::read_page_at`] serves the newest image at-or-below
//! the snapshot LSN — from the page table if its committed image is old
//! enough, else from the chain, else from the base file. Checkpoints
//! preserve pinned history by capturing the pre-fold base image (and the
//! folded image's LSN) into the chains before overwriting the base file.
//! Chains are pruned on unpin and discarded wholesale at commit seals
//! while no pin is live, so the writer pays one 4 KiB copy per
//! first-dirtied committed page per transaction and nothing else.

use crate::page::{PageId, PAGE_SIZE};
use crate::pager::Pager;
use crate::{Result, StoreError};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Record kind: a full page image staged for the in-flight transaction.
pub const WAL_REC_PAGE: u8 = 1;
/// Record kind: transaction commit (the `page_id` field carries the
/// allocated page count so recovery can restore `num_pages`).
pub const WAL_REC_COMMIT: u8 = 2;

/// Bytes of framing before the payload: kind (1) + page_id (8) + len (4) +
/// crc (4).
pub const WAL_HEADER_LEN: usize = 17;

/// Upper bound on a record payload; anything larger in the log is treated
/// as corruption (a page image is exactly [`PAGE_SIZE`] bytes).
const MAX_PAYLOAD: u32 = PAGE_SIZE as u32;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected). Slicing-by-16 tables, built once; no
// external crates. Also stamps/verifies page checksums in the base file
// (see `pager`), so the inner loop is on the physical-read hot path.
// ---------------------------------------------------------------------------

fn crc32_tables() -> &'static [[u32; 256]; 16] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 16]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0u32; 256]; 16];
        for (i, slot) in tables[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for t in 1..16 {
            for i in 0..256 {
                let prev = tables[t - 1][i];
                tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        tables
    })
}

/// Fold 16 input bytes into a running (reflected) CRC state: the state is
/// XORed into the first word, and each of the 16 bytes indexes the table
/// whose exponent matches its distance from the end of the block. Takes a
/// fixed-size array so the word loads compile without bounds checks.
#[inline(always)]
fn crc32_step16(t: &[[u32; 256]; 16], c: u32, w: &[u8; 16]) -> u32 {
    let w0 = c ^ u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
    let w1 = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
    let w2 = u32::from_le_bytes([w[8], w[9], w[10], w[11]]);
    let w3 = u32::from_le_bytes([w[12], w[13], w[14], w[15]]);
    t[15][(w0 & 0xFF) as usize]
        ^ t[14][((w0 >> 8) & 0xFF) as usize]
        ^ t[13][((w0 >> 16) & 0xFF) as usize]
        ^ t[12][(w0 >> 24) as usize]
        ^ t[11][(w1 & 0xFF) as usize]
        ^ t[10][((w1 >> 8) & 0xFF) as usize]
        ^ t[9][((w1 >> 16) & 0xFF) as usize]
        ^ t[8][(w1 >> 24) as usize]
        ^ t[7][(w2 & 0xFF) as usize]
        ^ t[6][((w2 >> 8) & 0xFF) as usize]
        ^ t[5][((w2 >> 16) & 0xFF) as usize]
        ^ t[4][(w2 >> 24) as usize]
        ^ t[3][(w3 & 0xFF) as usize]
        ^ t[2][((w3 >> 8) & 0xFF) as usize]
        ^ t[1][((w3 >> 16) & 0xFF) as usize]
        ^ t[0][(w3 >> 24) as usize]
}

/// View a `chunks_exact(16)` chunk as a fixed-size array (always succeeds
/// by construction; the fixed size lets [`crc32_step16`] skip bounds checks).
#[inline(always)]
fn as16(w: &[u8]) -> &[u8; 16] {
    w.try_into()
        .expect("chunks_exact(16) yields 16-byte chunks") // lint:allow(unreachable: chunks_exact guarantees the length)
}

/// IEEE CRC-32 of `data` (the checksum used to frame log records and to
/// stamp page slots in the base file). Slicing-by-16: sixteen bytes per
/// table-lookup round instead of one.
pub fn crc32(data: &[u8]) -> u32 {
    let t = crc32_tables();
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(16);
    for w in &mut chunks {
        c = crc32_step16(t, c, as16(w));
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Four independent IEEE CRC-32s computed in one interleaved pass.
///
/// A single CRC stream is a serial dependency chain (each 16-byte round
/// needs the previous round's state), which caps throughput well below
/// what the load units can sustain; four interleaved streams hide that
/// latency. The page checksum splits its fold window into quarters and
/// runs all four lanes at once (see `pager::page_crc`). Every result is
/// exactly `crc32` of its input.
pub fn crc32_quad(a: &[u8], b: &[u8], c: &[u8], d: &[u8]) -> (u32, u32, u32, u32) {
    let t = crc32_tables();
    let mut s = [0xFFFF_FFFFu32; 4];
    let mut ia = a.chunks_exact(16);
    let mut ib = b.chunks_exact(16);
    let mut ic = c.chunks_exact(16);
    let mut id = d.chunks_exact(16);
    loop {
        match (ia.next(), ib.next(), ic.next(), id.next()) {
            (Some(wa), Some(wb), Some(wc), Some(wd)) => {
                s[0] = crc32_step16(t, s[0], as16(wa));
                s[1] = crc32_step16(t, s[1], as16(wb));
                s[2] = crc32_step16(t, s[2], as16(wc));
                s[3] = crc32_step16(t, s[3], as16(wd));
            }
            // Unequal lengths: fold whatever this round still pulled, then
            // drain each lane on its own below.
            (oa, ob, oc, od) => {
                for (lane, w) in [oa, ob, oc, od].into_iter().enumerate() {
                    if let Some(w) = w {
                        s[lane] = crc32_step16(t, s[lane], as16(w));
                    }
                }
                break;
            }
        }
    }
    for (lane, it) in [&mut ia, &mut ib, &mut ic, &mut id].into_iter().enumerate() {
        for w in it.by_ref() {
            s[lane] = crc32_step16(t, s[lane], as16(w));
        }
        for &byte in it.remainder() {
            s[lane] = t[0][((s[lane] ^ byte as u32) & 0xFF) as usize] ^ (s[lane] >> 8);
        }
    }
    (
        s[0] ^ 0xFFFF_FFFF,
        s[1] ^ 0xFFFF_FFFF,
        s[2] ^ 0xFFFF_FFFF,
        s[3] ^ 0xFFFF_FFFF,
    )
}

/// Eight independent IEEE CRC-32s computed in one interleaved pass.
///
/// The four-lane variant ([`crc32_quad`]) hides most of the table-load
/// latency, but on cores with deeper load pipelines the serial chain per
/// lane is still the limiter; eight interleaved streams keep more loads
/// in flight per cycle. The page checksum splits its fold window into
/// eighths and runs all eight lanes at once (see `pager::page_crc`).
/// Every result is exactly [`crc32`] of its input.
pub fn crc32_oct(lanes: [&[u8]; 8]) -> [u32; 8] {
    let t = crc32_tables();
    let mut s = [0xFFFF_FFFFu32; 8];
    let mut iters: [std::slice::ChunksExact<'_, u8>; 8] = [
        lanes[0].chunks_exact(16),
        lanes[1].chunks_exact(16),
        lanes[2].chunks_exact(16),
        lanes[3].chunks_exact(16),
        lanes[4].chunks_exact(16),
        lanes[5].chunks_exact(16),
        lanes[6].chunks_exact(16),
        lanes[7].chunks_exact(16),
    ];
    // Joint rounds while every lane still has a full 16-byte chunk; the
    // fixed-count inner loop keeps all eight states live in registers.
    let rounds = lanes.iter().map(|l| l.len() / 16).min().unwrap_or(0);
    for _ in 0..rounds {
        for (state, it) in s.iter_mut().zip(iters.iter_mut()) {
            if let Some(w) = it.next() {
                *state = crc32_step16(t, *state, as16(w));
            }
        }
    }
    // Drain unequal tails lane by lane.
    for (lane, it) in iters.iter_mut().enumerate() {
        for w in it.by_ref() {
            s[lane] = crc32_step16(t, s[lane], as16(w));
        }
        for &byte in it.remainder() {
            s[lane] = t[0][((s[lane] ^ byte as u32) & 0xFF) as usize] ^ (s[lane] >> 8);
        }
    }
    for state in &mut s {
        *state ^= 0xFFFF_FFFF;
    }
    s
}

/// Little-endian `u64` at `pos`; the recovery scan bound-checks the header
/// before decoding, so the copy is always in range.
fn le_u64_at(b: &[u8], pos: usize) -> u64 {
    let mut w = [0u8; 8];
    w.copy_from_slice(&b[pos..pos + 8]);
    u64::from_le_bytes(w)
}

/// Little-endian `u32` at `pos` (see [`le_u64_at`]).
fn le_u32_at(b: &[u8], pos: usize) -> u32 {
    let mut w = [0u8; 4];
    w.copy_from_slice(&b[pos..pos + 4]);
    u32::from_le_bytes(w)
}

/// Encode one framed log record.
pub fn encode_record(kind: u8, page_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(WAL_HEADER_LEN + payload.len());
    rec.push(kind);
    rec.extend_from_slice(&page_id.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    // CRC covers kind ++ page_id ++ len ++ payload; splice it in after.
    let mut crc_input = Vec::with_capacity(13 + payload.len());
    crc_input.extend_from_slice(&rec[..13]);
    crc_input.extend_from_slice(payload);
    rec.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

/// One framing-valid record yielded by [`RecordScan`]: the caller
/// interprets `kind` (WAL replay knows pages and commits; the replication
/// shipping stream adds its own kinds on top of the same framing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannedRecord<'a> {
    /// Record kind byte (e.g. [`WAL_REC_PAGE`], [`WAL_REC_COMMIT`]).
    pub kind: u8,
    /// The record's `page_id` header field (commit records reuse it for
    /// the allocated page count; other framings may carry other scalars).
    pub page_id: u64,
    /// Record payload.
    pub payload: &'a [u8],
    /// Byte offset of the record's first framing byte.
    pub start: usize,
    /// Byte offset one past the record's last payload byte.
    pub end: usize,
}

/// Forward scanner over CRC-framed log records — the single replay entry
/// point shared by [`WalPager::open`] and the replication subsystem
/// (`crates/replica` replays shipped WAL streams through it).
///
/// Yields records while framing, CRC and kind all validate; afterwards
/// [`RecordScan::stop`] says why the scan ended and [`RecordScan::pos`]
/// where. Everything from `pos()` onward is, by the WAL's own definition,
/// garbage (torn tail) or corruption — callers decide whether that means
/// "stop replay here" (recovery) or "re-request from this position"
/// (replication).
pub struct RecordScan<'a> {
    bytes: &'a [u8],
    kinds: &'a [u8],
    pos: usize,
    stop: RecoveryStop,
    done: bool,
}

impl<'a> RecordScan<'a> {
    /// Scan `bytes`, accepting only records whose kind byte is in `kinds`
    /// (a CRC-valid record of any other kind stops the scan with
    /// [`RecoveryStop::BadKind`]).
    pub fn new(bytes: &'a [u8], kinds: &'a [u8]) -> RecordScan<'a> {
        RecordScan {
            bytes,
            kinds,
            pos: 0,
            stop: RecoveryStop::CleanEof,
            done: false,
        }
    }

    /// Byte offset of the first unconsumed byte (after exhaustion: where
    /// the scan stopped; everything before it was valid records).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Why the scan ended (meaningful once `next()` returned `None`).
    pub fn stop(&self) -> RecoveryStop {
        self.stop
    }
}

impl<'a> Iterator for RecordScan<'a> {
    type Item = ScannedRecord<'a>;

    fn next(&mut self) -> Option<ScannedRecord<'a>> {
        if self.done {
            return None;
        }
        let bytes = self.bytes;
        let pos = self.pos;
        if pos == bytes.len() {
            self.done = true;
            return None;
        }
        if bytes.len() - pos < WAL_HEADER_LEN {
            self.stop = RecoveryStop::TornRecord;
            self.done = true;
            return None;
        }
        let kind = bytes[pos];
        let page_id = le_u64_at(bytes, pos + 1);
        let len = le_u32_at(bytes, pos + 9);
        let crc = le_u32_at(bytes, pos + 13);
        if len > MAX_PAYLOAD {
            self.stop = RecoveryStop::BadChecksum;
            self.done = true;
            return None;
        }
        let end = pos + WAL_HEADER_LEN + len as usize;
        if end > bytes.len() {
            self.stop = RecoveryStop::TornRecord;
            self.done = true;
            return None;
        }
        let payload = &bytes[pos + WAL_HEADER_LEN..end];
        let mut crc_input = Vec::with_capacity(13 + payload.len());
        crc_input.extend_from_slice(&bytes[pos..pos + 13]);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            self.stop = RecoveryStop::BadChecksum;
            self.done = true;
            return None;
        }
        if !self.kinds.contains(&kind) {
            self.stop = RecoveryStop::BadKind;
            self.done = true;
            return None;
        }
        self.pos = end;
        Some(ScannedRecord {
            kind,
            page_id,
            payload,
            start: pos,
            end,
        })
    }
}

/// Why a recovery scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStop {
    /// Scanned the whole log; every byte was a valid record.
    CleanEof,
    /// The final record was cut short (torn write of the header or payload).
    TornRecord,
    /// A record's CRC did not match its contents (bit flip / garbage tail).
    BadChecksum,
    /// An unknown record kind — treated exactly like a bad checksum.
    BadKind,
}

/// Outcome of replaying the log tail on open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Total log bytes present at open.
    pub log_bytes: u64,
    /// Committed transactions replayed into the page table.
    pub commits_applied: u64,
    /// Page-image records belonging to those committed transactions.
    pub pages_applied: u64,
    /// Records discarded because no commit record followed them.
    pub records_discarded: u64,
    /// Bytes ignored at the tail (from the first bad record onward).
    pub bytes_discarded: u64,
    /// What terminated the scan.
    pub stop: RecoveryStop,
}

/// Running counters for the log writer (mirrors [`crate::IoStats`] for the
/// buffer pool; used by the commit microbench and the torture tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Page-image records appended.
    pub page_records: u64,
    /// Commit records appended.
    pub commits: u64,
    /// Physical fsyncs issued on the log device.
    pub syncs: u64,
    /// Checkpoints taken (log folded into the base file and truncated).
    pub checkpoints: u64,
}

// ---------------------------------------------------------------------------
// Log devices
// ---------------------------------------------------------------------------

/// An append-only byte log. `append` makes bytes *visible* (a subsequent
/// `read_all` sees them) but only `sync` makes them *durable*; the
/// fault-injection wrappers model exactly that distinction.
pub trait LogFile: Send + Sync {
    /// Append raw bytes to the log.
    fn append(&self, bytes: &[u8]) -> Result<()>;
    /// Force appended bytes to stable storage.
    fn sync(&self) -> Result<()>;
    /// Read the entire log contents.
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Discard the log contents.
    fn truncate(&self) -> Result<()>;
    /// Current log length in bytes.
    fn len(&self) -> Result<u64>;
    /// Whether the log is empty.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// In-memory log for tests. Exposes raw-byte accessors so corruption tests
/// can chop or flip committed bytes, plus a sync counter for group-commit
/// assertions.
#[derive(Default)]
pub struct MemLog {
    bytes: Mutex<Vec<u8>>,
    syncs: Mutex<u64>,
}

impl MemLog {
    /// An empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the raw log bytes.
    pub fn raw(&self) -> Vec<u8> {
        self.bytes.lock().clone()
    }

    /// Replace the raw log bytes (corruption injection for tests).
    pub fn set_raw(&self, bytes: Vec<u8>) {
        *self.bytes.lock() = bytes;
    }

    /// Number of `sync` calls observed.
    pub fn sync_count(&self) -> u64 {
        *self.syncs.lock()
    }
}

impl LogFile for MemLog {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        *self.syncs.lock() += 1;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }

    fn truncate(&self) -> Result<()> {
        self.bytes.lock().clear();
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.bytes.lock().len() as u64)
    }
}

/// File-backed log. Appends go straight to the OS (`write_all`); `sync`
/// maps to `fdatasync`, which is the expensive call group commit exists to
/// amortize.
pub struct FileLog {
    file: Mutex<File>,
}

impl FileLog {
    /// Open (or create) a log file at `path`.
    ///
    /// Existing contents are deliberately kept (`truncate(false)`): the
    /// committed tail left behind by a crash is exactly what
    /// [`WalPager::open`] must replay, and the stale tail beyond it is
    /// fenced off by the CRC framing, not by truncation. Truncating here
    /// would silently discard every commit since the last checkpoint.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(FileLog {
            file: Mutex::new(file),
        })
    }
}

impl LogFile for FileLog {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::End(0))?;
        // lint:allow(the log mutex serializes appends: seek-to-end plus write
        // must be atomic for record framing to hold)
        f.write_all(bytes)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        // lint:allow(fsync under the log mutex is the group-commit barrier —
        // every batched record is on disk before commit returns)
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        // lint:allow(recovery-time scan: exclusive access to the log file while
        // reading it back is the point)
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&self) -> Result<()> {
        let f = self.file.lock();
        // lint:allow(checkpoint truncation must not race an append on the
        // shared log descriptor)
        f.set_len(0)?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }
}

// ---------------------------------------------------------------------------
// WalPager
// ---------------------------------------------------------------------------

/// Tuning knobs for the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Commits per fsync: 1 = fsync every commit, N = one fsync per N
    /// commits (the last N-1 commits ride in the volatile tail until the
    /// batch fills or someone syncs).
    pub group_commit: usize,
    /// Overlapped group commit: sealed batches are encoded, appended and
    /// fsynced by a dedicated log-writer thread, so the fsync of batch N
    /// overlaps formation of batch N+1. `commit` then returns once the
    /// batch is *submitted*; durability is reached when the writer syncs
    /// it ([`Pager::sync`] / checkpoint / drop still wait for full
    /// durability). The durable log prefix is byte-identical to the
    /// synchronous mode's — same records, same order, same batching.
    pub pipeline: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            group_commit: 8,
            pipeline: false,
        }
    }
}

impl WalConfig {
    /// Config with the given group-commit batch size (clamped to ≥ 1).
    pub fn with_group_commit(batch: usize) -> Self {
        WalConfig {
            group_commit: batch.max(1),
            pipeline: false,
        }
    }

    /// Like [`WalConfig::with_group_commit`] but with the overlapped
    /// (pipelined) log writer enabled.
    pub fn with_pipeline(batch: usize) -> Self {
        WalConfig {
            group_commit: batch.max(1),
            pipeline: true,
        }
    }

    /// Builder-style switch for the pipelined log writer.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }
}

// ---------------------------------------------------------------------------
// Overlapped (pipelined) group commit
// ---------------------------------------------------------------------------

/// How many sealed batches may be in flight between the foreground and the
/// log-writer thread. Two is the classic double buffer: one batch being
/// fsynced while the next one forms; a third submission blocks, bounding
/// both memory and the durability window.
const PIPE_DEPTH: usize = 2;

/// One sealed group-commit batch, handed to the log-writer thread.
/// Images are already deduped and sorted by page id, so the writer's
/// append order is byte-identical to the synchronous path's.
struct SealedBatch {
    images: Vec<(PageId, Box<[u8; PAGE_SIZE]>)>,
    committed_num_pages: u64,
}

struct PipeState {
    queue: VecDeque<SealedBatch>,
    /// Batches handed to the writer.
    submitted: u64,
    /// Batches fully appended + fsynced (or abandoned after an error —
    /// counted so waiters never hang on a batch that can no longer sync).
    synced: u64,
    /// First error the writer hit, parked for the next foreground call.
    error: Option<StoreError>,
    shutdown: bool,
}

/// Shared state between the foreground and the log-writer thread.
///
/// Lock order: the WAL state mutex may be held while taking `state` here
/// (submission happens under it); the writer thread takes **only** this
/// mutex and never the WAL state mutex, so the pair cannot deadlock —
/// `checkpoint` relies on exactly that to drain the pipe while holding
/// the WAL state lock.
struct Pipeline {
    state: Mutex<PipeState>,
    /// Signals both directions: work queued / shutdown (writer waits) and
    /// batch synced / error parked (foreground waits).
    cond: Condvar,
    /// Writer-side counters, merged into [`WalStats`] by `wal_stats()`
    /// (the writer cannot take the WAL state lock to bump them there).
    syncs: AtomicU64,
    page_records: AtomicU64,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Pipeline {
    fn spawn(log: Arc<dyn LogFile>) -> Arc<Pipeline> {
        let pipe = Arc::new(Pipeline {
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                submitted: 0,
                synced: 0,
                error: None,
                shutdown: false,
            }),
            cond: Condvar::new(),
            syncs: AtomicU64::new(0),
            page_records: AtomicU64::new(0),
            handle: Mutex::new(None),
        });
        let worker = pipe.clone();
        let handle = std::thread::Builder::new()
            .name("wal-writer".into())
            .spawn(move || worker.run(log))
            .expect("spawn wal-writer thread"); // lint:allow(thread spawn fails only on resource exhaustion at open time)
        *pipe.handle.lock() = Some(handle);
        pipe
    }

    /// Writer loop: pop a sealed batch, encode + append its records, fsync.
    /// FIFO over a single thread keeps the log byte-identical to the
    /// synchronous path. Errors are parked for the foreground; the batch
    /// is still accounted as retired so waiters wake.
    fn run(&self, log: Arc<dyn LogFile>) {
        loop {
            let batch = {
                let mut st = self.state.lock();
                loop {
                    if let Some(b) = st.queue.pop_front() {
                        break b;
                    }
                    if st.shutdown {
                        return;
                    }
                    self.cond.wait(&mut st);
                }
            };
            let mut err: Option<StoreError> = None;
            for (id, img) in &batch.images {
                if let Err(e) = log.append(&encode_record(WAL_REC_PAGE, *id, &img[..])) {
                    err = Some(e);
                    break;
                }
                self.page_records.fetch_add(1, Ordering::Relaxed);
            }
            if err.is_none() {
                err = log
                    .append(&encode_record(
                        WAL_REC_COMMIT,
                        batch.committed_num_pages,
                        &[],
                    ))
                    .err();
            }
            if err.is_none() {
                match log.sync() {
                    Ok(()) => {
                        self.syncs.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => err = Some(e),
                }
            }
            let mut st = self.state.lock();
            if let Some(e) = err {
                if st.error.is_none() {
                    st.error = Some(e);
                }
            }
            // Retired either way — a failed batch will never sync, and the
            // parked error tells the foreground why.
            st.synced += 1;
            self.cond.notify_all();
        }
    }

    /// Hand a sealed batch to the writer, blocking while the pipe is full
    /// (double-buffer backpressure). Surfaces any parked writer error.
    fn submit(&self, batch: SealedBatch) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            if let Some(e) = st.error.take() {
                return Err(e);
            }
            if st.queue.len() < PIPE_DEPTH {
                break;
            }
            self.cond.wait(&mut st);
        }
        st.queue.push_back(batch);
        st.submitted += 1;
        self.cond.notify_all();
        Ok(())
    }

    /// Block until every submitted batch has been fsynced (the commit-LSN
    /// wait). Surfaces any parked writer error.
    fn wait_durable(&self) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            if let Some(e) = st.error.take() {
                return Err(e);
            }
            if st.synced >= st.submitted {
                return Ok(());
            }
            self.cond.wait(&mut st);
        }
    }

    /// Stop and join the writer thread (drains nothing — call
    /// [`Pipeline::wait_durable`] first for a clean shutdown).
    fn shutdown(&self) {
        {
            let mut st = self.state.lock();
            st.shutdown = true;
            self.cond.notify_all();
        }
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join(); // lint:allow(joining at shutdown; a panicked writer already parked its story)
        }
    }
}

/// One page's superseded committed images, oldest first: `(lsn, image)`
/// where `lsn` is the commit that produced the image (0 = the pre-fold
/// base captured at a checkpoint).
type VersionChain = Vec<(u64, Box<[u8; PAGE_SIZE]>)>;

struct WalState {
    /// Latest image of every page written since the last checkpoint
    /// (committed or not — in-process readers must see their own writes).
    table: HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
    /// Pages dirtied since the last commit. Their images live in `table`
    /// and are snapshotted into `batch` only when the transaction commits
    /// — a page rewritten ten times in one transaction is copied once,
    /// and uncommitted images never reach the log at all.
    uncommitted: HashSet<PageId>,
    /// Committed images awaiting the batch flush, deduped by page: a page
    /// rewritten by five transactions in the batch is logged once.
    batch: HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
    /// Logical page count (base pages + allocations since checkpoint).
    num_pages: u64,
    /// `num_pages` as of the last commit — what the batch's commit record
    /// must carry, so allocations after it roll back.
    committed_num_pages: u64,
    /// Commits sealed into `batch` but not yet written + fsynced.
    pending_commits: usize,
    /// Sequence number of the last sealed commit (monotonic per process;
    /// starts at the number of commits replayed from the log on open).
    commit_lsn: u64,
    /// For each page in `table` whose image is committed: the LSN of the
    /// commit that produced it. Entries for pages in `uncommitted` are
    /// stale (they describe the overwritten committed image, which now
    /// lives in `versions`).
    page_lsn: HashMap<PageId, u64>,
    /// Superseded committed images, oldest first: `(lsn, image)` where
    /// `lsn` is the commit that produced the image (0 = the pre-fold base
    /// image captured at a checkpoint). Populated copy-on-write by
    /// `write_page` when an uncommitted write lands on a committed image;
    /// cleared at every commit seal while `pinned` is empty, pruned to the
    /// oldest live pin otherwise.
    versions: HashMap<PageId, VersionChain>,
    /// Live snapshot pins: commit LSN → refcount. Ordered so the pruning
    /// logic can read the oldest pin in O(log n).
    pinned: BTreeMap<u64, usize>,
    stats: WalStats,
}

/// A [`Pager`] that stages all writes in a write-ahead log.
///
/// * `write_page` caches the image in an in-memory page table — the base
///   pager is never touched, and nothing reaches the log until a commit
///   seals the image into the current batch.
/// * `commit` seals the transaction's images; the batch is written (one
///   deduped image per page plus a commit record) and fsynced once per
///   [`WalConfig::group_commit`] commits.
/// * `checkpoint` fsyncs the log, folds the page table into the base
///   pager, fsyncs that, then truncates the log.
/// * `open` replays the committed log tail (stopping at the first torn or
///   corrupt record) so a reopened store serves reads as of the last
///   durable commit.
pub struct WalPager {
    base: Arc<dyn Pager>,
    log: Arc<dyn LogFile>,
    cfg: WalConfig,
    state: Mutex<WalState>,
    recovery: RecoveryInfo,
    /// Present iff [`WalConfig::pipeline`]: the overlapped log writer.
    pipe: Option<Arc<Pipeline>>,
}

impl WalPager {
    /// Open a WAL-backed pager over `base`, replaying any committed tail
    /// already present in `log`.
    pub fn open(base: Arc<dyn Pager>, log: Arc<dyn LogFile>, cfg: WalConfig) -> Result<Self> {
        let bytes = log.read_all()?;
        let mut table: HashMap<PageId, Box<[u8; PAGE_SIZE]>> = HashMap::new();
        let mut page_lsn: HashMap<PageId, u64> = HashMap::new();
        let mut num_pages = base.num_pages();
        let mut info = RecoveryInfo {
            log_bytes: bytes.len() as u64,
            commits_applied: 0,
            pages_applied: 0,
            records_discarded: 0,
            bytes_discarded: 0,
            stop: RecoveryStop::CleanEof,
        };

        // Scan forward; publish staged images only at commit records.
        let mut staged: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> = Vec::new();
        let mut scan = RecordScan::new(&bytes, &[WAL_REC_PAGE, WAL_REC_COMMIT]);
        let mut bad_payload_at = None;
        for rec in &mut scan {
            match rec.kind {
                WAL_REC_PAGE => {
                    if rec.payload.len() != PAGE_SIZE {
                        bad_payload_at = Some(rec.start);
                        break;
                    }
                    let mut img = Box::new([0u8; PAGE_SIZE]);
                    img.copy_from_slice(rec.payload);
                    staged.push((rec.page_id, img));
                }
                _ => {
                    info.commits_applied += 1;
                    info.pages_applied += staged.len() as u64;
                    for (id, img) in staged.drain(..) {
                        table.insert(id, img);
                        page_lsn.insert(id, info.commits_applied);
                    }
                    num_pages = num_pages.max(rec.page_id);
                }
            }
        }
        let pos = match bad_payload_at {
            // A CRC-valid page record whose payload is not a full page
            // image is corruption by this framing's rules, not the
            // scanner's: treat like a bad checksum from its first byte.
            Some(at) => {
                info.stop = RecoveryStop::BadChecksum;
                at
            }
            None => {
                info.stop = scan.stop();
                scan.pos()
            }
        };
        info.bytes_discarded = (bytes.len() - pos) as u64;
        info.records_discarded = staged.len() as u64;

        let pipe = if cfg.pipeline {
            Some(Pipeline::spawn(log.clone()))
        } else {
            None
        };
        let pager = WalPager {
            base,
            log,
            cfg,
            state: Mutex::new(WalState {
                table,
                uncommitted: HashSet::new(),
                batch: HashMap::new(),
                num_pages,
                committed_num_pages: num_pages,
                pending_commits: 0,
                commit_lsn: info.commits_applied,
                page_lsn,
                versions: HashMap::new(),
                pinned: BTreeMap::new(),
                stats: WalStats::default(),
            }),
            recovery: info,
            pipe,
        };
        // A dirty recovery tail must not stay in the log. Appends go
        // after the rejected bytes, so a torn or corrupt record would
        // become a permanent roadblock: every future recovery stops at
        // it and silently discards everything written from now on.
        // Commit-less staged pages are as bad — left in place, the next
        // commit's recovery would fold an aborted batch into it. Fold
        // the recovered state into the base and reclaim the log before
        // accepting writes (crash-safe: the clean prefix stays replayable
        // until the truncate, and replaying it over a half-folded base
        // reproduces the same images).
        if info.stop != RecoveryStop::CleanEof
            || info.bytes_discarded > 0
            || info.records_discarded > 0
        {
            pager.checkpoint()?;
        }
        Ok(pager)
    }

    /// What the opening replay found in the log.
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Log-writer counters since open. With the pipeline enabled the
    /// append/fsync counters live on the writer thread; merge them in.
    pub fn wal_stats(&self) -> WalStats {
        let mut stats = self.state.lock().stats;
        if let Some(pipe) = &self.pipe {
            stats.page_records += pipe.page_records.load(Ordering::Relaxed);
            stats.syncs += pipe.syncs.load(Ordering::Relaxed);
        }
        stats
    }

    /// Block until every batch submitted to the pipelined writer has been
    /// appended and fsynced. No-op in synchronous mode (commit already
    /// waited). Public so tests and benches can draw a durability line
    /// without forcing a checkpoint.
    pub fn wait_durable(&self) -> Result<()> {
        match &self.pipe {
            Some(pipe) => pipe.wait_durable(),
            None => Ok(()),
        }
    }

    /// Current log length in bytes (grows until the next checkpoint).
    pub fn log_len(&self) -> Result<u64> {
        self.log.len()
    }

    /// Pages currently staged in the WAL page table.
    pub fn staged_pages(&self) -> usize {
        self.state.lock().table.len()
    }

    /// One-line MVCC state summary for a page (tests/debugging only).
    #[doc(hidden)]
    pub fn debug_page(&self, id: PageId) -> String {
        let st = self.state.lock();
        format!(
            "page {id}: in_table={} page_lsn={:?} uncommitted={} chain={:?} commit_lsn={} committed_pages={} base_pages={} pins={:?}",
            st.table.contains_key(&id),
            st.page_lsn.get(&id),
            st.uncommitted.contains(&id),
            st.versions
                .get(&id)
                .map(|c| c.iter().map(|(l, img)| (*l, img[..4].to_vec())).collect::<Vec<_>>())
                .unwrap_or_default(),
            st.commit_lsn,
            st.committed_num_pages,
            self.base.num_pages(),
            st.pinned,
        )
    }

    /// Seal the in-flight transaction: bump the commit LSN, move its page
    /// images into the group-commit batch (deduped — a page already in the
    /// batch keeps only the newest committed image), stamp each page's
    /// commit LSN and record the allocated page count. While no snapshot
    /// is pinned the retained version chains are discarded here — future
    /// pins can only be at this seal or later, so pre-images kept for the
    /// window between seals are dead weight the moment the seal lands.
    fn seal_commit(st: &mut WalState) {
        st.commit_lsn += 1;
        let lsn = st.commit_lsn;
        for id in st.uncommitted.drain() {
            st.batch.insert(id, st.table[&id].clone());
            st.page_lsn.insert(id, lsn);
        }
        if st.pinned.is_empty() {
            st.versions.clear();
        }
        st.committed_num_pages = st.num_pages;
        st.stats.commits += 1;
        st.pending_commits += 1;
    }

    /// Flush the sealed batch — deduped page images in page order, then
    /// one commit record, then fsync. No-op when nothing has committed
    /// since the last flush.
    ///
    /// Synchronous mode does all three stages inline; pipelined mode hands
    /// the sealed batch to the log-writer thread and returns as soon as it
    /// is *submitted* — formation of the next batch overlaps the fsync.
    /// Either way the record bytes and their order are identical.
    fn flush_batch(&self, st: &mut WalState) -> Result<()> {
        if st.pending_commits == 0 {
            return Ok(());
        }
        let mut ids: Vec<PageId> = st.batch.keys().copied().collect();
        ids.sort_unstable();
        if let Some(pipe) = &self.pipe {
            let images: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> = ids
                .into_iter()
                .filter_map(|id| st.batch.remove(&id).map(|img| (id, img)))
                .collect();
            pipe.submit(SealedBatch {
                images,
                committed_num_pages: st.committed_num_pages,
            })?;
        } else {
            for id in ids {
                self.log
                    .append(&encode_record(WAL_REC_PAGE, id, &st.batch[&id][..]))?;
                st.stats.page_records += 1;
            }
            self.log
                .append(&encode_record(WAL_REC_COMMIT, st.committed_num_pages, &[]))?;
            self.log.sync()?;
            st.stats.syncs += 1;
        }
        st.batch.clear();
        st.pending_commits = 0;
        Ok(())
    }
}

impl Pager for WalPager {
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let st = self.state.lock();
        if let Some(img) = st.table.get(&id) {
            buf.copy_from_slice(&img[..]);
            return Ok(());
        }
        if id >= st.num_pages {
            return Err(StoreError::NotFound(format!("page {id}")));
        }
        if id < self.base.num_pages() {
            // lint:allow(read-through to the base file under the state lock keeps
            // the page table and the base file mutually consistent)
            self.base.read_page(id, buf)
        } else {
            // Allocated since the last checkpoint but never written: the
            // base file has no bytes for it yet, so it reads as zeroes.
            buf.fill(0);
            Ok(())
        }
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let st = &mut *self.state.lock();
        if id >= st.num_pages {
            return Err(StoreError::NotFound(format!("page {id}")));
        }
        match st.table.get_mut(&id) {
            Some(img) => {
                // Copy-on-write: the first uncommitted write over a
                // committed image retains the pre-image on the page's
                // version chain so pinned snapshots can keep reading it.
                // Retention is unconditional — a snapshot may be pinned
                // *after* this overwrite but before the commit seals, and
                // it must still see the pre-image; chains are discarded at
                // the next seal if nobody is pinned by then.
                if !st.uncommitted.contains(&id) {
                    let lsn = st.page_lsn.get(&id).copied().unwrap_or(0);
                    st.versions.entry(id).or_default().push((lsn, img.clone()));
                }
                img.copy_from_slice(buf);
            }
            None => {
                let mut img = Box::new([0u8; PAGE_SIZE]);
                img.copy_from_slice(buf);
                st.table.insert(id, img);
            }
        }
        st.uncommitted.insert(id);
        Ok(())
    }

    fn allocate(&self) -> Result<PageId> {
        // Allocation is not logged: the commit record carries the page
        // count, and unwritten pages read back as zeroes.
        let mut st = self.state.lock();
        let id = st.num_pages;
        st.num_pages += 1;
        Ok(id)
    }

    fn num_pages(&self) -> u64 {
        self.state.lock().num_pages
    }

    fn sync(&self) -> Result<()> {
        {
            let st = &mut *self.state.lock();
            self.flush_batch(st)?;
        }
        // Pipelined mode: flush only *submitted* the batch; sync's contract
        // is durability, so wait for the writer's fsync.
        self.wait_durable()
    }

    fn commit(&self) -> Result<()> {
        let st = &mut *self.state.lock();
        Self::seal_commit(st);
        if st.pending_commits >= self.cfg.group_commit.max(1) {
            self.flush_batch(st)?;
        }
        Ok(())
    }

    fn checkpoint(&self) -> Result<()> {
        let st = &mut *self.state.lock();
        // Seal whatever is in flight — a checkpoint is a commit point, so
        // images dirtied since the last commit go with it — and flush the
        // batch so the log is complete before the base file changes.
        Self::seal_commit(st);
        self.flush_batch(st)?;
        // WAL ordering: every commit record must be durable in the log
        // before the base file changes underneath it. The writer thread
        // never takes the WAL state lock, so draining the pipe while
        // holding it cannot deadlock.
        if let Some(pipe) = &self.pipe {
            pipe.wait_durable()?;
        }

        let mut ids: Vec<PageId> = st.table.keys().copied().collect();
        ids.sort_unstable();

        // Folding is about to overwrite the base file and clear the page
        // table; pinned snapshots older than a page's folded image must
        // keep reading history, so capture what the fold destroys into the
        // version chains first:
        //  * a pin older than everything retained for a page still needs
        //    the pre-fold base image — push it at the chain front, tagged
        //    LSN 0 ("before every in-log commit");
        //  * once a page has a chain, the folded image's own LSN vanishes
        //    with `page_lsn`, so append `(lsn, image)` at the chain tail —
        //    otherwise a pin newer than the fold would wrongly pick an
        //    older retained version instead of the folded state.
        if !st.pinned.is_empty() {
            if let Some(&min_pin) = st.pinned.keys().next() {
                for &id in &ids {
                    let lsn = st.page_lsn.get(&id).copied().unwrap_or(0);
                    let chain_floor = st
                        .versions
                        .get(&id)
                        .and_then(|c| c.first())
                        .map(|(l, _)| *l);
                    if min_pin < lsn && chain_floor.is_none_or(|l| l > min_pin) {
                        // Pages past the base file were allocated since the
                        // last fold and read as zeroes — which is exactly
                        // their pre-fold image.
                        let mut img = Box::new([0u8; PAGE_SIZE]);
                        if id < self.base.num_pages() {
                            // lint:allow(pre-fold capture must be atomic with the
                            // fold below — dropping the state lock here would let
                            // a pin read a half-captured version chain)
                            self.base.read_page(id, &mut img[..])?;
                        }
                        st.versions.entry(id).or_default().insert(0, (0, img));
                    }
                    if let Some(chain) = st.versions.get_mut(&id) {
                        if !chain.is_empty() {
                            chain.push((lsn, st.table[&id].clone()));
                        }
                    }
                }
            }
        }

        // Fold the page table into the base file in page order.
        while self.base.num_pages() < st.num_pages {
            self.base.allocate()?;
        }
        for id in ids {
            // lint:allow(checkpoint folds the page table into the base file; the
            // state lock must cover the whole fold or readers see a torn mix)
            self.base.write_page(id, &st.table[&id][..])?;
        }
        self.base.sync()?;

        // The base now holds everything the log did; reclaim the log.
        self.log.truncate()?;
        self.log.sync()?;
        st.stats.syncs += 1;
        st.stats.checkpoints += 1;
        st.table.clear();
        st.page_lsn.clear();
        Ok(())
    }

    fn is_transactional(&self) -> bool {
        true
    }

    fn checksum_stats(&self) -> (u64, u64) {
        self.base.checksum_stats()
    }

    fn reset_checksum_stats(&self) {
        self.base.reset_checksum_stats();
    }

    fn commit_lsn(&self) -> u64 {
        self.state.lock().commit_lsn
    }

    /// Pin the current commit for snapshot reads. The pending batch is
    /// flushed and made durable first, so every snapshot handed out is a
    /// state that survives any subsequent crash — recovery can only land
    /// at or after it. Registration happens under the same state-lock
    /// critical section, so there is no window in which the writer could
    /// overwrite a committed image without retaining it for this pin.
    fn pin_snapshot(&self) -> Result<Option<(u64, u64)>> {
        let st = &mut *self.state.lock();
        self.flush_batch(st)?;
        // Pipelined mode: the flush only *submitted* the batch; wait for
        // the writer thread's fsync. It takes only the pipe lock, never
        // the WAL state lock, so waiting under the state lock is safe
        // (same contract checkpoint relies on).
        self.wait_durable()?;
        let lsn = st.commit_lsn;
        *st.pinned.entry(lsn).or_insert(0) += 1;
        Ok(Some((lsn, st.committed_num_pages)))
    }

    fn unpin_snapshot(&self, commit_lsn: u64) {
        let st = &mut *self.state.lock();
        if let Some(n) = st.pinned.get_mut(&commit_lsn) {
            *n -= 1;
            if *n == 0 {
                st.pinned.remove(&commit_lsn);
            }
        }
        if st.pinned.is_empty() {
            // With no pins left, retained history is dead weight — except
            // for pages the in-flight transaction has already overwritten:
            // their newest pre-image is still the *committed* image that
            // the next pin (taken before the seal) must read, because the
            // page-table slot holds uncommitted bytes. Dropping it would
            // make those pages read as zeroes / stale base state.
            let uncommitted = &st.uncommitted;
            st.versions.retain(|id, chain| {
                if !uncommitted.contains(id) {
                    return false;
                }
                if chain.len() > 1 {
                    chain.drain(..chain.len() - 1);
                }
                true
            });
            return;
        }
        // Prune each chain to what live pins can still reach: an entry is
        // dead once a newer entry exists that is itself at-or-below the
        // oldest pin (every pin would pick the newer one).
        if let Some(&min_pin) = st.pinned.keys().next() {
            st.versions.retain(|_, chain| {
                let keep_from = chain.iter().rposition(|(l, _)| *l <= min_pin).unwrap_or(0);
                chain.drain(..keep_from);
                !chain.is_empty()
            });
        }
    }

    /// Serve page `id` as of pinned commit `lsn`: the page table if its
    /// committed image is old enough, else the newest retained version
    /// at-or-below the pin, else the base file (pre-fold state), else
    /// zeroes for pages allocated-but-unwritten at the pin. Uncommitted
    /// images are never served — their committed pre-image is on the
    /// version chain (copy-on-write in `write_page`).
    fn read_page_at(&self, id: PageId, lsn: u64, buf: &mut [u8]) -> Result<()> {
        let st = self.state.lock();
        if !st.uncommitted.contains(&id) {
            if let Some(img) = st.table.get(&id) {
                if st.page_lsn.get(&id).copied().unwrap_or(0) <= lsn {
                    buf.copy_from_slice(&img[..]);
                    return Ok(());
                }
            }
        }
        if let Some(chain) = st.versions.get(&id) {
            if let Some((_, img)) = chain.iter().rev().find(|(l, _)| *l <= lsn) {
                buf.copy_from_slice(&img[..]);
                return Ok(());
            }
        }
        if id < self.base.num_pages() {
            // lint:allow(read-through to the base file under the state lock keeps
            // the version chains and the base file mutually consistent)
            return self.base.read_page(id, buf);
        }
        if id < st.num_pages {
            buf.fill(0);
            return Ok(());
        }
        Err(StoreError::NotFound(format!("page {id}")))
    }
}

impl Drop for WalPager {
    fn drop(&mut self) {
        // Best-effort: write + fsync any sealed-but-unflushed batch so a
        // clean process exit never loses commits. Uncommitted images are
        // deliberately left behind. Errors are unreportable here; crash
        // tests exercise the failure path explicitly.
        {
            let st = &mut *self.state.lock();
            // lint:allow(Drop cannot report errors; the crash-recovery tests
            // exercise the failure path explicitly)
            let _ = self.flush_batch(st);
        }
        if let Some(pipe) = &self.pipe {
            // Drain in-flight batches, then stop and join the writer.
            // lint:allow(Drop cannot report errors; a parked writer error was
            // already surfaced to the last foreground commit or sync)
            let _ = pipe.wait_durable();
            pipe.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn wal_over_mem(cfg: WalConfig) -> (Arc<MemPager>, Arc<MemLog>, WalPager) {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        let pager = WalPager::open(base.clone(), log.clone(), cfg).unwrap();
        (base, log, pager)
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_quad_matches_single_stream() {
        for lens in [
            [0, 0, 0, 0],
            [1024, 1024, 1024, 1024],
            [1, 17, 40, 1000],
            [33, 0, 16, 5],
        ] {
            let lanes: Vec<Vec<u8>> = lens
                .iter()
                .enumerate()
                .map(|(k, &n)| (0..n).map(|i| (i * 11 + k * 5 + 1) as u8).collect())
                .collect();
            let got = crc32_quad(&lanes[0], &lanes[1], &lanes[2], &lanes[3]);
            let want = (
                crc32(&lanes[0]),
                crc32(&lanes[1]),
                crc32(&lanes[2]),
                crc32(&lanes[3]),
            );
            assert_eq!(got, want, "{lens:?}");
        }
    }

    #[test]
    fn record_roundtrip_survives_encode() {
        let payload = vec![7u8; PAGE_SIZE];
        let rec = encode_record(WAL_REC_PAGE, 42, &payload);
        assert_eq!(rec.len(), WAL_HEADER_LEN + PAGE_SIZE);
        assert_eq!(rec[0], WAL_REC_PAGE);
        assert_eq!(u64::from_le_bytes(rec[1..9].try_into().unwrap()), 42);
    }

    #[test]
    fn reads_fall_through_to_base_and_zero_fill() {
        let (base, _log, pager) = wal_over_mem(WalConfig::default());
        base.allocate().unwrap();
        let mut img = [0u8; PAGE_SIZE];
        img[0] = 9;
        base.write_page(0, &img).unwrap();

        // Reopen so the WalPager sees the base page.
        let log = Arc::new(MemLog::new());
        let pager2 = WalPager::open(base, log, WalConfig::default()).unwrap();
        drop(pager);
        let mut buf = [0u8; PAGE_SIZE];
        pager2.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 9);

        // Freshly allocated, never-written page reads as zeroes.
        let id = pager2.allocate().unwrap();
        pager2.read_page(id, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn uncommitted_writes_do_not_survive_reopen() {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        {
            let pager = WalPager::open(base.clone(), log.clone(), WalConfig::default()).unwrap();
            let id = pager.allocate().unwrap();
            let img = [3u8; PAGE_SIZE];
            pager.write_page(id, &img).unwrap();
            // no commit
        }
        let pager = WalPager::open(base, log.clone(), WalConfig::default()).unwrap();
        assert_eq!(pager.num_pages(), 0, "uncommitted allocation rolled back");
        // Deferred appends mean an uncommitted image never even reaches
        // the log — there is nothing to discard.
        assert_eq!(log.len().unwrap(), 0);
        assert_eq!(pager.recovery().records_discarded, 0);
        assert_eq!(pager.recovery().commits_applied, 0);
    }

    #[test]
    fn committed_writes_survive_reopen_without_checkpoint() {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        {
            let pager =
                WalPager::open(base.clone(), log.clone(), WalConfig::with_group_commit(1)).unwrap();
            let id = pager.allocate().unwrap();
            let img = [5u8; PAGE_SIZE];
            pager.write_page(id, &img).unwrap();
            pager.commit().unwrap();
        }
        assert_eq!(base.num_pages(), 0, "base untouched before checkpoint");
        let pager = WalPager::open(base, log, WalConfig::default()).unwrap();
        assert_eq!(pager.num_pages(), 1);
        assert_eq!(pager.recovery().commits_applied, 1);
        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 5);
    }

    #[test]
    fn group_commit_batches_fsyncs() {
        let (_base, log, pager) = wal_over_mem(WalConfig::with_group_commit(8));
        let id = pager.allocate().unwrap();
        let img = [1u8; PAGE_SIZE];
        for _ in 0..64 {
            pager.write_page(id, &img).unwrap();
            pager.commit().unwrap();
        }
        assert_eq!(log.sync_count(), 8, "64 commits / batch 8 = 8 fsyncs");
        assert_eq!(pager.wal_stats().commits, 64);

        // fsync-per-commit for comparison.
        let (_b2, log2, p2) = wal_over_mem(WalConfig::with_group_commit(1));
        let id2 = p2.allocate().unwrap();
        for _ in 0..64 {
            p2.write_page(id2, &img).unwrap();
            p2.commit().unwrap();
        }
        assert_eq!(log2.sync_count(), 64);
    }

    #[test]
    fn explicit_sync_flushes_partial_batch() {
        let (_base, log, pager) = wal_over_mem(WalConfig::with_group_commit(100));
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[2u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        assert_eq!(log.sync_count(), 0, "batch not full yet");
        pager.sync().unwrap();
        assert_eq!(log.sync_count(), 1);
        pager.sync().unwrap();
        assert_eq!(log.sync_count(), 1, "nothing pending, no extra fsync");
    }

    #[test]
    fn drop_flushes_pending_commits() {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        {
            let pager =
                WalPager::open(base.clone(), log.clone(), WalConfig::with_group_commit(100))
                    .unwrap();
            let id = pager.allocate().unwrap();
            pager.write_page(id, &[4u8; PAGE_SIZE]).unwrap();
            pager.commit().unwrap();
            assert_eq!(log.sync_count(), 0);
        }
        assert_eq!(log.sync_count(), 1, "Drop fsynced the tail");
    }

    #[test]
    fn checkpoint_folds_into_base_and_truncates_log() {
        let (base, log, pager) = wal_over_mem(WalConfig::default());
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        pager.write_page(a, &[0xAA; PAGE_SIZE]).unwrap();
        pager.write_page(b, &[0xBB; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        pager.checkpoint().unwrap();

        assert_eq!(base.num_pages(), 2);
        let mut buf = [0u8; PAGE_SIZE];
        base.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0xBB);
        assert_eq!(log.len().unwrap(), 0, "checkpoint truncated the log");
        assert_eq!(pager.staged_pages(), 0);

        // Post-checkpoint reads come from the base.
        pager.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0xAA);
    }

    #[test]
    fn replay_stops_at_torn_record() {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        {
            let pager =
                WalPager::open(base.clone(), log.clone(), WalConfig::with_group_commit(1)).unwrap();
            let id = pager.allocate().unwrap();
            pager.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
            pager.commit().unwrap(); // txn 1: durable
            pager.write_page(id, &[2u8; PAGE_SIZE]).unwrap();
            pager.commit().unwrap(); // txn 2: will be torn below
        }
        let mut raw = log.raw();
        raw.truncate(raw.len() - 10); // tear the final commit record
        log.set_raw(raw);

        let pager = WalPager::open(base, log, WalConfig::default()).unwrap();
        assert_eq!(pager.recovery().stop, RecoveryStop::TornRecord);
        assert_eq!(pager.recovery().commits_applied, 1);
        assert_eq!(
            pager.recovery().records_discarded,
            1,
            "txn 2's page image dropped"
        );
        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "state is as of txn 1");
    }

    #[test]
    fn replay_rejects_bit_flip_via_crc() {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        let rec1_end;
        {
            let pager =
                WalPager::open(base.clone(), log.clone(), WalConfig::with_group_commit(1)).unwrap();
            let id = pager.allocate().unwrap();
            pager.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
            pager.commit().unwrap();
            rec1_end = log.len().unwrap() as usize;
            pager.write_page(id, &[2u8; PAGE_SIZE]).unwrap();
            pager.commit().unwrap();
        }
        let mut raw = log.raw();
        // Flip one payload bit inside txn 2's page image.
        raw[rec1_end + WAL_HEADER_LEN + 100] ^= 0x01;
        log.set_raw(raw);

        let pager = WalPager::open(base, log, WalConfig::default()).unwrap();
        assert_eq!(pager.recovery().stop, RecoveryStop::BadChecksum);
        assert_eq!(pager.recovery().commits_applied, 1);
        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "corrupt txn 2 discarded, txn 1 intact");
    }

    #[test]
    fn file_backed_reopen_preserves_log_tail_and_base_pages() {
        // Regression for the open-mode decision: FileLog::open and
        // FilePager::open must keep existing contents (`truncate(false)`).
        // An accidental `truncate(true)` on either file would wipe the
        // committed WAL tail / the checkpointed base pages, and this
        // reboot sequence would come back empty.
        use crate::pager::FilePager;
        let dir = std::env::temp_dir().join(format!("relstore-walfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("pages.db");
        let log_path = dir.join("pages.db.wal");
        {
            let base = Arc::new(FilePager::open(&base_path).unwrap());
            let log = Arc::new(FileLog::open(&log_path).unwrap());
            let pager = WalPager::open(base, log, WalConfig::with_group_commit(1)).unwrap();
            let a = pager.allocate().unwrap();
            pager.write_page(a, &[0x5A; PAGE_SIZE]).unwrap();
            pager.commit().unwrap();
            pager.checkpoint().unwrap(); // folds page 0 into the base file
            let b = pager.allocate().unwrap();
            pager.write_page(b, &[0x6B; PAGE_SIZE]).unwrap();
            pager.commit().unwrap(); // lives only in the log tail
        }
        // "Reboot": reopening both files must replay the committed tail
        // over the checkpointed base — not truncate either one.
        let base = Arc::new(FilePager::open(&base_path).unwrap());
        assert_eq!(
            base.num_pages(),
            1,
            "checkpointed base page survived reopen"
        );
        let log = Arc::new(FileLog::open(&log_path).unwrap());
        assert!(log.len().unwrap() > 0, "committed WAL tail survived reopen");
        let pager = WalPager::open(base, log, WalConfig::default()).unwrap();
        assert_eq!(pager.recovery().commits_applied, 1);
        assert_eq!(pager.num_pages(), 2);
        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x5A, "base page intact");
        pager.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0x6B, "logged page replayed");
        drop(pager);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_to_unallocated_page_fails() {
        let (_base, _log, pager) = wal_over_mem(WalConfig::default());
        assert!(pager.write_page(3, &[0u8; PAGE_SIZE]).is_err());
        assert!(pager.read_page(3, &mut [0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn crc32_oct_matches_single_stream() {
        for lens in [
            [0usize; 8],
            [1024; 8],
            [1, 17, 40, 1000, 0, 16, 512, 33],
            [64, 64, 64, 64, 64, 64, 64, 63],
        ] {
            let lanes: Vec<Vec<u8>> = lens
                .iter()
                .enumerate()
                .map(|(k, &n)| (0..n).map(|i| (i * 13 + k * 7 + 3) as u8).collect())
                .collect();
            let refs: [&[u8]; 8] = std::array::from_fn(|k| lanes[k].as_slice());
            let got = crc32_oct(refs);
            for k in 0..8 {
                assert_eq!(got[k], crc32(&lanes[k]), "lane {k} of {lens:?}");
            }
        }
    }

    /// The pipelined writer must produce byte-identical log contents to the
    /// synchronous path — same records, same order, same batch boundaries.
    #[test]
    fn pipelined_log_bytes_match_synchronous_mode() {
        let run = |cfg: WalConfig| -> Vec<u8> {
            let base = Arc::new(MemPager::new());
            let log = Arc::new(MemLog::new());
            {
                let pager = WalPager::open(base, log.clone(), cfg).unwrap();
                let a = pager.allocate().unwrap();
                let b = pager.allocate().unwrap();
                for i in 0..24u8 {
                    pager.write_page(a, &[i; PAGE_SIZE]).unwrap();
                    if i % 3 == 0 {
                        pager.write_page(b, &[i ^ 0x55; PAGE_SIZE]).unwrap();
                    }
                    pager.commit().unwrap();
                }
                pager.sync().unwrap();
            }
            log.raw()
        };
        let sync_bytes = run(WalConfig::with_group_commit(4));
        let pipe_bytes = run(WalConfig::with_pipeline(4));
        assert_eq!(sync_bytes, pipe_bytes);
    }

    #[test]
    fn pipelined_commits_survive_reopen() {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        {
            let pager =
                WalPager::open(base.clone(), log.clone(), WalConfig::with_pipeline(8)).unwrap();
            let id = pager.allocate().unwrap();
            for i in 0..20u8 {
                pager.write_page(id, &[i; PAGE_SIZE]).unwrap();
                pager.commit().unwrap();
            }
            // Drop drains the pipe: the partial batch is flushed + fsynced.
        }
        let pager = WalPager::open(base, log, WalConfig::default()).unwrap();
        assert_eq!(pager.num_pages(), 1);
        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 19, "latest committed image replayed");
    }

    #[test]
    fn pipelined_sync_waits_for_durability() {
        let (_base, log, pager) = wal_over_mem(WalConfig::with_pipeline(100));
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[2u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        pager.sync().unwrap();
        // After sync returns the fsync has happened — not merely been queued.
        assert_eq!(log.sync_count(), 1);
        assert_eq!(pager.wal_stats().syncs, 1);
    }

    #[test]
    fn pipelined_checkpoint_preserves_wal_ordering() {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        let pager = WalPager::open(base.clone(), log.clone(), WalConfig::with_pipeline(8)).unwrap();
        let id = pager.allocate().unwrap();
        for i in 0..10u8 {
            pager.write_page(id, &[i; PAGE_SIZE]).unwrap();
            pager.commit().unwrap();
        }
        pager.checkpoint().unwrap();
        // The fold happened only after every in-flight batch was durable,
        // then the log was truncated.
        assert_eq!(log.len().unwrap(), 0);
        assert_eq!(base.num_pages(), 1);
        let mut buf = [0u8; PAGE_SIZE];
        base.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
    }

    fn page_at(pager: &WalPager, id: PageId, lsn: u64) -> u8 {
        let mut buf = [0u8; PAGE_SIZE];
        pager.read_page_at(id, lsn, &mut buf).unwrap();
        buf[0]
    }

    #[test]
    fn snapshot_reads_pinned_version_while_writer_commits() {
        let (_base, _log, pager) = wal_over_mem(WalConfig::with_group_commit(1));
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();

        let (lsn, pages) = pager.pin_snapshot().unwrap().unwrap();
        assert_eq!(lsn, 1);
        assert_eq!(pages, 1);

        // Writer keeps committing; the pinned view must not move.
        for i in 2..6u8 {
            pager.write_page(id, &[i; PAGE_SIZE]).unwrap();
            pager.commit().unwrap();
        }
        assert_eq!(page_at(&pager, id, lsn), 1, "snapshot sees pinned image");
        assert_eq!(pager.commit_lsn(), 5);
        assert_eq!(page_at(&pager, id, pager.commit_lsn()), 5);

        pager.unpin_snapshot(lsn);
        // After the last pin drops, retained versions are released.
        assert!(pager.state.lock().versions.is_empty());
    }

    #[test]
    fn snapshot_never_sees_uncommitted_writes() {
        let (_base, _log, pager) = wal_over_mem(WalConfig::with_group_commit(1));
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();

        let (lsn, _) = pager.pin_snapshot().unwrap().unwrap();
        // Dirty but uncommitted overwrite: invisible at any snapshot.
        pager.write_page(id, &[9u8; PAGE_SIZE]).unwrap();
        assert_eq!(page_at(&pager, id, lsn), 1);
        assert_eq!(page_at(&pager, id, pager.commit_lsn()), 1);
        pager.commit().unwrap();
        assert_eq!(page_at(&pager, id, lsn), 1);
        assert_eq!(page_at(&pager, id, pager.commit_lsn()), 9);
        pager.unpin_snapshot(lsn);
    }

    #[test]
    fn snapshot_ignores_pages_allocated_after_pin() {
        let (_base, _log, pager) = wal_over_mem(WalConfig::with_group_commit(1));
        let a = pager.allocate().unwrap();
        pager.write_page(a, &[1u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();

        let (lsn, pages) = pager.pin_snapshot().unwrap().unwrap();
        assert_eq!(pages, 1);
        let b = pager.allocate().unwrap();
        pager.write_page(b, &[7u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        // The snapshot's frozen page count excludes b; the version store
        // must also refuse to serve b's post-pin image at the pinned LSN.
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(
            pager.read_page_at(b, lsn, &mut buf),
            Ok(()) | Err(StoreError::NotFound(_))
        ));
        if pager.read_page_at(b, lsn, &mut buf).is_ok() {
            // If served (page exists now), it must be the zero-fill, never
            // the post-snapshot committed payload.
            assert_eq!(buf[0], 0);
        }
        pager.unpin_snapshot(lsn);
    }

    #[test]
    fn checkpoint_preserves_pinned_versions() {
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        let pager = WalPager::open(base.clone(), log, WalConfig::with_group_commit(1)).unwrap();
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();

        let (lsn, _) = pager.pin_snapshot().unwrap().unwrap();
        pager.write_page(id, &[2u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        // Fold into the base file while the pin is live: the pinned image
        // must be captured into the version chain before the table clears.
        pager.checkpoint().unwrap();
        assert_eq!(base.num_pages(), 1);
        assert_eq!(page_at(&pager, id, lsn), 1, "pin survives checkpoint");
        assert_eq!(page_at(&pager, id, pager.commit_lsn()), 2);

        // More commits after the fold still resolve correctly.
        pager.write_page(id, &[3u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        assert_eq!(page_at(&pager, id, lsn), 1);
        assert_eq!(page_at(&pager, id, pager.commit_lsn()), 3);
        pager.unpin_snapshot(lsn);
        assert!(pager.state.lock().versions.is_empty());
    }

    #[test]
    fn checkpoint_captures_pinned_zero_page_not_in_base() {
        // A page allocated + committed as all-zeroes before the pin, then
        // overwritten and folded: the pre-fold image (zeroes) is not in the
        // base file, so Rule C must zero-fill the captured version.
        let (_base, _log, pager) = wal_over_mem(WalConfig::with_group_commit(1));
        let a = pager.allocate().unwrap();
        pager.write_page(a, &[4u8; PAGE_SIZE]).unwrap();
        let b = pager.allocate().unwrap();
        pager.commit().unwrap();

        let (lsn, pages) = pager.pin_snapshot().unwrap().unwrap();
        assert_eq!(pages, 2);
        pager.write_page(b, &[8u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        pager.checkpoint().unwrap();
        assert_eq!(page_at(&pager, b, lsn), 0, "pre-pin zero page preserved");
        assert_eq!(page_at(&pager, b, pager.commit_lsn()), 8);
        pager.unpin_snapshot(lsn);
    }

    #[test]
    fn overlapping_pins_release_independently() {
        let (_base, _log, pager) = wal_over_mem(WalConfig::with_group_commit(1));
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[1u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        let (s1, _) = pager.pin_snapshot().unwrap().unwrap();

        pager.write_page(id, &[2u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        let (s2, _) = pager.pin_snapshot().unwrap().unwrap();
        assert!(s2 > s1);

        pager.write_page(id, &[3u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();

        assert_eq!(page_at(&pager, id, s1), 1);
        assert_eq!(page_at(&pager, id, s2), 2);

        // Releasing the older pin prunes history below s2 but keeps s2's.
        pager.unpin_snapshot(s1);
        assert_eq!(page_at(&pager, id, s2), 2);
        pager.unpin_snapshot(s2);
        assert!(pager.state.lock().versions.is_empty());
    }

    #[test]
    fn unpin_keeps_preimages_of_uncommitted_pages_for_the_next_pin() {
        // Regression: releasing the last pin used to drop *all* retained
        // versions, including the pre-image of a page the in-flight
        // transaction had already overwritten. A pin taken right after
        // (same commit LSN — the seal hasn't landed) then read the page
        // as zeroes instead of its committed image.
        let (_base, _log, pager) = wal_over_mem(WalConfig::with_group_commit(1));
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[7u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();

        // Writer mid-transaction: overwrite pushes the committed pre-image.
        pager.write_page(id, &[9u8; PAGE_SIZE]).unwrap();

        // A reader pins and immediately releases while the write is in
        // flight — this must not destroy the pre-image.
        let (s1, _) = pager.pin_snapshot().unwrap().unwrap();
        pager.unpin_snapshot(s1);

        let (s2, _) = pager.pin_snapshot().unwrap().unwrap();
        assert_eq!(s2, s1, "no seal happened in between");
        assert_eq!(page_at(&pager, id, s2), 7, "committed image, not zeroes");
        pager.unpin_snapshot(s2);

        // Once the transaction seals, the retained pre-image is dead and
        // the next full unpin clears it.
        pager.commit().unwrap();
        let (s3, _) = pager.pin_snapshot().unwrap().unwrap();
        assert_eq!(page_at(&pager, id, s3), 9);
        pager.unpin_snapshot(s3);
        assert!(pager.state.lock().versions.is_empty());
    }

    #[test]
    fn pin_snapshot_forces_durability() {
        let (_base, log, pager) = wal_over_mem(WalConfig::with_group_commit(64));
        let id = pager.allocate().unwrap();
        pager.write_page(id, &[6u8; PAGE_SIZE]).unwrap();
        pager.commit().unwrap();
        // Group commit is holding the batch back; pinning must flush and
        // fsync it so the returned LSN is crash-safe.
        assert_eq!(log.sync_count(), 0);
        let (lsn, _) = pager.pin_snapshot().unwrap().unwrap();
        assert_eq!(lsn, 1);
        assert!(log.sync_count() >= 1);
        pager.unpin_snapshot(lsn);
    }
}
