//! Segment-directory readahead under the buffer pool.
//!
//! Scans that know their future — a clustered B+tree range walk over the
//! leaf chain, an index probe about to chase heap pages, the archiver
//! sweeping a segment — derive exact page runs from the segment directory
//! and hand them to [`Prefetcher::hint`]. Worker threads fault those pages
//! in *ahead of the cursor*, so by the time the scan's `get` arrives the
//! page is a shard-map hit instead of a synchronous `read_page` stall.
//!
//! Design rules that keep this layer invisible when it matters:
//!
//! * **Resident pages are skipped** without touching any counter, so a
//!   hint over a warm range costs one shard-map probe per page.
//! * **Reads happen outside the shard lock.** The worker probes residency,
//!   reads the page from the pager into a private buffer, then re-locks
//!   and re-checks: if the foreground faulted the page in the meantime the
//!   private copy is discarded (counted `prefetch_wasted`) — the pool
//!   never holds a shard lock across a prefetch I/O, and the
//!   one-frame-per-page invariant stays with the foreground path.
//! * **Errors are swallowed.** A failed readahead is a no-op; the
//!   foreground will hit the same error synchronously on its own path,
//!   where it has a caller to report to.
//! * **Fault-injection determinism:** prefetch issues only *reads*, and
//!   the failpoint harness counts writes and fsyncs — so enabling
//!   prefetch cannot shift a seeded crash position.
//!
//! Hit/waste accounting lives in [`crate::IoStats`]: `prefetch_issued`
//! (pages read ahead), `prefetch_hits` (first foreground `get` served
//! from a prefetched frame) and `prefetch_wasted` (prefetched frames
//! dropped without a hit, or reads that lost the race to the foreground).

use crate::buffer::PoolCore;
use crate::page::{PageId, PAGE_SIZE};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Pages per queued work item: hints are split into chunks this size so
/// two workers share one long run instead of one worker owning it all.
const CHUNK_PAGES: usize = 16;

/// Queued chunks beyond which new hints are dropped (scan far ahead of
/// I/O — reading more would only evict pages the cursor needs sooner).
const MAX_QUEUE: usize = 64;

/// Readahead worker threads.
const WORKERS: usize = 2;

struct PrefetchState {
    queue: VecDeque<Vec<PageId>>,
    /// Chunks being processed right now (for quiesce: queue empty is not
    /// enough, a worker may still hold the last chunk).
    in_flight: usize,
    shutdown: bool,
}

/// The readahead engine: a bounded chunk queue drained by worker threads.
/// Spawned by [`crate::BufferPool::enable_prefetch`]; hints arrive via
/// [`crate::BufferPool::prefetch_hint`].
pub(crate) struct Prefetcher {
    core: Arc<PoolCore>,
    state: Mutex<PrefetchState>,
    cond: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Prefetcher {
    pub(crate) fn spawn(core: Arc<PoolCore>) -> Arc<Prefetcher> {
        let pf = Arc::new(Prefetcher {
            core,
            state: Mutex::new(PrefetchState {
                queue: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = pf.handles.lock();
        for i in 0..WORKERS {
            let worker = pf.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pool-prefetch-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn prefetch worker"), // lint:allow(thread spawn fails only on resource exhaustion)
            );
        }
        drop(handles);
        pf
    }

    /// Queue a run of page ids for readahead. Never blocks: when the
    /// queue is full the overflow is dropped — the scan will simply fault
    /// those pages itself.
    pub(crate) fn hint(&self, run: &[PageId]) {
        if run.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        if st.shutdown {
            return;
        }
        for chunk in run.chunks(CHUNK_PAGES) {
            if st.queue.len() >= MAX_QUEUE {
                break;
            }
            st.queue.push_back(chunk.to_vec());
        }
        self.cond.notify_all();
    }

    /// Block until every queued chunk has been fully processed.
    pub(crate) fn quiesce(&self) {
        let mut st = self.state.lock();
        while !st.queue.is_empty() || st.in_flight > 0 {
            self.cond.wait(&mut st);
        }
    }

    /// Stop and join the workers; queued chunks are abandoned.
    pub(crate) fn shutdown(&self) {
        {
            let mut st = self.state.lock();
            st.shutdown = true;
            st.queue.clear();
            self.cond.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join(); // lint:allow(joining at shutdown; workers swallow their own errors)
        }
    }

    fn run(&self) {
        loop {
            let chunk = {
                let mut st = self.state.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(c) = st.queue.pop_front() {
                        st.in_flight += 1;
                        break c;
                    }
                    self.cond.wait(&mut st);
                }
            };
            for id in chunk {
                self.fetch_one(id);
            }
            let mut st = self.state.lock();
            st.in_flight -= 1;
            self.cond.notify_all();
        }
    }

    /// Read one page ahead of the cursor. See the module docs for the
    /// probe → read-outside-lock → re-check dance.
    fn fetch_one(&self, id: PageId) {
        if self.core.is_resident(id) {
            return;
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        if self.core.pager().read_page(id, &mut data[..]).is_err() {
            return; // foreground will surface the same error with context
        }
        self.core.count_physical_read();
        self.core.prefetch_issued.fetch_add(1, Ordering::Relaxed);
        // insert_prefetched re-checks residency under the shard lock and
        // counts the read as wasted if the foreground won the race.
        self.core.insert_prefetched(id, data);
    }
}
