//! Typed values, schemas, and the row / key byte encodings.
//!
//! Rows are stored with a compact tagged encoding. Index keys use a
//! different, *order-preserving* encoding: comparing encoded keys with
//! `memcmp` is equivalent to comparing the typed values, which is what lets
//! the B+tree stay type-agnostic.

use crate::{Result, StoreError};
use std::cmp::Ordering;
use std::fmt;
use temporal::Date;

/// The column types the engine supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Double,
    /// Variable-length UTF-8 string.
    Str,
    /// Day-granularity date (ArchIS `tstart`/`tend` columns).
    Date,
    /// Variable-length binary (BlockZIP BLOB columns).
    Blob,
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Day-granularity date.
    Date(Date),
    /// Binary large object.
    Blob(Vec<u8>),
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Blob(_) => Some(DataType::Blob),
        }
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Date content, if this is a `Date`.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Numeric view (Int and Double both qualify), used by aggregates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: NULL compares as unknown (`None`).
    /// Int and Double compare numerically with each other.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Double(a), Value::Double(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Double(b)) => (*a as f64).partial_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Blob(a), Value::Blob(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order for sorting (NULLs first, then by type tag, then value).
    /// Used by `ORDER BY` and sort-merge join.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Double(_) => 1,
                Value::Str(_) => 2,
                Value::Date(_) => 3,
                Value::Blob(_) => 4,
            }
        }
        match self.sql_cmp(other) {
            Some(o) => o,
            None => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                _ => tag(self).cmp(&tag(other)),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Blob(b) => write!(f, "<blob {} bytes>", b.len()),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns, in order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Column index or a [`StoreError::NotFound`].
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| StoreError::NotFound(format!("column {name}")))
    }

    /// Check a row against the schema (arity and non-NULL types).
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(StoreError::SchemaMismatch(format!(
                "expected {} columns, got {}",
                self.arity(),
                row.len()
            )));
        }
        for (v, f) in row.iter().zip(&self.fields) {
            if let Some(dt) = v.data_type() {
                if dt != f.dtype {
                    return Err(StoreError::SchemaMismatch(format!(
                        "column {} expects {:?}, got {:?}",
                        f.name, f.dtype, dt
                    )));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Row encoding (compact, tagged)
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;
const TAG_BLOB: u8 = 5;

/// Serialize a row for heap/B+tree storage.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * row.len());
    out.extend_from_slice(&(row.len() as u16).to_be_bytes());
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Value::Double(d) => {
                out.push(TAG_DOUBLE);
                out.extend_from_slice(&d.to_bits().to_be_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(TAG_DATE);
                out.extend_from_slice(&d.day_number().to_be_bytes());
            }
            Value::Blob(b) => {
                out.push(TAG_BLOB);
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Deserialize a row produced by [`encode_row`].
pub fn decode_row(data: &[u8]) -> Result<Vec<Value>> {
    let mut row = Vec::new();
    decode_row_into(data, &mut row)?;
    Ok(row)
}

/// Like [`decode_row`], but decodes into a caller-supplied buffer
/// (cleared first) so bulk decoders — e.g. block decompression — can
/// recycle row allocations instead of growing a fresh `Vec` per row.
pub fn decode_row_into(data: &[u8], row: &mut Vec<Value>) -> Result<()> {
    let corrupt = || StoreError::corrupt(crate::CorruptObject::Row, "truncated row");
    if data.len() < 2 {
        return Err(corrupt());
    }
    let n = u16::from_be_bytes([data[0], data[1]]) as usize;
    row.clear();
    row.reserve(n);
    let mut pos = 2usize;
    let take = |pos: &mut usize, k: usize| -> Result<&[u8]> {
        let s = data.get(*pos..*pos + k).ok_or_else(corrupt)?;
        *pos += k;
        Ok(s)
    };
    for _ in 0..n {
        let tag = *data.get(pos).ok_or_else(corrupt)?;
        pos += 1;
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                let b = take(&mut pos, 8)?;
                Value::Int(i64::from_be_bytes(b.try_into().unwrap()))
            }
            TAG_DOUBLE => {
                let b = take(&mut pos, 8)?;
                Value::Double(f64::from_bits(u64::from_be_bytes(b.try_into().unwrap())))
            }
            TAG_STR => {
                let lb = take(&mut pos, 4)?;
                let len = u32::from_be_bytes(lb.try_into().unwrap()) as usize;
                let sb = take(&mut pos, len)?;
                Value::Str(
                    std::str::from_utf8(sb)
                        .map_err(|_| {
                            StoreError::corrupt(crate::CorruptObject::Row, "invalid utf-8 in row")
                        })?
                        .to_string(),
                )
            }
            TAG_DATE => {
                let b = take(&mut pos, 4)?;
                Value::Date(Date::from_day_number(i32::from_be_bytes(
                    b.try_into().unwrap(),
                )))
            }
            TAG_BLOB => {
                let lb = take(&mut pos, 4)?;
                let len = u32::from_be_bytes(lb.try_into().unwrap()) as usize;
                Value::Blob(take(&mut pos, len)?.to_vec())
            }
            t => {
                return Err(StoreError::corrupt(
                    crate::CorruptObject::Row,
                    format!("unknown value tag {t}"),
                ))
            }
        };
        row.push(v);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Key encoding (order-preserving)
// ---------------------------------------------------------------------------

/// Append the order-preserving encoding of one value to `out`.
///
/// Properties: for values of the same type, `memcmp` of encodings matches
/// [`Value::total_cmp`]; across types, the type tag dominates; NULL sorts
/// before everything. Strings are escaped (`0x00 → 0x00 0xFF`) and
/// terminated with `0x00 0x00` so that no string encoding is a strict
/// prefix of another and composite keys compare field-by-field.
pub fn encode_key_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0x00),
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Double(d) => {
            // Doubles get their own tag: ArchIS never mixes Int and Double
            // in one indexed column, so cross-type key order is irrelevant.
            out.push(0x02);
            let bits = d.to_bits();
            let ordered = if d.is_sign_negative() {
                !bits
            } else {
                bits ^ (1 << 63)
            };
            out.extend_from_slice(&ordered.to_be_bytes());
        }
        Value::Str(s) => {
            out.push(0x03);
            for &b in s.as_bytes() {
                if b == 0 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
        Value::Date(d) => {
            out.push(0x04);
            out.extend_from_slice(&((d.day_number() as u32) ^ (1 << 31)).to_be_bytes());
        }
        Value::Blob(b) => {
            out.push(0x05);
            for &x in b {
                if x == 0 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(x);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

/// Order-preserving encoding of a composite key.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 12);
    for v in values {
        encode_key_value(v, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    #[test]
    fn row_roundtrip_all_types() {
        let row = vec![
            Value::Int(-42),
            Value::Str("Sr Engineer".into()),
            Value::Date(d("1995-10-01")),
            Value::Null,
            Value::Double(1.5),
            Value::Blob(vec![0, 1, 2, 255]),
        ];
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }

    #[test]
    fn empty_row_roundtrip() {
        assert_eq!(decode_row(&encode_row(&[])).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_row(&[]).is_err());
        assert!(decode_row(&[0, 3, 1, 2]).is_err(), "truncated int");
        assert!(decode_row(&[0, 1, 99]).is_err(), "unknown tag");
    }

    #[test]
    fn key_order_ints() {
        let vals = [-100i64, -1, 0, 1, 5, 1_000_000];
        for w in vals.windows(2) {
            let a = encode_key(&[Value::Int(w[0])]);
            let b = encode_key(&[Value::Int(w[1])]);
            assert!(a < b, "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn key_order_dates() {
        let a = encode_key(&[Value::Date(d("1994-05-06"))]);
        let b = encode_key(&[Value::Date(d("1995-05-06"))]);
        assert!(a < b);
    }

    #[test]
    fn key_order_strings_with_prefixes() {
        let a = encode_key(&[Value::Str("a".into())]);
        let ab = encode_key(&[Value::Str("ab".into())]);
        let b = encode_key(&[Value::Str("b".into())]);
        assert!(a < ab && ab < b);
        // NUL-escape keeps ordering and injectivity.
        let nul = encode_key(&[Value::Str("a\0b".into())]);
        assert!(a < nul && nul < ab);
    }

    #[test]
    fn key_order_composite_field_by_field() {
        let k1 = encode_key(&[Value::Str("a".into()), Value::Int(2)]);
        let k2 = encode_key(&[Value::Str("a".into()), Value::Int(10)]);
        let k3 = encode_key(&[Value::Str("ab".into()), Value::Int(0)]);
        assert!(k1 < k2 && k2 < k3);
    }

    #[test]
    fn key_null_sorts_first() {
        let n = encode_key(&[Value::Null]);
        let i = encode_key(&[Value::Int(i64::MIN)]);
        assert!(n < i);
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Str("1".into())), None);
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Str("abc".into()).sql_cmp(&Value::Str("abd".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn schema_lookup_and_check() {
        let s = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
            Field::new("tstart", DataType::Date),
        ]);
        assert_eq!(s.index_of("name"), Some(1));
        assert!(s.require("missing").is_err());
        assert!(s
            .check_row(&[
                Value::Int(1),
                Value::Str("Bob".into()),
                Value::Date(d("1995-01-01"))
            ])
            .is_ok());
        assert!(s.check_row(&[Value::Int(1)]).is_err(), "arity");
        assert!(
            s.check_row(&[
                Value::Str("x".into()),
                Value::Str("Bob".into()),
                Value::Null
            ])
            .is_err(),
            "type"
        );
        assert!(
            s.check_row(&[Value::Null, Value::Null, Value::Null])
                .is_ok(),
            "NULL fits any column"
        );
    }
}
