//! Typed tables with automatic secondary-index maintenance.
//!
//! Two layouts mirror the paper's two ArchIS backends:
//!
//! * [`crate::catalog::StorageKind::Heap`] — rows live in a chained heap
//!   file; secondary B+tree indexes map encoded key → record id. This is
//!   the DB2-style layout.
//! * [`crate::catalog::StorageKind::Clustered`] — rows live *inside* a
//!   B+tree keyed by the cluster columns (plus a uniquifier), like a
//!   BerkeleyDB primary database; secondary indexes map encoded key →
//!   cluster key. The paper notes this layout's extra storage overhead
//!   (Figure 11: ArchIS-ATLaS ratio 1.02 vs ArchIS-DB2 0.75).

use crate::btree::{BTree, RangeIter};
use crate::buffer::BufferPool;
use crate::catalog::StorageKind;
use crate::heap::{HeapCursor, HeapFile, HeapReader, RecordId};
use crate::page::PageId;
use crate::value::{decode_row, encode_key, encode_row, Schema, Value};
use crate::{Result, StoreError};
use std::collections::VecDeque;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Definition of a secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Indexed column names, in key order.
    pub columns: Vec<String>,
}

struct Index {
    def: IndexDef,
    cols: Vec<usize>,
    tree: BTree,
}

/// The persistent roots of a table: everything needed to reattach to it
/// in a page file (see [`crate::catalog::Database::checkpoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRoots {
    /// Heap first page, or clustered-B+tree root.
    pub base: crate::page::PageId,
    /// Cluster-key uniquifier counter.
    pub seq: u64,
    /// Live row count.
    pub rows: u64,
    /// Secondary indexes with their B+tree roots.
    pub indexes: Vec<(IndexDef, crate::page::PageId)>,
}

/// Findings from [`Table::verify`]. Base-storage damage is report-only
/// (rows are the source of truth); index and counter damage is repairable
/// from base storage ([`Table::rebuild_index`] / [`Table::recount_rows`]).
#[derive(Debug, Clone, Default)]
pub struct TableCheck {
    /// Problems reading base storage (heap or clustered primary).
    pub base_errors: Vec<String>,
    /// `(index name, problem)` for each corrupt or diverged index.
    pub bad_indexes: Vec<(String, String)>,
    /// `(cached, actual)` when the cached row counter diverges.
    pub row_count: Option<(u64, u64)>,
}

impl TableCheck {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.base_errors.is_empty() && self.bad_indexes.is_empty() && self.row_count.is_none()
    }

    /// Findings exist but all are repairable from base storage.
    pub fn is_repairable(&self) -> bool {
        self.base_errors.is_empty()
    }
}

/// A typed table.
pub struct Table {
    name: String,
    schema: Schema,
    kind: StorageKind,
    pool: Arc<BufferPool>,
    heap: Option<HeapFile>,
    clustered: Option<BTree>,
    cluster_cols: Vec<usize>,
    indexes: parking_lot::RwLock<Vec<Index>>,
    /// Uniquifier appended to cluster keys so duplicate cluster-column
    /// values remain distinct entries.
    seq: AtomicU64,
    rows: AtomicU64,
}

impl Table {
    pub(crate) fn create(
        pool: Arc<BufferPool>,
        name: &str,
        schema: Schema,
        kind: StorageKind,
        cluster_columns: &[&str],
    ) -> Result<Self> {
        let cluster_cols = cluster_columns
            .iter()
            .map(|c| schema.require(c))
            .collect::<Result<Vec<_>>>()?;
        let (heap, clustered) = match kind {
            StorageKind::Heap => (Some(HeapFile::create(pool.clone())?), None),
            StorageKind::Clustered => {
                if cluster_cols.is_empty() {
                    return Err(StoreError::SchemaMismatch(format!(
                        "clustered table {name} needs cluster columns"
                    )));
                }
                (None, Some(BTree::create(pool.clone())?))
            }
        };
        Ok(Table {
            name: name.to_string(),
            schema,
            kind,
            pool,
            heap,
            clustered,
            cluster_cols,
            indexes: parking_lot::RwLock::new(Vec::new()),
            seq: AtomicU64::new(0),
            rows: AtomicU64::new(0),
        })
    }

    /// The heap file backing this table. `create`/`open` set exactly one
    /// backing store per [`StorageKind`], so a miss means the catalog
    /// handed out a table whose roots were corrupted — an error, not a
    /// panic, so readers can't take down a commit in flight.
    fn heap_store(&self) -> Result<&HeapFile> {
        self.heap.as_ref().ok_or_else(|| {
            StoreError::corrupt(
                crate::CorruptObject::Table,
                format!("{}: heap store missing", self.name),
            )
        })
    }

    /// The clustered B+tree backing this table (see [`Table::heap_store`]).
    fn tree_store(&self) -> Result<&BTree> {
        self.clustered.as_ref().ok_or_else(|| {
            StoreError::corrupt(
                crate::CorruptObject::Table,
                format!("{}: b+tree missing", self.name),
            )
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Storage layout.
    pub fn kind(&self) -> StorageKind {
        self.kind
    }

    /// Names of the cluster columns (empty for heap tables).
    pub fn cluster_columns(&self) -> Vec<String> {
        self.cluster_cols
            .iter()
            .map(|&i| self.schema.fields[i].name.clone())
            .collect()
    }

    /// Snapshot of the table's persistent roots (for the durable catalog).
    pub fn roots(&self) -> TableRoots {
        TableRoots {
            base: match self.kind {
                // lint:allow(construction invariant: create/open_existing set
                // the backing store matching `kind` before handing the table out)
                StorageKind::Heap => self.heap.as_ref().expect("heap store").first_page(),
                StorageKind::Clustered => self.clustered.as_ref().expect("b+tree").root_page(),
            },
            seq: self.seq.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            indexes: self
                .indexes
                .read()
                .iter()
                .map(|i| (i.def.clone(), i.tree.root_page()))
                .collect(),
        }
    }

    /// Reattach to a table persisted in a page file, given the roots
    /// recorded by [`Table::roots`] at the last checkpoint.
    pub(crate) fn open_existing(
        pool: Arc<BufferPool>,
        name: &str,
        schema: Schema,
        kind: StorageKind,
        cluster_columns: &[String],
        roots: &TableRoots,
    ) -> Result<Self> {
        let cluster_cols = cluster_columns
            .iter()
            .map(|c| schema.require(c))
            .collect::<Result<Vec<_>>>()?;
        let (heap, clustered) = match kind {
            StorageKind::Heap => (Some(HeapFile::open(pool.clone(), roots.base)?), None),
            StorageKind::Clustered => (None, Some(BTree::open(pool.clone(), roots.base))),
        };
        let indexes = roots
            .indexes
            .iter()
            .map(|(def, root)| {
                let cols = def
                    .columns
                    .iter()
                    .map(|c| schema.require(c))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Index {
                    def: def.clone(),
                    cols,
                    tree: BTree::open(pool.clone(), *root),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Table {
            name: name.to_string(),
            schema,
            kind,
            pool,
            heap,
            clustered,
            cluster_cols,
            indexes: parking_lot::RwLock::new(indexes),
            seq: AtomicU64::new(roots.seq),
            rows: AtomicU64::new(roots.rows),
        })
    }

    /// All index definitions.
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.indexes.read().iter().map(|i| i.def.clone()).collect()
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Create a secondary index over `columns` and build it from existing
    /// rows.
    pub fn create_index(&self, name: &str, columns: &[&str]) -> Result<()> {
        {
            let indexes = self.indexes.read();
            if indexes.iter().any(|i| i.def.name == name) {
                return Err(StoreError::AlreadyExists(format!("index {name}")));
            }
        }
        let cols = columns
            .iter()
            .map(|c| self.schema.require(c))
            .collect::<Result<Vec<_>>>()?;
        // Build from existing data, bottom-up: sort the (key, handle)
        // entries into tree order and bulk-load instead of splitting our
        // way through random inserts.
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = self
            .scan_with_handles()?
            .into_iter()
            .map(|(handle, row)| (encode_key(&select(&row, &cols)), handle))
            .collect();
        entries.sort();
        let tree = BTree::bulk_load(self.pool.clone(), entries)?;
        self.indexes.write().push(Index {
            def: IndexDef {
                name: name.into(),
                columns: columns.iter().map(|s| s.to_string()).collect(),
            },
            cols,
            tree,
        });
        Ok(())
    }

    /// Names of the table's indexes.
    pub fn index_names(&self) -> Vec<String> {
        self.indexes
            .read()
            .iter()
            .map(|i| i.def.name.clone())
            .collect()
    }

    /// The index definition for `name`, if present.
    pub fn index_def(&self, name: &str) -> Option<IndexDef> {
        self.indexes
            .read()
            .iter()
            .find(|i| i.def.name == name)
            .map(|i| i.def.clone())
    }

    /// Find an index whose leading column is `column`.
    pub fn index_on(&self, column: &str) -> Option<String> {
        self.indexes
            .read()
            .iter()
            .find(|i| i.def.columns.first().map(String::as_str) == Some(column))
            .map(|i| i.def.name.clone())
    }

    /// The opaque row handle used as index payload: a record id for heap
    /// tables, the full cluster key for clustered tables.
    fn handle_of_cluster_key(key: &[u8]) -> Vec<u8> {
        key.to_vec()
    }

    /// Insert a row.
    pub fn insert(&self, row: Vec<Value>) -> Result<()> {
        self.schema.check_row(&row)?;
        let bytes = encode_row(&row);
        let handle: Vec<u8> = match self.kind {
            StorageKind::Heap => {
                let rid = self.heap_store()?.insert(&bytes)?;
                rid.to_bytes().to_vec()
            }
            StorageKind::Clustered => {
                let mut key = encode_key(&select(&row, &self.cluster_cols));
                let uniq = self.seq.fetch_add(1, Ordering::Relaxed);
                key.extend_from_slice(&uniq.to_be_bytes());
                self.tree_store()?.insert(&key, &bytes)?;
                Self::handle_of_cluster_key(&key)
            }
        };
        for idx in self.indexes.read().iter() {
            let key = encode_key(&select(&row, &idx.cols));
            idx.tree.insert(&key, &handle)?;
        }
        self.rows.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Insert many rows.
    pub fn insert_all(&self, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Insert many rows as one batch. Clustered rows are sorted into
    /// cluster-key order first (consecutive inserts then land on the same
    /// leaf, so page pins and WAL page images amortize across the batch;
    /// an empty table is bulk-loaded bottom-up instead), and every
    /// secondary index is maintained with one sorted pass over the batch.
    /// Equivalent to [`Table::insert_all`] row for row.
    pub fn insert_batch(&self, rows: Vec<Vec<Value>>) -> Result<usize> {
        for r in &rows {
            self.schema.check_row(r)?;
        }
        let n = rows.len();
        if n == 0 {
            return Ok(0);
        }
        let was_empty = self.rows.load(Ordering::Relaxed) == 0;
        // (handle, row) pairs after base-storage insertion.
        let mut handles: Vec<(Vec<u8>, Vec<Value>)> = Vec::with_capacity(n);
        match self.kind {
            StorageKind::Heap => {
                let heap = self.heap_store()?;
                for row in rows {
                    let rid = heap.insert(&encode_row(&row))?;
                    handles.push((rid.to_bytes().to_vec(), row));
                }
            }
            StorageKind::Clustered => {
                let tree = self.tree_store()?;
                let mut keyed: Vec<(Vec<u8>, Vec<u8>, Vec<Value>)> = rows
                    .into_iter()
                    .map(|row| {
                        let mut key = encode_key(&select(&row, &self.cluster_cols));
                        let uniq = self.seq.fetch_add(1, Ordering::Relaxed);
                        key.extend_from_slice(&uniq.to_be_bytes());
                        let bytes = encode_row(&row);
                        (key, bytes, row)
                    })
                    .collect();
                // Uniquifiers make every key distinct, so key order is
                // already full (key, value) tree order.
                keyed.sort_by(|a, b| a.0.cmp(&b.0));
                if was_empty {
                    tree.bulk_fill(keyed.iter().map(|(k, b, _)| (k.clone(), b.clone())))?;
                } else {
                    for (k, b, _) in &keyed {
                        tree.insert(k, b)?;
                    }
                }
                handles.extend(
                    keyed
                        .into_iter()
                        .map(|(k, _, row)| (Self::handle_of_cluster_key(&k), row)),
                );
            }
        }
        self.index_batch(&handles, was_empty)?;
        self.rows.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Maintain every secondary index for a batch of freshly inserted
    /// rows: one sorted insertion pass per index; indexes of a previously
    /// empty table are bulk-loaded bottom-up.
    fn index_batch(&self, handles: &[(Vec<u8>, Vec<Value>)], was_empty: bool) -> Result<()> {
        for idx in self.indexes.read().iter() {
            let mut entries: Vec<(Vec<u8>, Vec<u8>)> = handles
                .iter()
                .map(|(h, row)| (encode_key(&select(row, &idx.cols)), h.clone()))
                .collect();
            entries.sort();
            if was_empty {
                idx.tree.bulk_fill(entries)?;
            } else {
                for (k, v) in &entries {
                    idx.tree.insert(k, v)?;
                }
            }
        }
        Ok(())
    }

    /// All rows with their opaque handles (used for index builds and
    /// update/delete plumbing).
    fn scan_with_handles(&self) -> Result<Vec<(Vec<u8>, Vec<Value>)>> {
        match self.kind {
            StorageKind::Heap => {
                let mut out = Vec::new();
                for (rid, bytes) in self.heap_store()?.scan()? {
                    out.push((rid.to_bytes().to_vec(), decode_row(&bytes)?));
                }
                Ok(out)
            }
            StorageKind::Clustered => {
                let mut out = Vec::new();
                let mut iter = self
                    .tree_store()?
                    .range(Bound::Unbounded, Bound::Unbounded)?;
                for (key, bytes) in iter.by_ref() {
                    out.push((Self::handle_of_cluster_key(&key), decode_row(&bytes)?));
                }
                if let Some(e) = iter.take_error() {
                    return Err(e);
                }
                Ok(out)
            }
        }
    }

    /// Full scan. Heap tables return insertion order; clustered tables
    /// return cluster-key order (the temporally grouped order ArchIS relies
    /// on, paper §6).
    pub fn scan(&self) -> Result<Vec<Vec<Value>>> {
        self.stream()?.collect()
    }

    /// Streaming full scan: rows arrive page-at-a-time with at most one
    /// frame pinned, in the same order as [`Table::scan`]. The iterator
    /// owns its storage handles, so it does not borrow the table.
    pub fn stream(&self) -> Result<RowStream> {
        let inner = match self.kind {
            StorageKind::Heap => RowStreamInner::Heap(self.heap_store()?.cursor()),
            StorageKind::Clustered => RowStreamInner::Clustered(
                self.tree_store()?
                    .range(Bound::Unbounded, Bound::Unbounded)?,
            ),
        };
        Ok(RowStream { inner })
    }

    /// Fetch the row behind an index payload handle.
    fn fetch(&self, handle: &[u8]) -> Result<Option<Vec<Value>>> {
        match self.kind {
            StorageKind::Heap => {
                let rid = RecordId::from_bytes(handle)?;
                match self.heap_store()?.get(rid)? {
                    Some(bytes) => Ok(Some(decode_row(&bytes)?)),
                    None => Ok(None),
                }
            }
            StorageKind::Clustered => {
                let vals = self.tree_store()?.get(handle)?;
                match vals.first() {
                    Some(bytes) => Ok(Some(decode_row(bytes)?)),
                    None => Ok(None),
                }
            }
        }
    }

    /// Rows whose index key equals `key_values` exactly, via index `index`.
    pub fn index_lookup(&self, index: &str, key_values: &[Value]) -> Result<Vec<Vec<Value>>> {
        let key = encode_key(key_values);
        self.index_range_raw(index, Bound::Included(&key[..]), Bound::Included(&key[..]))
    }

    /// Rows whose index key (prefix) lies within the value bounds.
    /// `lo`/`hi` are encoded with [`encode_key`]; a prefix of the index's
    /// columns is allowed — the scan uses the encoded prefix range.
    pub fn index_range(
        &self,
        index: &str,
        lo: Bound<&[Value]>,
        hi: Bound<&[Value]>,
    ) -> Result<Vec<Vec<Value>>> {
        let lo_k = map_bound_enc(lo);
        let hi_k = match hi {
            // An inclusive upper bound on a *prefix* must cover all longer
            // keys sharing the prefix: extend to the prefix's upper bound.
            Bound::Included(vals) => {
                let enc = encode_key(vals);
                match crate::btree::prefix_upper(&enc) {
                    Some(h) => Bound::Excluded(h),
                    None => Bound::Unbounded,
                }
            }
            Bound::Excluded(vals) => Bound::Excluded(encode_key(vals)),
            Bound::Unbounded => Bound::Unbounded,
        };
        self.index_range_raw(index, as_bound_slice(&lo_k), as_bound_slice(&hi_k))
    }

    fn index_range_raw(
        &self,
        index: &str,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> Result<Vec<Vec<Value>>> {
        let stream = match self.index_stream_raw(index, lo, hi) {
            Ok(s) => s,
            Err(e) if e.is_corrupt() => return self.index_range_fallback(index, lo, hi),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for r in stream {
            match r {
                Ok(row) => out.push(row),
                // A corrupt index page must not fail a read-only query the
                // base storage can still answer: degrade to a table scan.
                Err(e) if e.is_corrupt() => return self.index_range_fallback(index, lo, hi),
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Recovery path for a corrupt secondary index: answer the range from
    /// base storage instead. Each row's key for `index` is encoded and
    /// filtered against the same effective bounds the index scan would
    /// use, then sorted so the result comes back in index-key order.
    /// Slower (a full scan), but correct — the index is derived data.
    fn index_range_fallback(
        &self,
        index: &str,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> Result<Vec<Vec<Value>>> {
        let cols = {
            let indexes = self.indexes.read();
            indexes
                .iter()
                .find(|i| i.def.name == index)
                .map(|i| i.cols.clone())
                .ok_or_else(|| StoreError::NotFound(format!("index {index} on {}", self.name)))?
        };
        // Same inclusive-prefix widening as the index scan path.
        let hi_owned: Bound<Vec<u8>>;
        let hi = match hi {
            Bound::Included(k) => match crate::btree::prefix_upper(k) {
                Some(h) => {
                    hi_owned = Bound::Excluded(h);
                    as_bound_slice(&hi_owned)
                }
                None => Bound::Unbounded,
            },
            other => other,
        };
        let mut keyed: Vec<(Vec<u8>, Vec<Value>)> = Vec::new();
        for r in self.stream()? {
            let row = r?;
            let key = encode_key(&select(&row, &cols));
            let above_lo = match lo {
                Bound::Included(k) => key.as_slice() >= k,
                Bound::Excluded(k) => key.as_slice() > k,
                Bound::Unbounded => true,
            };
            let below_hi = match hi {
                Bound::Included(k) => key.as_slice() <= k,
                Bound::Excluded(k) => key.as_slice() < k,
                Bound::Unbounded => true,
            };
            if above_lo && below_hi {
                keyed.push((key, row));
            }
        }
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(keyed.into_iter().map(|(_, r)| r).collect())
    }

    /// Streaming variant of [`Table::index_range`]: index entries are
    /// walked leaf-by-leaf and rows fetched on demand, so early
    /// termination (LIMIT, point probes) does not pay for the whole range.
    pub fn index_range_stream(
        &self,
        index: &str,
        lo: Bound<&[Value]>,
        hi: Bound<&[Value]>,
    ) -> Result<IndexRowStream> {
        let lo_k = map_bound_enc(lo);
        let hi_k = match hi {
            Bound::Included(vals) => {
                let enc = encode_key(vals);
                match crate::btree::prefix_upper(&enc) {
                    Some(h) => Bound::Excluded(h),
                    None => Bound::Unbounded,
                }
            }
            Bound::Excluded(vals) => Bound::Excluded(encode_key(vals)),
            Bound::Unbounded => Bound::Unbounded,
        };
        self.index_stream_raw(index, as_bound_slice(&lo_k), as_bound_slice(&hi_k))
    }

    fn index_stream_raw(
        &self,
        index: &str,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> Result<IndexRowStream> {
        let indexes = self.indexes.read();
        let idx = indexes
            .iter()
            .find(|i| i.def.name == index)
            .ok_or_else(|| StoreError::NotFound(format!("index {index} on {}", self.name)))?;
        // For an inclusive point lookup the key encodes a prefix; extend the
        // upper bound so longer composite keys with this prefix match too.
        let hi_owned: Bound<Vec<u8>>;
        let hi = match hi {
            Bound::Included(k) => match crate::btree::prefix_upper(k) {
                Some(h) => {
                    hi_owned = Bound::Excluded(h);
                    as_bound_slice(&hi_owned)
                }
                None => Bound::Unbounded,
            },
            other => other,
        };
        // Readahead: the index leaf chain this walk will visit is known
        // from the segment directory/B+tree structure — hint it before the
        // first leaf fault. (No-op when prefetch is off.)
        idx.tree.prefetch_range(lo, hi);
        let entries = idx.tree.range(lo, hi)?;
        let fetch = match self.kind {
            StorageKind::Heap => RowFetcher::Heap(self.heap_store()?.reader()),
            StorageKind::Clustered => RowFetcher::Clustered(self.tree_store()?.clone_handle()),
        };
        Ok(IndexRowStream {
            entries,
            fetch,
            pending: VecDeque::new(),
        })
    }

    /// Range scan over the *primary* clustered B+tree by a cluster-key
    /// (prefix) range — the fast path for `segno = n` segment restrictions
    /// on segment-clustered history tables. Errors on heap tables.
    pub fn cluster_range(
        &self,
        lo: Bound<&[Value]>,
        hi: Bound<&[Value]>,
    ) -> Result<Vec<Vec<Value>>> {
        self.cluster_range_stream(lo, hi)?.collect()
    }

    /// Streaming variant of [`Table::cluster_range`]: walks the primary
    /// tree's leaf chain lazily in cluster-key order.
    pub fn cluster_range_stream(
        &self,
        lo: Bound<&[Value]>,
        hi: Bound<&[Value]>,
    ) -> Result<RowStream> {
        let tree = self
            .clustered
            .as_ref()
            .ok_or_else(|| StoreError::SchemaMismatch(format!("{} is not clustered", self.name)))?;
        let lo_k = map_bound_enc(lo);
        // Inclusive upper bounds on prefixes must cover longer keys.
        let hi_k = match hi {
            Bound::Included(v) => match crate::btree::prefix_upper(&encode_key(v)) {
                Some(h) => Bound::Excluded(h),
                None => Bound::Unbounded,
            },
            Bound::Excluded(v) => Bound::Excluded(encode_key(v)),
            Bound::Unbounded => Bound::Unbounded,
        };
        // Hint the exact leaf run this clustered walk will visit so the
        // readahead workers stay ahead of the cursor. (No-op when off.)
        tree.prefetch_range(as_bound_slice(&lo_k), as_bound_slice(&hi_k));
        let iter = tree.range(as_bound_slice(&lo_k), as_bound_slice(&hi_k))?;
        Ok(RowStream {
            inner: RowStreamInner::Clustered(iter),
        })
    }

    /// `(handle, row)` pairs whose index key equals `key_values` (prefix
    /// allowed), via index `index`.
    fn index_handles(
        &self,
        index: &str,
        key_values: &[Value],
    ) -> Result<Vec<(Vec<u8>, Vec<Value>)>> {
        let indexes = self.indexes.read();
        let idx = indexes
            .iter()
            .find(|i| i.def.name == index)
            .ok_or_else(|| StoreError::NotFound(format!("index {index} on {}", self.name)))?;
        let key = encode_key(key_values);
        let mut out = Vec::new();
        let mut entries = idx.tree.scan_prefix(&key)?;
        for (_, handle) in entries.by_ref() {
            if let Some(row) = self.fetch(&handle)? {
                out.push((handle, row));
            }
        }
        // Mutating callers (update/delete via index) must see corruption,
        // not act on a silently truncated handle set.
        if let Some(e) = entries.take_error() {
            return Err(e);
        }
        Ok(out)
    }

    /// Update rows found through an index: rows whose `index` key equals
    /// `key_values` (prefix allowed) and that match `pred` are rewritten
    /// with `f`. Avoids the full-table scan of [`Table::update_where`] —
    /// the path ArchIS uses for its per-key history maintenance.
    pub fn update_via_index(
        &self,
        index: &str,
        key_values: &[Value],
        pred: impl Fn(&[Value]) -> bool,
        f: impl Fn(&mut Vec<Value>),
    ) -> Result<usize> {
        let victims: Vec<(Vec<u8>, Vec<Value>)> = self
            .index_handles(index, key_values)?
            .into_iter()
            .filter(|(_, row)| pred(row))
            .collect();
        let n = victims.len();
        for (handle, row) in victims {
            self.remove_physical(&handle, &row)?;
            let mut new_row = row;
            f(&mut new_row);
            self.insert(new_row)?;
        }
        Ok(n)
    }

    /// Delete rows found through an index (see [`Table::update_via_index`]).
    pub fn delete_via_index(
        &self,
        index: &str,
        key_values: &[Value],
        pred: impl Fn(&[Value]) -> bool,
    ) -> Result<usize> {
        let victims: Vec<(Vec<u8>, Vec<Value>)> = self
            .index_handles(index, key_values)?
            .into_iter()
            .filter(|(_, row)| pred(row))
            .collect();
        let n = victims.len();
        for (handle, row) in victims {
            self.remove_physical(&handle, &row)?;
        }
        Ok(n)
    }

    /// Physically remove one row (base storage + all indexes + counter).
    fn remove_physical(&self, handle: &[u8], row: &[Value]) -> Result<()> {
        match self.kind {
            StorageKind::Heap => {
                self.heap_store()?.delete(RecordId::from_bytes(handle)?)?;
            }
            StorageKind::Clustered => {
                self.tree_store()?.delete(handle, &encode_row(row))?;
            }
        }
        for idx in self.indexes.read().iter() {
            let key = encode_key(&select(row, &idx.cols));
            // Every live row has exactly one entry per index; a missed
            // delete means the index has already diverged from the base
            // storage, and index_lookup would start returning handles of
            // deleted rows. Fail loudly instead of corrupting silently.
            if !idx.tree.delete(&key, handle)? {
                return Err(StoreError::corrupt_at(
                    idx.tree.root_page(),
                    crate::CorruptObject::Index,
                    format!(
                        "table {}: index {} has no entry for deleted row",
                        self.name, idx.def.name
                    ),
                ));
            }
        }
        self.rows.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    /// Delete all rows matching `pred`; returns how many were removed.
    pub fn delete_where(&self, pred: impl Fn(&[Value]) -> bool) -> Result<usize> {
        let victims: Vec<(Vec<u8>, Vec<Value>)> = self
            .scan_with_handles()?
            .into_iter()
            .filter(|(_, row)| pred(row))
            .collect();
        for (handle, row) in &victims {
            self.remove_physical(handle, row)?;
        }
        Ok(victims.len())
    }

    /// Update all rows matching `pred` by applying `f`; returns how many
    /// changed. Implemented as delete + reinsert so indexes stay correct.
    pub fn update_where(
        &self,
        pred: impl Fn(&[Value]) -> bool,
        f: impl Fn(&mut Vec<Value>),
    ) -> Result<usize> {
        let victims: Vec<(Vec<u8>, Vec<Value>)> = self
            .scan_with_handles()?
            .into_iter()
            .filter(|(_, row)| pred(row))
            .collect();
        let n = victims.len();
        for (handle, row) in victims {
            self.remove_physical(&handle, &row)?;
            let mut new_row = row;
            f(&mut new_row);
            self.insert(new_row)?;
        }
        Ok(n)
    }

    /// Structural verification of the whole table: base storage (full
    /// scan), every secondary index (tree structure plus a full leaf-chain
    /// walk), and the cached row counter. Problems are *reported*, not
    /// returned as errors, so one finding never hides the rest — the
    /// contract fsck needs to plan repairs.
    pub fn verify(&self) -> TableCheck {
        let mut check = TableCheck {
            base_errors: Vec::new(),
            bad_indexes: Vec::new(),
            row_count: None,
        };
        // Base storage: can every row still be read and decoded?
        let mut actual = 0u64;
        let mut base_ok = true;
        match self.stream() {
            Ok(stream) => {
                for r in stream {
                    match r {
                        Ok(_) => actual += 1,
                        Err(e) => {
                            check.base_errors.push(e.to_string());
                            base_ok = false;
                            break;
                        }
                    }
                }
            }
            Err(e) => {
                check.base_errors.push(e.to_string());
                base_ok = false;
            }
        }
        if base_ok {
            let cached = self.rows.load(Ordering::Relaxed);
            if cached != actual {
                check.row_count = Some((cached, actual));
            }
        }
        // Secondary indexes: structure check plus a full walk (the walk
        // reads every leaf, so a checksum-failed page surfaces here).
        for idx in self.indexes.read().iter() {
            let walk = (|| -> Result<u64> {
                idx.tree.verify_structure()?;
                let mut live = 0u64;
                let mut it = idx.tree.range(Bound::Unbounded, Bound::Unbounded)?;
                for (_, handle) in it.by_ref() {
                    if self.fetch(&handle)?.is_some() {
                        live += 1;
                    }
                }
                if let Some(e) = it.take_error() {
                    return Err(e);
                }
                Ok(live)
            })();
            match walk {
                // With clean base storage, every live row must be reachable
                // through each index exactly once.
                Ok(live) => {
                    if base_ok && live != actual {
                        check.bad_indexes.push((
                            idx.def.name.clone(),
                            format!("{live} live entries for {actual} rows"),
                        ));
                    }
                }
                Err(e) => check
                    .bad_indexes
                    .push((idx.def.name.clone(), e.to_string())),
            }
        }
        check
    }

    /// Rebuild one secondary index from base storage, replacing its tree
    /// entirely. The repair path for a corrupt index: the old tree is
    /// never read (its pages may be damaged), and the replacement is
    /// bulk-loaded from the rows themselves — an index is derived data,
    /// so this loses nothing. The new root takes effect at the next
    /// catalog checkpoint.
    pub fn rebuild_index(&self, name: &str) -> Result<()> {
        let cols = {
            let indexes = self.indexes.read();
            indexes
                .iter()
                .find(|i| i.def.name == name)
                .map(|i| i.cols.clone())
                .ok_or_else(|| StoreError::NotFound(format!("index {name} on {}", self.name)))?
        };
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = self
            .scan_with_handles()?
            .into_iter()
            .map(|(handle, row)| (encode_key(&select(&row, &cols)), handle))
            .collect();
        entries.sort();
        let tree = BTree::bulk_load(self.pool.clone(), entries)?;
        let mut indexes = self.indexes.write();
        if let Some(idx) = indexes.iter_mut().find(|i| i.def.name == name) {
            idx.tree = tree;
        }
        Ok(())
    }

    /// Recount live rows from base storage and overwrite the cached
    /// counter; returns `(cached, actual)`. The repair path for a
    /// diverged row counter.
    pub fn recount_rows(&self) -> Result<(u64, u64)> {
        let mut actual = 0u64;
        for r in self.stream()? {
            r?;
            actual += 1;
        }
        let cached = self.rows.swap(actual, Ordering::Relaxed);
        Ok((cached, actual))
    }

    /// Pages used by base storage plus all indexes (storage experiments).
    pub fn page_count(&self) -> Result<u64> {
        let base = self.base_page_count()?;
        let mut total = base;
        for idx in self.indexes.read().iter() {
            total += idx.tree.page_count()?;
        }
        Ok(total)
    }

    /// Pages used by base storage alone (heap chain or clustered primary
    /// tree) — what a sequential scan reads. The cost model's input.
    pub fn base_page_count(&self) -> Result<u64> {
        match self.kind {
            StorageKind::Heap => self.heap_store()?.page_count(),
            StorageKind::Clustered => self.tree_store()?.page_count(),
        }
    }

    /// Whether the shared buffer pool's prefetcher is active (sequential
    /// runs overlap their I/O; see the planner's cost discount).
    pub fn prefetch_enabled(&self) -> bool {
        self.pool.prefetch_enabled()
    }
}

/// Streaming iterator over a table's rows (see [`Table::stream`] and
/// [`Table::cluster_range_stream`]). Owns its storage handles; at most one
/// buffer-pool frame is pinned at any moment.
pub struct RowStream {
    inner: RowStreamInner,
}

enum RowStreamInner {
    Heap(HeapCursor),
    Clustered(RangeIter),
}

impl Iterator for RowStream {
    type Item = Result<Vec<Value>>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            RowStreamInner::Heap(c) => c
                .next()
                .map(|r| r.and_then(|(_, bytes)| decode_row(&bytes))),
            RowStreamInner::Clustered(it) => match it.next() {
                Some((_, bytes)) => Some(decode_row(&bytes)),
                // A corrupt leaf ends the walk early; surface it rather
                // than passing off a truncated scan as complete.
                None => it.take_error().map(Err),
            },
        }
    }
}

/// Streaming iterator over index-selected rows (see
/// [`Table::index_range_stream`]): walks index entries lazily and fetches
/// each row on demand through an owning fetcher.
pub struct IndexRowStream {
    entries: RangeIter,
    fetch: RowFetcher,
    /// Handle lookahead. With prefetch on and a heap-backed table, index
    /// entries are pulled [`INDEX_LOOKAHEAD`] at a time so the distinct
    /// heap pages behind the upcoming handles can be hinted to the
    /// readahead workers before the row fetches arrive. With prefetch off
    /// this holds at most one handle — I/O order is identical to the
    /// unbuffered stream.
    pending: VecDeque<Vec<u8>>,
}

/// Index entries buffered ahead of the row-fetch cursor when prefetch is
/// on. 64 handles ≈ a leaf's worth: deep enough to batch heap pages,
/// shallow enough that LIMIT-style early exits waste little.
const INDEX_LOOKAHEAD: usize = 64;

enum RowFetcher {
    Heap(HeapReader),
    Clustered(BTree),
}

impl IndexRowStream {
    /// Refill the handle buffer; returns `false` when the index walk is
    /// exhausted and nothing is buffered.
    fn refill(&mut self) -> bool {
        let depth = match &self.fetch {
            RowFetcher::Heap(r) if r.prefetch_enabled() => INDEX_LOOKAHEAD,
            _ => 1,
        };
        while self.pending.len() < depth {
            match self.entries.next() {
                Some((_, handle)) => self.pending.push_back(handle),
                None => break,
            }
        }
        if self.pending.is_empty() {
            return false;
        }
        if depth > 1 {
            if let RowFetcher::Heap(reader) = &self.fetch {
                let mut pages: Vec<PageId> = self
                    .pending
                    .iter()
                    .filter_map(|h| RecordId::from_bytes(h).ok())
                    .map(|rid| rid.page)
                    .collect();
                pages.dedup(); // rids from one leaf mostly share pages
                reader.prefetch_pages(&pages);
            }
        }
        true
    }
}

impl Iterator for IndexRowStream {
    type Item = Result<Vec<Value>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let Some(handle) = self.pending.pop_front() else {
                if self.refill() {
                    continue;
                }
                // A corrupt index leaf parks an error instead of yielding;
                // surface it so callers can fall back or report.
                return self.entries.take_error().map(Err);
            };
            let fetched: Result<Option<Vec<Value>>> = match &self.fetch {
                RowFetcher::Heap(reader) => RecordId::from_bytes(&handle)
                    .and_then(|rid| reader.get(rid))
                    .and_then(|b| b.map(|bytes| decode_row(&bytes)).transpose()),
                RowFetcher::Clustered(tree) => tree
                    .get(&handle)
                    .and_then(|vals| vals.first().map(|bytes| decode_row(bytes)).transpose()),
            };
            match fetched {
                Ok(Some(row)) => return Some(Ok(row)),
                // Entry points at a deleted row (lazy index deletion).
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

fn select(row: &[Value], cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&c| row[c].clone()).collect()
}

fn map_bound_enc(b: Bound<&[Value]>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(v) => Bound::Included(encode_key(v)),
        Bound::Excluded(v) => Bound::Excluded(encode_key(v)),
        Bound::Unbounded => Bound::Unbounded,
    }
}

fn as_bound_slice(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
    match b {
        Bound::Included(v) => Bound::Included(v.as_slice()),
        Bound::Excluded(v) => Bound::Excluded(v.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;
    use crate::value::{DataType, Field};
    use temporal::Date;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemPager::new()), 512))
    }

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("salary", DataType::Int),
            Field::new("tstart", DataType::Date),
            Field::new("tend", DataType::Date),
        ])
    }

    fn row(id: i64, sal: i64, s: &str, e: &str) -> Vec<Value> {
        vec![
            Value::Int(id),
            Value::Int(sal),
            Value::Date(Date::parse(s).unwrap()),
            Value::Date(Date::parse(e).unwrap()),
        ]
    }

    fn table(kind: StorageKind) -> Table {
        Table::create(pool(), "employee_salary", emp_schema(), kind, &["id"]).unwrap()
    }

    fn both() -> [Table; 2] {
        [table(StorageKind::Heap), table(StorageKind::Clustered)]
    }

    #[test]
    fn insert_scan_roundtrip_both_layouts() {
        for t in both() {
            t.insert(row(2, 50_000, "1989-01-01", "1990-01-01"))
                .unwrap();
            t.insert(row(1, 60_000, "1995-01-01", "1995-05-31"))
                .unwrap();
            assert_eq!(t.row_count(), 2);
            let rows = t.scan().unwrap();
            assert_eq!(rows.len(), 2);
            if t.kind() == StorageKind::Clustered {
                assert_eq!(rows[0][0], Value::Int(1), "clustered scan is key-ordered");
            }
        }
    }

    #[test]
    fn schema_violations_rejected() {
        let t = table(StorageKind::Heap);
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![
                Value::Str("x".into()),
                Value::Int(1),
                Value::Null,
                Value::Null
            ])
            .is_err());
    }

    #[test]
    fn index_lookup_and_range() {
        for t in both() {
            t.create_index("by_id", &["id"]).unwrap();
            for id in 0..50 {
                t.insert(row(id, 1000 * id, "1990-01-01", "1991-01-01"))
                    .unwrap();
            }
            let hits = t.index_lookup("by_id", &[Value::Int(7)]).unwrap();
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0][1], Value::Int(7000));
            let lo = [Value::Int(10)];
            let hi = [Value::Int(19)];
            let range = t
                .index_range("by_id", Bound::Included(&lo[..]), Bound::Included(&hi[..]))
                .unwrap();
            assert_eq!(range.len(), 10);
            assert!(t.index_lookup("missing", &[Value::Int(1)]).is_err());
        }
    }

    #[test]
    fn index_built_on_existing_rows() {
        let t = table(StorageKind::Heap);
        for id in 0..20 {
            t.insert(row(id, id, "1990-01-01", "1991-01-01")).unwrap();
        }
        t.create_index("by_id", &["id"]).unwrap();
        assert_eq!(t.index_lookup("by_id", &[Value::Int(13)]).unwrap().len(), 1);
        assert!(
            t.create_index("by_id", &["id"]).is_err(),
            "duplicate index name"
        );
    }

    #[test]
    fn composite_index_prefix_range() {
        for t in both() {
            t.create_index("by_id_start", &["id", "tstart"]).unwrap();
            t.insert(row(1, 10, "1990-01-01", "1991-01-01")).unwrap();
            t.insert(row(1, 20, "1991-01-02", "1992-01-01")).unwrap();
            t.insert(row(2, 30, "1990-01-01", "1991-01-01")).unwrap();
            // Point lookup on the prefix (id only) finds both of id 1.
            let hits = t.index_lookup("by_id_start", &[Value::Int(1)]).unwrap();
            assert_eq!(hits.len(), 2);
        }
    }

    #[test]
    fn delete_where_maintains_indexes() {
        for t in both() {
            t.create_index("by_id", &["id"]).unwrap();
            for id in 0..10 {
                t.insert(row(id, id, "1990-01-01", "1991-01-01")).unwrap();
            }
            let n = t.delete_where(|r| r[0].as_int().unwrap() % 2 == 0).unwrap();
            assert_eq!(n, 5);
            assert_eq!(t.row_count(), 5);
            assert!(t
                .index_lookup("by_id", &[Value::Int(4)])
                .unwrap()
                .is_empty());
            assert_eq!(t.index_lookup("by_id", &[Value::Int(5)]).unwrap().len(), 1);
            assert_eq!(t.scan().unwrap().len(), 5);
        }
    }

    #[test]
    fn update_where_rewrites_row_and_indexes() {
        for t in both() {
            t.create_index("by_salary", &["salary"]).unwrap();
            t.insert(row(1, 60_000, "1995-01-01", "1995-05-31"))
                .unwrap();
            // The ArchIS archival update: close the current period.
            let n = t
                .update_where(|r| r[0] == Value::Int(1), |r| r[1] = Value::Int(70_000))
                .unwrap();
            assert_eq!(n, 1);
            assert!(t
                .index_lookup("by_salary", &[Value::Int(60_000)])
                .unwrap()
                .is_empty());
            assert_eq!(
                t.index_lookup("by_salary", &[Value::Int(70_000)])
                    .unwrap()
                    .len(),
                1
            );
        }
    }

    #[test]
    fn clustered_requires_cluster_columns() {
        assert!(Table::create(pool(), "t", emp_schema(), StorageKind::Clustered, &[]).is_err());
    }

    #[test]
    fn index_on_finds_by_leading_column() {
        let t = table(StorageKind::Heap);
        t.create_index("by_id_start", &["id", "tstart"]).unwrap();
        assert_eq!(t.index_on("id"), Some("by_id_start".into()));
        assert_eq!(t.index_on("salary"), None);
    }

    #[test]
    fn insert_batch_matches_insert_all() {
        for (batched, one_by_one) in [
            (table(StorageKind::Heap), table(StorageKind::Heap)),
            (table(StorageKind::Clustered), table(StorageKind::Clustered)),
        ] {
            for t in [&batched, &one_by_one] {
                t.create_index("by_salary", &["salary"]).unwrap();
            }
            // Unsorted input with duplicate cluster keys.
            let rows: Vec<Vec<Value>> = (0..500)
                .map(|i| row((i * 37) % 100, 1000 + i % 7, "1990-01-01", "1991-01-01"))
                .collect();
            // Two batches: the first bulk-loads an empty table, the second
            // takes the sorted-insert path into existing trees.
            let (a, b) = rows.split_at(300);
            batched.insert_batch(a.to_vec()).unwrap();
            batched.insert_batch(b.to_vec()).unwrap();
            one_by_one.insert_all(rows.clone()).unwrap();
            assert_eq!(batched.row_count(), one_by_one.row_count());
            let norm = |t: &Table| {
                let mut r = t.scan().unwrap();
                r.sort_by_key(|r| format!("{r:?}"));
                r
            };
            assert_eq!(norm(&batched), norm(&one_by_one));
            for sal in 1000..1007 {
                assert_eq!(
                    batched
                        .index_lookup("by_salary", &[Value::Int(sal)])
                        .unwrap()
                        .len(),
                    one_by_one
                        .index_lookup("by_salary", &[Value::Int(sal)])
                        .unwrap()
                        .len(),
                    "salary {sal}"
                );
            }
            // Batched rows stay individually deletable (indexes point at
            // real handles).
            assert!(batched.delete_where(|r| r[1] == Value::Int(1001)).unwrap() > 0);
        }
    }

    #[test]
    fn page_count_grows_with_data() {
        for t in both() {
            let before = t.page_count().unwrap();
            for id in 0..2000 {
                t.insert(row(id, id, "1990-01-01", "1991-01-01")).unwrap();
            }
            assert!(t.page_count().unwrap() > before);
        }
    }
}
