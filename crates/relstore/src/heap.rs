//! Chained heap files: unordered record storage, append-friendly.
//!
//! A heap file is a linked chain of slotted pages. Inserts go to the tail
//! page (history tables are append-mostly); full tails allocate a new page.
//! This is the DB2-style base-table layout of the "ArchIS-DB2"
//! configuration; clustered tables use [`crate::btree::BTree`] instead.

use crate::buffer::BufferPool;
use crate::page::{PageId, SlottedPage};
use crate::{Result, StoreError};
use parking_lot::Mutex;
use std::sync::Arc;

/// Physical address of a record: page and slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into 8 bytes (page id is < 2^48 in practice).
    pub fn to_bytes(self) -> [u8; 10] {
        let mut out = [0u8; 10];
        out[..8].copy_from_slice(&self.page.to_be_bytes());
        out[8..].copy_from_slice(&self.slot.to_be_bytes());
        out
    }

    /// Unpack from [`RecordId::to_bytes`] output.
    pub fn from_bytes(b: &[u8]) -> Result<Self> {
        if b.len() != 10 {
            return Err(StoreError::corrupt(
                crate::CorruptObject::Heap,
                "record id must be 10 bytes",
            ));
        }
        Ok(RecordId {
            page: u64::from_be_bytes(b[..8].try_into().unwrap()),
            slot: u16::from_be_bytes(b[8..].try_into().unwrap()),
        })
    }
}

/// An unordered record file over the buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    first: PageId,
    last: Mutex<PageId>,
}

impl HeapFile {
    /// Create a heap file with one fresh empty page.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let (id, frame) = pool.allocate()?;
        {
            let mut guard = frame.write();
            SlottedPage::init(&mut guard.data[..]);
            guard.dirty = true;
        }
        Ok(HeapFile {
            pool,
            first: id,
            last: Mutex::new(id),
        })
    }

    /// Reattach to an existing heap file given its first page.
    pub fn open(pool: Arc<BufferPool>, first: PageId) -> Result<Self> {
        // Walk to the tail to restore the append cursor.
        let mut last = first;
        loop {
            let frame = pool.get(last)?;
            let mut guard = frame.write();
            let page = SlottedPage::new(&mut guard.data[..]);
            match page.next_page() {
                Some(n) => last = n,
                None => break,
            }
        }
        Ok(HeapFile {
            pool,
            first,
            last: Mutex::new(last),
        })
    }

    /// First page of the chain (persist this as the table root).
    pub fn first_page(&self) -> PageId {
        self.first
    }

    /// Append a record, returning its address.
    pub fn insert(&self, record: &[u8]) -> Result<RecordId> {
        let mut last = self.last.lock();
        {
            let frame = self.pool.get(*last)?;
            let mut guard = frame.write();
            let mut page = SlottedPage::new(&mut guard.data[..]);
            if page.fits(record.len()) {
                let slot = page.insert(record)?;
                guard.dirty = true;
                return Ok(RecordId {
                    page: *last,
                    slot: slot as u16,
                });
            }
        }
        // Tail is full: allocate and link a new page.
        let (new_id, new_frame) = self.pool.allocate()?;
        {
            let mut guard = new_frame.write();
            SlottedPage::init(&mut guard.data[..]);
            guard.dirty = true;
        }
        {
            let frame = self.pool.get(*last)?;
            let mut guard = frame.write();
            let mut page = SlottedPage::new(&mut guard.data[..]);
            page.set_next_page(Some(new_id));
            guard.dirty = true;
        }
        *last = new_id;
        let frame = self.pool.get(new_id)?;
        let mut guard = frame.write();
        let mut page = SlottedPage::new(&mut guard.data[..]);
        let slot = page.insert(record)?;
        guard.dirty = true;
        Ok(RecordId {
            page: new_id,
            slot: slot as u16,
        })
    }

    /// Read a record by address. `None` if it was deleted.
    pub fn get(&self, rid: RecordId) -> Result<Option<Vec<u8>>> {
        let frame = self.pool.get(rid.page)?;
        let mut guard = frame.write();
        let page = SlottedPage::new(&mut guard.data[..]);
        Ok(page.get(rid.slot as usize).map(|r| r.to_vec()))
    }

    /// Tombstone a record.
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        let frame = self.pool.get(rid.page)?;
        let mut guard = frame.write();
        let mut page = SlottedPage::new(&mut guard.data[..]);
        page.delete(rid.slot as usize)?;
        guard.dirty = true;
        Ok(())
    }

    /// Overwrite a record in place if it fits, else delete + move.
    /// Returns the (possibly new) address.
    pub fn update(&self, rid: RecordId, record: &[u8]) -> Result<RecordId> {
        {
            let frame = self.pool.get(rid.page)?;
            let mut guard = frame.write();
            let mut page = SlottedPage::new(&mut guard.data[..]);
            match page.update_in_place(rid.slot as usize, record) {
                Ok(()) => {
                    guard.dirty = true;
                    return Ok(rid);
                }
                Err(StoreError::RecordTooLarge(_)) => {
                    page.delete(rid.slot as usize)?;
                    guard.dirty = true;
                }
                Err(e) => return Err(e),
            }
        }
        self.insert(record)
    }

    /// All live `(address, record)` pairs in chain order.
    pub fn scan(&self) -> Result<Vec<(RecordId, Vec<u8>)>> {
        self.cursor().collect()
    }

    /// Streaming cursor over the chain: records arrive one page at a time,
    /// and at most one frame is pinned at any moment (the page currently
    /// being copied out). This is what lets executor scans terminate early
    /// without paying for the whole table.
    pub fn cursor(&self) -> HeapCursor {
        HeapCursor {
            pool: self.pool.clone(),
            next_page: Some(self.first),
            batch: Vec::new().into_iter(),
            failed: false,
        }
    }

    /// A read-only record fetcher that does not borrow the heap file
    /// (shares the pool). Used by owning index-scan iterators.
    pub fn reader(&self) -> HeapReader {
        HeapReader {
            pool: self.pool.clone(),
        }
    }

    /// Number of pages in the chain.
    pub fn page_count(&self) -> Result<u64> {
        let mut n = 0;
        let mut pid = Some(self.first);
        while let Some(id) = pid {
            n += 1;
            let frame = self.pool.get(id)?;
            let mut guard = frame.write();
            let page = SlottedPage::new(&mut guard.data[..]);
            pid = page.next_page();
        }
        Ok(n)
    }
}

/// Streaming iterator over a heap file's live records (see
/// [`HeapFile::cursor`]). Owns its pool handle, so it outlives the borrow
/// of the heap file that created it.
pub struct HeapCursor {
    pool: Arc<BufferPool>,
    next_page: Option<PageId>,
    batch: std::vec::IntoIter<(RecordId, Vec<u8>)>,
    failed: bool,
}

impl HeapCursor {
    /// Copy one page's records into the batch and release the frame.
    fn load(&mut self, id: PageId) -> Result<()> {
        let frame = self.pool.get(id)?;
        let mut guard = frame.write();
        let page = SlottedPage::new(&mut guard.data[..]);
        let recs: Vec<(RecordId, Vec<u8>)> = page
            .records()
            .map(|(slot, rec)| {
                (
                    RecordId {
                        page: id,
                        slot: slot as u16,
                    },
                    rec.to_vec(),
                )
            })
            .collect();
        self.next_page = page.next_page();
        // Chained pages only reveal their successor one link at a time, so
        // the deepest readahead a heap walk can get is one page: hint the
        // successor while this page's records drain from the batch.
        // (Free when prefetch is off — the hint gate is a single lock.)
        if let Some(next) = self.next_page {
            self.pool.prefetch_hint(&[next]);
        }
        self.batch = recs.into_iter();
        Ok(())
    }
}

impl Iterator for HeapCursor {
    type Item = Result<(RecordId, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.failed {
                return None;
            }
            if let Some(item) = self.batch.next() {
                return Some(Ok(item));
            }
            let id = self.next_page.take()?;
            if let Err(e) = self.load(id) {
                self.failed = true;
                return Some(Err(e));
            }
        }
    }
}

/// Fetches records by address through the buffer pool without borrowing a
/// [`HeapFile`] (see [`HeapFile::reader`]).
pub struct HeapReader {
    pool: Arc<BufferPool>,
}

impl HeapReader {
    /// Read a record by address. `None` if it was deleted.
    pub fn get(&self, rid: RecordId) -> Result<Option<Vec<u8>>> {
        let frame = self.pool.get(rid.page)?;
        let mut guard = frame.write();
        let page = SlottedPage::new(&mut guard.data[..]);
        Ok(page.get(rid.slot as usize).map(|r| r.to_vec()))
    }

    /// Hint the pool's readahead at the distinct pages a batch of record
    /// fetches is about to touch (index scans know their rids in advance).
    /// No-op when prefetch is disabled.
    pub fn prefetch_pages(&self, pages: &[PageId]) {
        self.pool.prefetch_hint(pages);
    }

    /// Whether the pool's readahead workers are running (index scans use
    /// this to decide whether buffering a handle lookahead is worthwhile).
    pub fn prefetch_enabled(&self) -> bool {
        self.pool.prefetch_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 64));
        HeapFile::create(pool).unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.get(a).unwrap().unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap().unwrap(), b"beta");
    }

    #[test]
    fn spills_to_new_pages_and_scans_in_order() {
        let h = heap();
        let mut rids = Vec::new();
        for i in 0..500u32 {
            rids.push(h.insert(format!("record-{i:05}").as_bytes()).unwrap());
        }
        assert!(h.page_count().unwrap() > 1, "must have chained pages");
        let scanned = h.scan().unwrap();
        assert_eq!(scanned.len(), 500);
        for (i, (rid, rec)) in scanned.iter().enumerate() {
            assert_eq!(rid, &rids[i]);
            assert_eq!(rec, format!("record-{i:05}").as_bytes());
        }
    }

    #[test]
    fn delete_hides_from_scan() {
        let h = heap();
        let a = h.insert(b"x").unwrap();
        let _b = h.insert(b"y").unwrap();
        h.delete(a).unwrap();
        assert_eq!(h.get(a).unwrap(), None);
        let scanned = h.scan().unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1, b"y");
    }

    #[test]
    fn update_in_place_and_relocating() {
        let h = heap();
        let a = h.insert(b"0123456789").unwrap();
        let same = h.update(a, b"short").unwrap();
        assert_eq!(same, a);
        assert_eq!(h.get(a).unwrap().unwrap(), b"short");
        let moved = h.update(a, &[b'z'; 100]).unwrap();
        assert_ne!(moved, a);
        assert_eq!(h.get(a).unwrap(), None, "old address tombstoned");
        assert_eq!(h.get(moved).unwrap().unwrap(), vec![b'z'; 100]);
    }

    #[test]
    fn reopen_restores_append_cursor() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 64));
        let h = HeapFile::create(pool.clone()).unwrap();
        for i in 0..300u32 {
            h.insert(format!("r{i}").as_bytes()).unwrap();
        }
        let first = h.first_page();
        drop(h);
        let h2 = HeapFile::open(pool, first).unwrap();
        let before = h2.scan().unwrap().len();
        h2.insert(b"after-reopen").unwrap();
        assert_eq!(h2.scan().unwrap().len(), before + 1);
    }

    #[test]
    fn record_id_bytes_roundtrip() {
        let rid = RecordId {
            page: 123456,
            slot: 42,
        };
        assert_eq!(RecordId::from_bytes(&rid.to_bytes()).unwrap(), rid);
        assert!(RecordId::from_bytes(&[1, 2, 3]).is_err());
    }
}
