//! The database catalog: named tables over one shared buffer pool.

use crate::buffer::BufferPool;
use crate::heap::HeapFile;
use crate::pager::{FilePager, MemPager};
use crate::table::{IndexDef, Table, TableRoots};
use crate::value::{decode_row, encode_row, DataType, Field, Schema, Value};
use crate::wal::{FileLog, WalConfig, WalPager};
use crate::{Result, StoreError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Physical layout of a table (see [`crate::table`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Rows in a chained heap file; indexes point at record ids
    /// (DB2-style, the "ArchIS-DB2" configuration).
    Heap,
    /// Rows inside a B+tree keyed by cluster columns (BerkeleyDB-style,
    /// the "ArchIS-ATLaS" configuration).
    Clustered,
}

/// A database: a buffer pool plus a set of named tables.
///
/// Dropping a table unlinks it from the catalog without reclaiming its
/// pages (there is no free-list); storage experiments therefore measure
/// *reachable* pages via [`Table::page_count`], not allocated file size.
pub struct Database {
    pool: Arc<BufferPool>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    /// The durable catalog heap (page 0 of file-backed databases).
    catalog: Option<HeapFile>,
    /// Set by [`Database::abort`] after a mutation failed inside a WAL
    /// bracket: the buffered state may be torn, so [`Database::commit`]
    /// and [`Database::checkpoint`] refuse until the handle is reopened.
    aborted: std::sync::atomic::AtomicBool,
}

impl Database {
    /// An in-memory database with the default pool size.
    pub fn in_memory() -> Self {
        Self::with_capacity(4096)
    }

    /// An in-memory database whose pool holds `pages` pages (used to model
    /// constrained buffer memory in benchmarks).
    pub fn with_capacity(pages: usize) -> Self {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), pages));
        Database {
            pool,
            tables: RwLock::new(HashMap::new()),
            catalog: None,
            aborted: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// A database over a caller-supplied pool (e.g. file-backed).
    pub fn with_pool(pool: Arc<BufferPool>) -> Self {
        Database {
            pool,
            tables: RwLock::new(HashMap::new()),
            catalog: None,
            aborted: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Open (or create) a **durable** database in a page file. Page 0
    /// anchors the catalog; call [`Database::checkpoint`] to persist table
    /// roots and flush dirty pages before dropping the handle.
    ///
    /// This path writes pages in place with no log — a crash mid-write can
    /// corrupt the file. Prefer [`Database::open_wal`] for crash safety.
    pub fn open_file(path: impl AsRef<Path>, pool_pages: usize) -> Result<Self> {
        let pager = Arc::new(FilePager::open(path)?);
        Self::open_pool(Arc::new(BufferPool::new(pager, pool_pages)))
    }

    /// Open (or create) a durable **crash-safe** database: a page file at
    /// `path` plus a write-ahead log at `<path>.wal`. Page writes are
    /// staged in the log, [`Database::commit`] marks atomic transaction
    /// boundaries (fsynced per `wal`'s group-commit policy), and opening
    /// replays any committed log tail left behind by a crash.
    pub fn open_wal(path: impl AsRef<Path>, pool_pages: usize, wal: WalConfig) -> Result<Self> {
        let mut wal_path = path.as_ref().as_os_str().to_os_string();
        wal_path.push(".wal");
        let base = Arc::new(FilePager::open(path)?);
        let log = Arc::new(FileLog::open(wal_path)?);
        // `ARCHIS_WAL_PIPELINE=1` turns on the overlapped log writer for
        // stores opened through this convenience path; programmatic
        // configs that already ask for it are left alone. (The other I/O
        // toggles, `ARCHIS_PREFETCH`/`ARCHIS_WRITEBACK`, apply in
        // `open_pool` so every durable open path honours them.)
        let wal = if env_flag("ARCHIS_WAL_PIPELINE") {
            wal.pipelined(true)
        } else {
            wal
        };
        let pager = Arc::new(WalPager::open(base, log, wal)?);
        Self::open_pool(Arc::new(BufferPool::new(pager, pool_pages)))
    }

    /// Open (or create) a durable database over an arbitrary pool whose
    /// pager persists pages (file-backed, WAL-backed, fault-injected, ...).
    /// Fresh stores (zero pages) get a catalog heap anchored at page 0;
    /// existing stores reload every table from it.
    pub fn open_pool(pool: Arc<BufferPool>) -> Result<Self> {
        // Opt-in I/O pipeline toggles (see EXPERIMENTS.md): both default
        // off so benchmark read/write counts stay deterministic.
        if env_flag("ARCHIS_PREFETCH") {
            pool.enable_prefetch();
        }
        if env_flag("ARCHIS_WRITEBACK") {
            pool.enable_writeback();
        }
        Self::load_pool(pool)
    }

    /// Load the catalog and every table from an already-configured pool.
    /// Shared by [`Database::open_pool`] (which first applies the env I/O
    /// toggles) and [`Database::begin_snapshot`] (which must not: a
    /// snapshot pool is read-only, so background writeback has nothing to
    /// do there and would only error against the frozen pager).
    fn load_pool(pool: Arc<BufferPool>) -> Result<Self> {
        let fresh = pool.pager().num_pages() == 0;
        if fresh {
            let catalog = HeapFile::create(pool.clone())?;
            debug_assert_eq!(catalog.first_page(), 0, "catalog must anchor at page 0");
            return Ok(Database {
                pool,
                tables: RwLock::new(HashMap::new()),
                catalog: Some(catalog),
                aborted: std::sync::atomic::AtomicBool::new(false),
            });
        }
        let catalog = HeapFile::open(pool.clone(), 0)?;
        let mut tables = HashMap::new();
        for (_, rec) in catalog.scan()? {
            let row = decode_row(&rec)?;
            let entry = CatalogEntry::from_row(&row)?;
            let table = Table::open_existing(
                pool.clone(),
                &entry.name,
                entry.schema,
                entry.kind,
                &entry.cluster,
                &entry.roots,
            )?;
            tables.insert(entry.name, Arc::new(table));
        }
        Ok(Database {
            pool,
            tables: RwLock::new(tables),
            catalog: Some(catalog),
            aborted: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Rewrite the durable catalog records (every table's schema + current
    /// roots). Must happen inside every transaction that touches a table:
    /// B+tree roots move when they split and the per-table row/sequence
    /// counters advance on every insert, so recovery to the last commit is
    /// only self-consistent if the catalog committed with the data.
    fn persist_catalog(&self) -> Result<()> {
        let catalog = self
            .catalog
            .as_ref()
            .ok_or_else(|| StoreError::Io("persist needs a durable database".into()))?;
        // Replace all catalog records (tombstoning the old ones).
        for (rid, _) in catalog.scan()? {
            catalog.delete(rid)?;
        }
        for (name, table) in self.tables.read().iter() {
            let entry = CatalogEntry {
                name: name.clone(),
                schema: table.schema().clone(),
                kind: table.kind(),
                cluster: table.cluster_columns(),
                roots: table.roots(),
            };
            catalog.insert(&encode_row(&entry.to_row()))?;
        }
        Ok(())
    }

    /// Whether this database stages writes in a WAL (i.e. whether
    /// [`Database::commit`] provides atomic crash recovery).
    pub fn is_transactional(&self) -> bool {
        self.pool.pager().is_transactional()
    }

    /// Commit a transaction: persist the catalog, push every dirty page to
    /// the (WAL) pager, and append a commit record under the group-commit
    /// policy. The cache stays resident. On non-transactional databases
    /// this is a no-op — writes there are applied in place and there is no
    /// atomicity to provide.
    pub fn commit(&self) -> Result<()> {
        if !self.is_transactional() {
            return Ok(());
        }
        if self.is_aborted() {
            return Err(StoreError::Io(
                "transaction aborted: the buffered state may hold a half-applied \
                 mutation; reopen the database to recover to the last commit"
                    .into(),
            ));
        }
        if self.catalog.is_some() {
            self.persist_catalog()?;
        }
        self.pool.flush_dirty()?;
        self.pool.pager().commit()
    }

    /// Poison this handle after a mutation failed mid-transaction: the
    /// buffer pool (and any in-memory counters layered above) may hold a
    /// half-applied change, and sealing it with a later commit would
    /// persist a torn batch. After `abort`, [`Database::commit`] and
    /// [`Database::checkpoint`] refuse; recovery is reopening the
    /// database, which replays the WAL to the last commit boundary.
    /// No-op on non-transactional databases — writes there are applied in
    /// place and there is no bracket to tear.
    pub fn abort(&self) {
        if self.is_transactional() {
            self.aborted
                .store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }

    /// Has [`Database::abort`] poisoned this handle?
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Persist the catalog (every table's schema + current roots), write
    /// back all dirty pages, and — on WAL-backed databases — fold the log
    /// into the page file and truncate it. Required before closing a
    /// non-WAL durable database; on WAL databases it bounds recovery time
    /// and reclaims log space.
    pub fn checkpoint(&self) -> Result<()> {
        if self.is_aborted() {
            return Err(StoreError::Io(
                "transaction aborted: refusing to checkpoint a possibly torn \
                 buffer state; reopen the database to recover"
                    .into(),
            ));
        }
        self.persist_catalog()?;
        self.pool.flush_all()?;
        self.pool.pager().checkpoint()?;
        Ok(())
    }

    /// The shared buffer pool (I/O statistics live here).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Sequence number of the last sealed commit (0 on non-transactional
    /// databases, which have no commit notion).
    pub fn commit_lsn(&self) -> u64 {
        self.pool.pager().commit_lsn()
    }

    /// Freeze a read-only [`Snapshot`] of the last durable commit.
    ///
    /// The WAL pager pins the current commit (forcing the pending
    /// group-commit batch durable first, so the snapshot survives any
    /// crash), and the snapshot gets its own private buffer pool over a
    /// [`SnapshotPager`](crate::pager::SnapshotPager) — every read resolves
    /// page images as of the pinned commit, so the returned database serves
    /// a consistent catalog, table roots and data no matter what the live
    /// writer commits, flushes or checkpoints concurrently. Works only on
    /// transactional (WAL-backed) databases; the pin is released when the
    /// snapshot drops.
    pub fn begin_snapshot(&self) -> Result<Snapshot> {
        let pager = self.pool.pager().clone();
        let (commit_lsn, num_pages) = pager.pin_snapshot()?.ok_or_else(|| {
            StoreError::Io("snapshots require a transactional (WAL-backed) database".into())
        })?;
        // From here the pin is owned by the SnapshotPager: any early
        // return drops it, which releases the pin.
        let snap = Arc::new(crate::pager::SnapshotPager::new(
            pager, commit_lsn, num_pages,
        ));
        if num_pages == 0 {
            return Err(StoreError::Io(
                "cannot snapshot an empty store (nothing committed yet)".into(),
            ));
        }
        let pool = Arc::new(BufferPool::new(snap, SNAPSHOT_POOL_PAGES));
        let db = Self::load_pool(pool)?;
        Ok(Snapshot { db, commit_lsn })
    }

    /// Create a table. `cluster_columns` is required for
    /// [`StorageKind::Clustered`] and ignored for heap tables.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        kind: StorageKind,
        cluster_columns: &[&str],
    ) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(StoreError::AlreadyExists(format!("table {name}")));
        }
        let table = Arc::new(Table::create(
            self.pool.clone(),
            name,
            schema,
            kind,
            cluster_columns,
        )?);
        tables.insert(name.to_string(), table.clone());
        Ok(table)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(format!("table {name}")))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Unlink a table from the catalog.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::NotFound(format!("table {name}")))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Rebuild a table compactly: copy all live rows (and index
    /// definitions) into fresh storage and swap it into the catalog.
    /// Reclaims the space of tombstoned records and sparse B+tree pages —
    /// the VACUUM step after ArchIS moves archived segments into
    /// compressed BLOBs.
    pub fn vacuum_table(&self, name: &str) -> Result<Arc<Table>> {
        let old = self.table(name)?;
        let rows = old.scan()?;
        let schema = old.schema().clone();
        let kind = old.kind();
        let cluster: Vec<String> = old.cluster_columns();
        let cluster_refs: Vec<&str> = cluster.iter().map(String::as_str).collect();
        let indexes = old.index_defs();
        let fresh = Arc::new(Table::create(
            self.pool.clone(),
            name,
            schema,
            kind,
            &cluster_refs,
        )?);
        // Bulk-load into the fresh table: clustered scans arrive in key
        // order already, so the rewrite packs pages bottom-up instead of
        // re-splitting its way through row-at-a-time inserts.
        fresh.insert_batch(rows)?;
        for def in indexes {
            let cols: Vec<&str> = def.columns.iter().map(String::as_str).collect();
            fresh.create_index(&def.name, &cols)?;
        }
        self.tables.write().insert(name.to_string(), fresh.clone());
        Ok(fresh)
    }

    /// Reachable pages across all tables and their indexes.
    pub fn reachable_pages(&self) -> Result<u64> {
        let tables = self.tables.read();
        let mut total = 0;
        for t in tables.values() {
            total += t.page_count()?;
        }
        Ok(total)
    }

    /// Reachable storage in bytes.
    pub fn reachable_bytes(&self) -> Result<u64> {
        Ok(self.reachable_pages()? * crate::page::PAGE_SIZE as u64)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::in_memory()
    }
}

/// Buffer pool size for snapshot readers. Snapshots are typically
/// short-lived query scopes, so the pool is modest; it only bounds cache
/// residency, not what the snapshot can read.
const SNAPSHOT_POOL_PAGES: usize = 512;

/// A read-only view of a [`Database`] frozen at one durable commit.
///
/// Derefs to [`Database`], so every read API — `table(..)`, scans, index
/// range queries, the executor — works unchanged, resolved against the
/// pinned commit. The snapshot owns a private buffer pool; the live pool's
/// frames, background writeback and prefetch never leak newer images into
/// it. Mutating through a snapshot is a contract violation: writes land in
/// cache but fail with [`StoreError::Io`] the moment they reach the frozen
/// pager (commit on a snapshot is a no-op, since it is non-transactional).
///
/// Dropping the snapshot releases the WAL pin, letting the writer reclaim
/// the retained page versions.
pub struct Snapshot {
    db: Database,
    commit_lsn: u64,
}

impl Snapshot {
    /// The commit this snapshot is frozen at.
    pub fn commit_lsn(&self) -> u64 {
        self.commit_lsn
    }

    /// The frozen database view.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl std::ops::Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

/// One durable catalog record.
struct CatalogEntry {
    name: String,
    schema: Schema,
    kind: StorageKind,
    cluster: Vec<String>,
    roots: TableRoots,
}

fn dtype_tag(t: DataType) -> &'static str {
    match t {
        DataType::Int => "int",
        DataType::Double => "double",
        DataType::Str => "str",
        DataType::Date => "date",
        DataType::Blob => "blob",
    }
}

fn dtype_of(tag: &str) -> Result<DataType> {
    Ok(match tag {
        "int" => DataType::Int,
        "double" => DataType::Double,
        "str" => DataType::Str,
        "date" => DataType::Date,
        "blob" => DataType::Blob,
        other => {
            return Err(StoreError::corrupt(
                crate::CorruptObject::Catalog,
                format!("unknown type tag {other:?}"),
            ))
        }
    })
}

impl CatalogEntry {
    /// Row layout:
    /// `[name, kind, cluster-csv, schema-spec, base, seq, rows, index-spec]`
    /// where schema-spec is `col:type,...` and index-spec is
    /// `name|col,col|root;...` (column names are SQL identifiers, so the
    /// separators cannot occur inside them).
    fn to_row(&self) -> Vec<Value> {
        let schema_spec = self
            .schema
            .fields
            .iter()
            .map(|f| format!("{}:{}", f.name, dtype_tag(f.dtype)))
            .collect::<Vec<_>>()
            .join(",");
        let index_spec = self
            .roots
            .indexes
            .iter()
            .map(|(def, root)| format!("{}|{}|{}", def.name, def.columns.join(","), root))
            .collect::<Vec<_>>()
            .join(";");
        vec![
            Value::Str(self.name.clone()),
            Value::Int(matches!(self.kind, StorageKind::Clustered) as i64),
            Value::Str(self.cluster.join(",")),
            Value::Str(schema_spec),
            Value::Int(self.roots.base as i64),
            Value::Int(self.roots.seq as i64),
            Value::Int(self.roots.rows as i64),
            Value::Str(index_spec),
        ]
    }

    fn from_row(row: &[Value]) -> Result<CatalogEntry> {
        let corrupt =
            |m: &str| StoreError::corrupt(crate::CorruptObject::Catalog, format!("record: {m}"));
        if row.len() != 8 {
            return Err(corrupt("wrong arity"));
        }
        let get_str = |i: usize| -> Result<&str> {
            row[i]
                .as_str()
                .ok_or_else(|| corrupt("expected a string field"))
        };
        let get_int = |i: usize| -> Result<i64> {
            row[i]
                .as_int()
                .ok_or_else(|| corrupt("expected an int field"))
        };
        let name = get_str(0)?.to_string();
        let kind = if get_int(1)? == 1 {
            StorageKind::Clustered
        } else {
            StorageKind::Heap
        };
        let cluster: Vec<String> = get_str(2)?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        let mut fields = Vec::new();
        for spec in get_str(3)?.split(',').filter(|s| !s.is_empty()) {
            let (col, tag) = spec
                .split_once(':')
                .ok_or_else(|| corrupt("malformed schema spec"))?;
            fields.push(Field::new(col, dtype_of(tag)?));
        }
        let mut indexes = Vec::new();
        for spec in get_str(7)?.split(';').filter(|s| !s.is_empty()) {
            let mut parts = spec.split('|');
            let iname = parts
                .next()
                .ok_or_else(|| corrupt("malformed index spec"))?;
            let cols = parts
                .next()
                .ok_or_else(|| corrupt("malformed index spec"))?;
            let root: u64 = parts
                .next()
                .ok_or_else(|| corrupt("malformed index spec"))?
                .parse()
                .map_err(|_| corrupt("bad index root"))?;
            indexes.push((
                IndexDef {
                    name: iname.to_string(),
                    columns: cols.split(',').map(String::from).collect(),
                },
                root,
            ));
        }
        Ok(CatalogEntry {
            name,
            schema: Schema::new(fields),
            kind,
            cluster,
            roots: TableRoots {
                base: get_int(4)? as u64,
                seq: get_int(5)? as u64,
                rows: get_int(6)? as u64,
                indexes,
            },
        })
    }
}

/// A truthy environment toggle: set to `1`, `true`, `on` or `yes`.
fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| matches!(v.as_str(), "1" | "true" | "on" | "yes"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("v", DataType::Str),
        ])
    }

    #[test]
    fn create_lookup_drop() {
        let db = Database::in_memory();
        db.create_table("t", schema(), StorageKind::Heap, &[])
            .unwrap();
        assert!(db.has_table("t"));
        assert!(db
            .create_table("t", schema(), StorageKind::Heap, &[])
            .is_err());
        db.table("t").unwrap();
        assert!(db.table("nope").is_err());
        db.drop_table("t").unwrap();
        assert!(!db.has_table("t"));
        assert!(db.drop_table("t").is_err());
    }

    #[test]
    fn tables_share_the_pool() {
        let db = Database::in_memory();
        let a = db
            .create_table("a", schema(), StorageKind::Heap, &[])
            .unwrap();
        let b = db
            .create_table("b", schema(), StorageKind::Clustered, &["id"])
            .unwrap();
        a.insert(vec![Value::Int(1), Value::Str("x".into())])
            .unwrap();
        b.insert(vec![Value::Int(2), Value::Str("y".into())])
            .unwrap();
        assert_eq!(db.table_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(db.reachable_pages().unwrap() >= 2);
        assert_eq!(
            db.reachable_bytes().unwrap() % crate::page::PAGE_SIZE as u64,
            0
        );
    }

    fn wal_db() -> Database {
        use crate::pager::MemPager;
        use crate::wal::{MemLog, WalConfig, WalPager};
        let base = Arc::new(MemPager::new());
        let log = Arc::new(MemLog::new());
        let pager = Arc::new(WalPager::open(base, log, WalConfig::with_group_commit(1)).unwrap());
        Database::open_pool(Arc::new(BufferPool::new(pager, 256))).unwrap()
    }

    #[test]
    fn snapshot_requires_transactional_store() {
        let db = Database::in_memory();
        assert!(db.begin_snapshot().is_err());
    }

    #[test]
    fn snapshot_is_frozen_while_writer_advances() {
        let db = wal_db();
        let t = db
            .create_table("t", schema(), StorageKind::Clustered, &["id"])
            .unwrap();
        t.insert(vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        db.commit().unwrap();

        let snap = db.begin_snapshot().unwrap();
        let pinned = snap.commit_lsn();

        // Writer keeps mutating: new rows, a new table, a checkpoint fold.
        t.insert(vec![Value::Int(2), Value::Str("b".into())])
            .unwrap();
        db.commit().unwrap();
        db.create_table("u", schema(), StorageKind::Heap, &[])
            .unwrap();
        db.commit().unwrap();
        db.checkpoint().unwrap();

        // The snapshot still sees exactly the pinned state: one table, one
        // row — reads resolve through the version store, not the live pool.
        assert_eq!(snap.table_names(), vec!["t".to_string()]);
        let rows = snap.table("t").unwrap().scan().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
        assert!(snap.table("u").is_err());
        assert_eq!(snap.commit_lsn(), pinned);

        // The live database sees everything.
        assert_eq!(db.table("t").unwrap().scan().unwrap().len(), 2);
        assert!(db.has_table("u"));
        assert!(db.commit_lsn() > pinned);
        drop(snap);
        // Dropping the snapshot releases the pin (versions get pruned on
        // the pager side; a later snapshot pins the newer state).
        let snap2 = db.begin_snapshot().unwrap();
        assert_eq!(snap2.table("t").unwrap().scan().unwrap().len(), 2);
    }

    #[test]
    fn snapshot_writes_never_reach_the_shared_store() {
        let db = wal_db();
        let t = db
            .create_table("t", schema(), StorageKind::Heap, &[])
            .unwrap();
        t.insert(vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        db.commit().unwrap();
        let snap = db.begin_snapshot().unwrap();

        // Anything needing a fresh page fails eagerly: the frozen pager
        // refuses to allocate.
        assert!(snap
            .create_table("u", schema(), StorageKind::Heap, &[])
            .is_err());

        // A row squeezed into an existing page's free space only dirties
        // the snapshot's *private* pool; it is invisible to the live store
        // and to any later snapshot, and dies with the handle.
        let frozen = snap.table("t").unwrap();
        let _ = frozen.insert(vec![Value::Int(9), Value::Str("z".into())]);
        assert_eq!(db.table("t").unwrap().scan().unwrap().len(), 1);
        drop(snap);
        let snap2 = db.begin_snapshot().unwrap();
        assert_eq!(snap2.table("t").unwrap().scan().unwrap().len(), 1);
        assert!(!snap2.has_table("u"));
    }
}
