//! Row expressions with SQL three-valued logic and a scalar-UDF registry.
//!
//! Predicates evaluate to `Int(1)` / `Int(0)` / `Null` (true / false /
//! unknown), the SQLite convention. ArchIS registers its temporal built-ins
//! (`toverlaps`, `tcontains`, ...) as scalar UDFs in a [`FnRegistry`] that
//! the SQL/XML engine passes to every expression evaluation — this is the
//! paper's "translation of built-in functions" (§5.3, step 4).

use crate::value::Value;
use crate::{Result, StoreError};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical AND (3-valued).
    And,
    /// Logical OR (3-valued).
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical NOT (3-valued).
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL`
    IsNull,
    /// `IS NOT NULL`
    IsNotNull,
}

/// Aggregate functions for [`crate::exec::GroupAggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` — non-NULL inputs.
    Count,
    /// `COUNT(*)`.
    CountStar,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

/// A row expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Column by position in the input row.
    Col(usize),
    /// A constant.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Scalar UDF call, resolved through the [`FnRegistry`].
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Shorthand: `Expr::Col`.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Shorthand: literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }

    /// Shorthand: binary op.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Conjunction of a list of predicates (empty list = TRUE).
    pub fn and_all(mut preds: Vec<Expr>) -> Expr {
        match preds.len() {
            0 => Expr::Lit(Value::Int(1)),
            1 => preds.pop().unwrap(),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().unwrap();
                it.fold(first, |acc, p| Expr::bin(BinOp::And, acc, p))
            }
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value], fns: &FnRegistry) -> Result<Value> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| StoreError::Eval(format!("column index {i} out of range"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Un(op, e) => {
                let v = e.eval(row, fns)?;
                Ok(match op {
                    UnOp::IsNull => Value::Int(v.is_null() as i64),
                    UnOp::IsNotNull => Value::Int(!v.is_null() as i64),
                    UnOp::Not => match truth(&v) {
                        Some(b) => Value::Int(!b as i64),
                        None => Value::Null,
                    },
                    UnOp::Neg => match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Double(d) => Value::Double(-d),
                        Value::Null => Value::Null,
                        other => return Err(StoreError::Eval(format!("cannot negate {other}"))),
                    },
                })
            }
            Expr::Bin(op, l, r) => {
                // AND/OR get short-circuit-ish 3VL treatment.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let lv = truth(&l.eval(row, fns)?);
                    let rv = truth(&r.eval(row, fns)?);
                    return Ok(match (op, lv, rv) {
                        (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => {
                            Value::Int(0)
                        }
                        (BinOp::And, Some(true), Some(true)) => Value::Int(1),
                        (BinOp::And, _, _) => Value::Null,
                        (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Value::Int(1),
                        (BinOp::Or, Some(false), Some(false)) => Value::Int(0),
                        (BinOp::Or, _, _) => Value::Null,
                        _ => unreachable!(),
                    });
                }
                let lv = l.eval(row, fns)?;
                let rv = r.eval(row, fns)?;
                match op {
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        Ok(match lv.sql_cmp(&rv) {
                            None => Value::Null,
                            Some(ord) => {
                                let b = match op {
                                    BinOp::Eq => ord == Ordering::Equal,
                                    BinOp::Ne => ord != Ordering::Equal,
                                    BinOp::Lt => ord == Ordering::Less,
                                    BinOp::Le => ord != Ordering::Greater,
                                    BinOp::Gt => ord == Ordering::Greater,
                                    BinOp::Ge => ord != Ordering::Less,
                                    _ => unreachable!(),
                                };
                                Value::Int(b as i64)
                            }
                        })
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, lv, rv),
                    BinOp::And | BinOp::Or => unreachable!(),
                }
            }
            Expr::Call(name, args) => {
                let f = fns.get(name)?;
                let vals = args
                    .iter()
                    .map(|a| a.eval(row, fns))
                    .collect::<Result<Vec<Value>>>()?;
                f(&vals)
            }
        }
    }

    /// Evaluate as a predicate: NULL counts as false.
    pub fn eval_bool(&self, row: &[Value], fns: &FnRegistry) -> Result<bool> {
        Ok(truth(&self.eval(row, fns)?).unwrap_or(false))
    }
}

/// SQL truthiness: nonzero numbers are true, NULL is unknown.
pub fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Double(d) => Some(*d != 0.0),
        Value::Str(s) => Some(!s.is_empty()),
        _ => Some(true),
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Date ± Int (days) arithmetic, used by temporal slicing rewrites.
    if let (Value::Date(d), Value::Int(n)) = (&l, &r) {
        return Ok(match op {
            BinOp::Add => Value::Date(*d + *n as i32),
            BinOp::Sub => Value::Date(*d - *n as i32),
            _ => return Err(StoreError::Eval("only +/- defined on dates".into())),
        });
    }
    if let (Value::Date(a), Value::Date(b)) = (&l, &r) {
        if op == BinOp::Sub {
            return Ok(Value::Int(a.days_since(*b) as i64));
        }
    }
    // Integer arithmetic stays integral except for division (exact).
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a + b),
            BinOp::Sub => Value::Int(a - b),
            BinOp::Mul => Value::Int(a * b),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Double(*a as f64 / *b as f64)
                }
            }
            _ => unreachable!(),
        });
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok(match op {
            BinOp::Add => Value::Double(a + b),
            BinOp::Sub => Value::Double(a - b),
            BinOp::Mul => Value::Double(a * b),
            BinOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Double(a / b)
                }
            }
            _ => unreachable!(),
        }),
        _ => Err(StoreError::Eval("arithmetic on non-numeric values".into())),
    }
}

/// A scalar user-defined function.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Named scalar UDFs available to expression evaluation.
#[derive(Default, Clone)]
pub struct FnRegistry {
    fns: HashMap<String, ScalarFn>,
}

impl FnRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a function. Names are case-insensitive.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.fns.insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> Result<&ScalarFn> {
        self.fns
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| StoreError::Eval(format!("unknown function {name}")))
    }

    /// Whether a function is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.fns.contains_key(&name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal::Date;

    fn reg() -> FnRegistry {
        FnRegistry::new()
    }

    fn ev(e: &Expr, row: &[Value]) -> Value {
        e.eval(row, &reg()).unwrap()
    }

    #[test]
    fn column_and_literal() {
        let row = vec![Value::Int(7), Value::Str("x".into())];
        assert_eq!(ev(&Expr::col(0), &row), Value::Int(7));
        assert_eq!(ev(&Expr::lit(Value::Int(3)), &row), Value::Int(3));
        assert!(Expr::col(9).eval(&row, &reg()).is_err());
    }

    #[test]
    fn comparisons_yield_sql_booleans() {
        let row = vec![Value::Int(5), Value::Int(9)];
        let lt = Expr::bin(BinOp::Lt, Expr::col(0), Expr::col(1));
        assert_eq!(ev(&lt, &row), Value::Int(1));
        let eq = Expr::bin(BinOp::Eq, Expr::col(0), Expr::col(1));
        assert_eq!(ev(&eq, &row), Value::Int(0));
        // NULL propagates as unknown.
        let vs_null = Expr::bin(BinOp::Eq, Expr::col(0), Expr::lit(Value::Null));
        assert_eq!(ev(&vs_null, &row), Value::Null);
        assert!(
            !vs_null.eval_bool(&row, &reg()).unwrap(),
            "unknown filters out"
        );
    }

    #[test]
    fn three_valued_and_or() {
        let t = Expr::lit(Value::Int(1));
        let f = Expr::lit(Value::Int(0));
        let n = Expr::lit(Value::Null);
        let and = |a: &Expr, b: &Expr| ev(&Expr::bin(BinOp::And, a.clone(), b.clone()), &[]);
        let or = |a: &Expr, b: &Expr| ev(&Expr::bin(BinOp::Or, a.clone(), b.clone()), &[]);
        assert_eq!(and(&t, &n), Value::Null);
        assert_eq!(and(&f, &n), Value::Int(0), "false AND unknown = false");
        assert_eq!(or(&t, &n), Value::Int(1), "true OR unknown = true");
        assert_eq!(or(&f, &n), Value::Null);
        assert_eq!(
            ev(&Expr::Un(UnOp::Not, Box::new(Expr::lit(Value::Null))), &[]),
            Value::Null
        );
    }

    #[test]
    fn date_comparisons_drive_snapshot_predicates() {
        // tstart <= '1994-05-06' AND tend >= '1994-05-06' (paper QUERY 2).
        let day = Value::Date(Date::parse("1994-05-06").unwrap());
        let row = vec![
            Value::Date(Date::parse("1994-01-01").unwrap()),
            Value::Date(Date::parse("9999-12-31").unwrap()),
        ];
        let pred = Expr::and_all(vec![
            Expr::bin(BinOp::Le, Expr::col(0), Expr::lit(day.clone())),
            Expr::bin(BinOp::Ge, Expr::col(1), Expr::lit(day)),
        ]);
        assert!(pred.eval_bool(&row, &reg()).unwrap());
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let add = Expr::bin(
            BinOp::Add,
            Expr::lit(Value::Int(2)),
            Expr::lit(Value::Int(3)),
        );
        assert_eq!(ev(&add, &[]), Value::Int(5));
        let div0 = Expr::bin(
            BinOp::Div,
            Expr::lit(Value::Int(1)),
            Expr::lit(Value::Int(0)),
        );
        assert_eq!(ev(&div0, &[]), Value::Null);
        let date_plus = Expr::bin(
            BinOp::Add,
            Expr::lit(Value::Date(Date::parse("1995-01-01").unwrap())),
            Expr::lit(Value::Int(30)),
        );
        assert_eq!(
            ev(&date_plus, &[]),
            Value::Date(Date::parse("1995-01-31").unwrap())
        );
        let date_diff = Expr::bin(
            BinOp::Sub,
            Expr::lit(Value::Date(Date::parse("1995-02-01").unwrap())),
            Expr::lit(Value::Date(Date::parse("1995-01-01").unwrap())),
        );
        assert_eq!(ev(&date_diff, &[]), Value::Int(31));
    }

    #[test]
    fn udf_dispatch() {
        let mut fns = FnRegistry::new();
        fns.register("double_it", |args| {
            Ok(Value::Int(args[0].as_int().unwrap_or(0) * 2))
        });
        let call = Expr::Call("DOUBLE_IT".into(), vec![Expr::lit(Value::Int(21))]);
        assert_eq!(call.eval(&[], &fns).unwrap(), Value::Int(42));
        assert!(Expr::Call("nope".into(), vec![]).eval(&[], &fns).is_err());
        assert!(fns.contains("Double_It"));
    }

    #[test]
    fn is_null_operators() {
        let isn = Expr::Un(UnOp::IsNull, Box::new(Expr::lit(Value::Null)));
        assert_eq!(ev(&isn, &[]), Value::Int(1));
        let isnn = Expr::Un(UnOp::IsNotNull, Box::new(Expr::lit(Value::Int(0))));
        assert_eq!(ev(&isnn, &[]), Value::Int(1));
    }

    #[test]
    fn and_all_composition() {
        assert_eq!(ev(&Expr::and_all(vec![]), &[]), Value::Int(1));
        let p = Expr::and_all(vec![
            Expr::lit(Value::Int(1)),
            Expr::lit(Value::Int(1)),
            Expr::lit(Value::Int(0)),
        ]);
        assert_eq!(ev(&p, &[]), Value::Int(0));
    }
}
