//! A Volcano-style iterator executor.
//!
//! Operators are plain `Iterator<Item = Result<Row>>` values that compose
//! into left-deep plans. The SQL/XML engine (crate `sqlxml`) builds these;
//! the paper's observation that the translated H-table queries "execute
//! very fast (in linear time) since every table is already sorted on its
//! `id` attribute" corresponds to [`SortMergeJoin`] here.

use crate::expr::{AggFunc, Expr, FnRegistry};
use crate::table::Table;
use crate::value::Value;
use crate::{Result, StoreError};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// A materialized row.
pub type Row = Vec<Value>;

/// The executor item type: rows or a propagated error.
pub type RowResult = Result<Row>;

/// Object-safe alias for a boxed operator.
pub type Executor = Box<dyn Iterator<Item = RowResult>>;

/// Full-table scan. Streams rows page-at-a-time through
/// [`Table::stream`], so downstream early termination (LIMIT, point
/// probes) stops pulling pages instead of paying full-table cost.
pub struct SeqScan {
    inner: Executor,
}

impl SeqScan {
    /// Scan all rows of `table`.
    pub fn new(table: &Table) -> Self {
        match table.stream() {
            Ok(stream) => SeqScan {
                inner: Box::new(stream),
            },
            Err(e) => SeqScan {
                inner: Box::new(std::iter::once(Err(e))),
            },
        }
    }

    /// Wrap pre-materialized rows (used by table functions and tests).
    pub fn from_rows(rows: Vec<Row>) -> Self {
        SeqScan {
            inner: Box::new(rows.into_iter().map(Ok)),
        }
    }
}

impl Iterator for SeqScan {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        self.inner.next()
    }
}

/// B+tree index range scan. Streams index entries leaf-by-leaf and fetches
/// rows on demand (see [`Table::index_range_stream`]).
pub struct IndexRangeScan {
    inner: Executor,
}

impl IndexRangeScan {
    /// Scan `table` through `index` for keys in `[lo, hi]` (value bounds;
    /// prefixes of composite keys are allowed).
    pub fn new(table: &Table, index: &str, lo: Bound<&[Value]>, hi: Bound<&[Value]>) -> Self {
        match table.index_range_stream(index, lo, hi) {
            Ok(stream) => IndexRangeScan {
                inner: Box::new(stream),
            },
            Err(e) => IndexRangeScan {
                inner: Box::new(std::iter::once(Err(e))),
            },
        }
    }
}

impl Iterator for IndexRangeScan {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        self.inner.next()
    }
}

/// Filter by a predicate expression.
pub struct Filter {
    input: Executor,
    pred: Expr,
    fns: Arc<FnRegistry>,
}

impl Filter {
    /// Keep rows where `pred` is true (NULL = drop).
    pub fn new(input: Executor, pred: Expr, fns: Arc<FnRegistry>) -> Self {
        Filter { input, pred, fns }
    }
}

impl Iterator for Filter {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        loop {
            match self.input.next()? {
                Err(e) => return Some(Err(e)),
                Ok(row) => match self.pred.eval_bool(&row, &self.fns) {
                    Err(e) => return Some(Err(e)),
                    Ok(true) => return Some(Ok(row)),
                    Ok(false) => continue,
                },
            }
        }
    }
}

/// Compute output columns from expressions.
pub struct Project {
    input: Executor,
    exprs: Vec<Expr>,
    fns: Arc<FnRegistry>,
}

impl Project {
    /// Each output row is `exprs` evaluated on the input row.
    pub fn new(input: Executor, exprs: Vec<Expr>, fns: Arc<FnRegistry>) -> Self {
        Project { input, exprs, fns }
    }
}

impl Iterator for Project {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        match self.input.next()? {
            Err(e) => Some(Err(e)),
            Ok(row) => {
                let out: Result<Row> = self.exprs.iter().map(|e| e.eval(&row, &self.fns)).collect();
                Some(out)
            }
        }
    }
}

/// Materializing sort.
pub struct Sort {
    sorted: std::vec::IntoIter<Row>,
    err: Option<StoreError>,
}

impl Sort {
    /// Sort by the given key expressions (ascending flags per key).
    pub fn new(input: Executor, keys: Vec<(Expr, bool)>, fns: Arc<FnRegistry>) -> Self {
        let mut rows = Vec::new();
        let mut err = None;
        for r in input {
            match r {
                Ok(row) => rows.push(row),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        if err.is_none() {
            // Precompute keys, then sort.
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            'outer: for row in rows {
                let mut kv = Vec::with_capacity(keys.len());
                for (e, _) in &keys {
                    match e.eval(&row, &fns) {
                        Ok(v) => kv.push(v),
                        Err(e) => {
                            err = Some(e);
                            break 'outer;
                        }
                    }
                }
                keyed.push((kv, row));
            }
            if err.is_none() {
                keyed.sort_by(|(a, _), (b, _)| {
                    for (i, (_, asc)) in keys.iter().enumerate() {
                        let ord = a[i].total_cmp(&b[i]);
                        let ord = if *asc { ord } else { ord.reverse() };
                        if ord != Ordering::Equal {
                            return ord;
                        }
                    }
                    Ordering::Equal
                });
                return Sort {
                    sorted: keyed
                        .into_iter()
                        .map(|(_, r)| r)
                        .collect::<Vec<_>>()
                        .into_iter(),
                    err: None,
                };
            }
        }
        Sort {
            sorted: Vec::new().into_iter(),
            err,
        }
    }
}

impl Iterator for Sort {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        if let Some(e) = self.err.take() {
            return Some(Err(e));
        }
        self.sorted.next().map(Ok)
    }
}

/// Row-count limit.
pub struct Limit {
    input: Executor,
    remaining: usize,
}

impl Limit {
    /// Pass through at most `n` rows.
    pub fn new(input: Executor, n: usize) -> Self {
        Limit {
            input,
            remaining: n,
        }
    }
}

impl Iterator for Limit {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.input.next()
    }
}

/// Nested-loop join with an arbitrary condition (the fallback join).
/// The condition sees the concatenated `left ++ right` row.
pub struct NestedLoopJoin {
    left: Vec<Row>,
    right: Vec<Row>,
    cond: Expr,
    fns: Arc<FnRegistry>,
    li: usize,
    ri: usize,
    err: Option<StoreError>,
}

impl NestedLoopJoin {
    /// Join two inputs on `cond` (evaluated on concatenated rows).
    pub fn new(left: Executor, right: Executor, cond: Expr, fns: Arc<FnRegistry>) -> Self {
        let mut err = None;
        let collect = |it: Executor, err: &mut Option<StoreError>| -> Vec<Row> {
            let mut v = Vec::new();
            for r in it {
                match r {
                    Ok(row) => v.push(row),
                    Err(e) => {
                        *err = Some(e);
                        break;
                    }
                }
            }
            v
        };
        let left = collect(left, &mut err);
        let right = collect(right, &mut err);
        NestedLoopJoin {
            left,
            right,
            cond,
            fns,
            li: 0,
            ri: 0,
            err,
        }
    }
}

impl Iterator for NestedLoopJoin {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        if let Some(e) = self.err.take() {
            return Some(Err(e));
        }
        while self.li < self.left.len() {
            while self.ri < self.right.len() {
                let mut row = self.left[self.li].clone();
                row.extend(self.right[self.ri].clone());
                self.ri += 1;
                match self.cond.eval_bool(&row, &self.fns) {
                    Err(e) => return Some(Err(e)),
                    Ok(true) => return Some(Ok(row)),
                    Ok(false) => continue,
                }
            }
            self.ri = 0;
            self.li += 1;
        }
        None
    }
}

/// Sort-merge equi-join on one key column per side.
///
/// This is the paper's fast path: H-tables are stored sorted (clustered) on
/// `id`, so the ubiquitous `N.id = T.id` joins merge in linear time.
pub struct SortMergeJoin {
    output: std::vec::IntoIter<Row>,
    err: Option<StoreError>,
}

impl SortMergeJoin {
    /// Join on `left[lkey] == right[rkey]`. Inputs need not be pre-sorted;
    /// they are sorted here (already-ordered inputs sort in near-linear
    /// time under the stdlib's adaptive merge sort).
    pub fn new(left: Executor, right: Executor, lkey: usize, rkey: usize) -> Self {
        let mut err = None;
        let mut collect = |it: Executor| -> Vec<Row> {
            let mut v = Vec::new();
            for r in it {
                match r {
                    Ok(row) => v.push(row),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            v
        };
        let mut left = collect(left);
        let mut right = collect(right);
        if let Some(e) = err {
            return SortMergeJoin {
                output: Vec::new().into_iter(),
                err: Some(e),
            };
        }
        left.sort_by(|a, b| a[lkey].total_cmp(&b[lkey]));
        right.sort_by(|a, b| a[rkey].total_cmp(&b[rkey]));
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() && j < right.len() {
            match left[i][lkey].total_cmp(&right[j][rkey]) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    // NULL keys never join.
                    if left[i][lkey].is_null() {
                        i += 1;
                        continue;
                    }
                    // Emit the cross product of the equal groups.
                    let je = {
                        let mut je = j;
                        while je < right.len()
                            && right[je][rkey].total_cmp(&left[i][lkey]) == Ordering::Equal
                        {
                            je += 1;
                        }
                        je
                    };
                    let ie = {
                        let mut ie = i;
                        while ie < left.len()
                            && left[ie][lkey].total_cmp(&right[j][rkey]) == Ordering::Equal
                        {
                            ie += 1;
                        }
                        ie
                    };
                    for l in &left[i..ie] {
                        for r in &right[j..je] {
                            let mut row = l.clone();
                            row.extend(r.iter().cloned());
                            out.push(row);
                        }
                    }
                    i = ie;
                    j = je;
                }
            }
        }
        SortMergeJoin {
            output: out.into_iter(),
            err: None,
        }
    }
}

impl Iterator for SortMergeJoin {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        if let Some(e) = self.err.take() {
            return Some(Err(e));
        }
        self.output.next().map(Ok)
    }
}

/// One aggregate to compute: function plus argument expression.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Its argument (ignored for `CountStar`).
    pub arg: Expr,
}

/// Hash group-by with the standard SQL aggregates.
///
/// Output rows are `group keys ++ aggregate values`, grouped in first-seen
/// order. With no group keys, a single global row is produced (even on
/// empty input, matching SQL semantics).
pub struct GroupAggregate {
    output: std::vec::IntoIter<Row>,
    err: Option<StoreError>,
}

#[derive(Default, Clone)]
struct AggState {
    count: i64,
    sum: f64,
    saw_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl GroupAggregate {
    /// Group `input` by `group_exprs` and compute `aggs` per group.
    pub fn new(
        input: Executor,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggSpec>,
        fns: Arc<FnRegistry>,
    ) -> Self {
        let mut groups: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut err = None;
        'rows: for r in input {
            let row = match r {
                Ok(row) => row,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            };
            let mut key = Vec::with_capacity(group_exprs.len());
            for ge in &group_exprs {
                match ge.eval(&row, &fns) {
                    Ok(v) => key.push(v),
                    Err(e) => {
                        err = Some(e);
                        break 'rows;
                    }
                }
            }
            let fingerprint = format!("{key:?}");
            let gi = *index.entry(fingerprint).or_insert_with(|| {
                groups.push((key.clone(), vec![AggState::default(); aggs.len()]));
                groups.len() - 1
            });
            for (ai, spec) in aggs.iter().enumerate() {
                let state = &mut groups[gi].1[ai];
                let v = if spec.func == AggFunc::CountStar {
                    Value::Int(1)
                } else {
                    match spec.arg.eval(&row, &fns) {
                        Ok(v) => v,
                        Err(e) => {
                            err = Some(e);
                            break 'rows;
                        }
                    }
                };
                if v.is_null() {
                    continue;
                }
                state.count += 1;
                if let Some(f) = v.as_f64() {
                    state.sum += f;
                    state.saw_float |= matches!(v, Value::Double(_));
                }
                match &state.min {
                    Some(m) if m.total_cmp(&v) != Ordering::Greater => {}
                    _ => state.min = Some(v.clone()),
                }
                match &state.max {
                    Some(m) if m.total_cmp(&v) != Ordering::Less => {}
                    _ => state.max = Some(v.clone()),
                }
            }
        }
        if err.is_some() {
            return GroupAggregate {
                output: Vec::new().into_iter(),
                err,
            };
        }
        if groups.is_empty() && group_exprs.is_empty() {
            groups.push((Vec::new(), vec![AggState::default(); aggs.len()]));
        }
        let mut out = Vec::with_capacity(groups.len());
        for (key, states) in groups {
            let mut row = key;
            for (spec, st) in aggs.iter().zip(&states) {
                row.push(match spec.func {
                    AggFunc::Count | AggFunc::CountStar => Value::Int(st.count),
                    AggFunc::Sum => {
                        if st.count == 0 {
                            Value::Null
                        } else if st.saw_float {
                            Value::Double(st.sum)
                        } else {
                            Value::Int(st.sum as i64)
                        }
                    }
                    AggFunc::Avg => {
                        if st.count == 0 {
                            Value::Null
                        } else {
                            Value::Double(st.sum / st.count as f64)
                        }
                    }
                    AggFunc::Min => st.min.clone().unwrap_or(Value::Null),
                    AggFunc::Max => st.max.clone().unwrap_or(Value::Null),
                });
            }
            out.push(row);
        }
        GroupAggregate {
            output: out.into_iter(),
            err: None,
        }
    }
}

impl Iterator for GroupAggregate {
    type Item = RowResult;
    fn next(&mut self) -> Option<RowResult> {
        if let Some(e) = self.err.take() {
            return Some(Err(e));
        }
        self.output.next().map(Ok)
    }
}

/// Build the scan executor for a planner-selected access path.
///
/// This is the execution half of [`crate::planner::choose_path`]: `Seq`
/// streams base storage, `Index` walks the named secondary index, and
/// `Cluster` range-scans the primary tree. Callers re-apply their full
/// predicate set on top (every path is a superset of the matching rows),
/// so a mis-estimated choice degrades speed, never results.
pub fn build_scan(
    table: &Table,
    kind: crate::planner::PathKind,
    index: Option<&str>,
    lo: Bound<&[Value]>,
    hi: Bound<&[Value]>,
) -> Result<Executor> {
    use crate::planner::PathKind;
    Ok(match kind {
        PathKind::Seq => Box::new(SeqScan::new(table)),
        PathKind::Cluster => Box::new(table.cluster_range_stream(lo, hi)?),
        PathKind::Index => {
            let name = index.ok_or_else(|| {
                StoreError::NotFound("index path chosen without an index name".into())
            })?;
            Box::new(IndexRangeScan::new(table, name, lo, hi))
        }
    })
}

/// Drain an executor into rows, surfacing the first error.
pub fn collect_rows(exec: impl Iterator<Item = RowResult>) -> Result<Vec<Row>> {
    exec.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Database, StorageKind};
    use crate::expr::BinOp;
    use crate::value::{DataType, Field, Schema};

    fn fns() -> Arc<FnRegistry> {
        Arc::new(FnRegistry::new())
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Str(format!("r{i}"))])
            .collect()
    }

    fn boxed(rows: Vec<Row>) -> Executor {
        Box::new(SeqScan::from_rows(rows))
    }

    #[test]
    fn filter_project_pipeline() {
        let plan = Project::new(
            Box::new(Filter::new(
                boxed(rows(10)),
                Expr::bin(BinOp::Ge, Expr::col(0), Expr::lit(Value::Int(7))),
                fns(),
            )),
            vec![Expr::col(1)],
            fns(),
        );
        let out = collect_rows(plan).unwrap();
        assert_eq!(
            out,
            vec![
                vec![Value::Str("r7".into())],
                vec![Value::Str("r8".into())],
                vec![Value::Str("r9".into())]
            ]
        );
    }

    #[test]
    fn sort_ascending_descending() {
        let input = vec![
            vec![Value::Int(2)],
            vec![Value::Int(0)],
            vec![Value::Int(1)],
        ];
        let asc = Sort::new(boxed(input.clone()), vec![(Expr::col(0), true)], fns());
        let got: Vec<i64> = collect_rows(asc)
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(got, vec![0, 1, 2]);
        let desc = Sort::new(boxed(input), vec![(Expr::col(0), false)], fns());
        let got: Vec<i64> = collect_rows(desc)
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(got, vec![2, 1, 0]);
    }

    #[test]
    fn limit_stops_early() {
        let out = collect_rows(Limit::new(boxed(rows(100)), 3)).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn nested_loop_join_arbitrary_condition() {
        let left = vec![vec![Value::Int(1)], vec![Value::Int(5)]];
        let right = vec![vec![Value::Int(3)], vec![Value::Int(7)]];
        // join where l.0 < r.0
        let j = NestedLoopJoin::new(
            boxed(left),
            boxed(right),
            Expr::bin(BinOp::Lt, Expr::col(0), Expr::col(1)),
            fns(),
        );
        let out = collect_rows(j).unwrap();
        assert_eq!(out.len(), 3); // (1,3) (1,7) (5,7)
    }

    #[test]
    fn sort_merge_join_with_duplicates() {
        let left = vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(2), Value::Str("b".into())],
            vec![Value::Int(2), Value::Str("c".into())],
            vec![Value::Int(3), Value::Str("d".into())],
        ];
        let right = vec![
            vec![Value::Int(2), Value::Str("x".into())],
            vec![Value::Int(2), Value::Str("y".into())],
            vec![Value::Int(4), Value::Str("z".into())],
        ];
        let j = SortMergeJoin::new(boxed(left), boxed(right), 0, 0);
        let out = collect_rows(j).unwrap();
        assert_eq!(out.len(), 4, "2x2 cross product on key 2");
        for row in &out {
            assert_eq!(row[0], Value::Int(2));
            assert_eq!(row[2], Value::Int(2));
        }
    }

    #[test]
    fn sort_merge_join_null_keys_dropped() {
        let left = vec![vec![Value::Null], vec![Value::Int(1)]];
        let right = vec![vec![Value::Null], vec![Value::Int(1)]];
        let j = SortMergeJoin::new(boxed(left), boxed(right), 0, 0);
        assert_eq!(collect_rows(j).unwrap().len(), 1);
    }

    #[test]
    fn group_aggregate_all_functions() {
        // Rows: (g, v) with NULL v mixed in.
        let input = vec![
            vec![Value::Str("a".into()), Value::Int(10)],
            vec![Value::Str("a".into()), Value::Int(20)],
            vec![Value::Str("a".into()), Value::Null],
            vec![Value::Str("b".into()), Value::Int(5)],
        ];
        let aggs = vec![
            AggSpec {
                func: AggFunc::Count,
                arg: Expr::col(1),
            },
            AggSpec {
                func: AggFunc::CountStar,
                arg: Expr::col(1),
            },
            AggSpec {
                func: AggFunc::Sum,
                arg: Expr::col(1),
            },
            AggSpec {
                func: AggFunc::Avg,
                arg: Expr::col(1),
            },
            AggSpec {
                func: AggFunc::Min,
                arg: Expr::col(1),
            },
            AggSpec {
                func: AggFunc::Max,
                arg: Expr::col(1),
            },
        ];
        let g = GroupAggregate::new(boxed(input), vec![Expr::col(0)], aggs, fns());
        let out = collect_rows(g).unwrap();
        assert_eq!(out.len(), 2);
        let a = &out[0];
        assert_eq!(a[0], Value::Str("a".into()));
        assert_eq!(a[1], Value::Int(2), "COUNT skips NULL");
        assert_eq!(a[2], Value::Int(3), "COUNT(*) does not");
        assert_eq!(a[3], Value::Int(30));
        assert_eq!(a[4], Value::Double(15.0));
        assert_eq!(a[5], Value::Int(10));
        assert_eq!(a[6], Value::Int(20));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let aggs = vec![
            AggSpec {
                func: AggFunc::CountStar,
                arg: Expr::col(0),
            },
            AggSpec {
                func: AggFunc::Sum,
                arg: Expr::col(0),
            },
        ];
        let g = GroupAggregate::new(boxed(vec![]), vec![], aggs, fns());
        let out = collect_rows(g).unwrap();
        assert_eq!(out, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn scans_work_against_real_tables() {
        let db = Database::in_memory();
        let t = db
            .create_table(
                "t",
                Schema::new(vec![
                    Field::new("id", DataType::Int),
                    Field::new("v", DataType::Int),
                ]),
                StorageKind::Heap,
                &[],
            )
            .unwrap();
        t.create_index("by_id", &["id"]).unwrap();
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        let all = collect_rows(SeqScan::new(&t)).unwrap();
        assert_eq!(all.len(), 100);
        let lo = [Value::Int(10)];
        let hi = [Value::Int(12)];
        let some = collect_rows(IndexRangeScan::new(
            &t,
            "by_id",
            Bound::Included(&lo[..]),
            Bound::Included(&hi[..]),
        ))
        .unwrap();
        assert_eq!(some.len(), 3);
        // Unknown index surfaces as an error, not silence.
        let bad: Vec<_> = IndexRangeScan::new(&t, "nope", Bound::Unbounded, Bound::Unbounded)
            .collect::<Result<Vec<_>>>()
            .err()
            .into_iter()
            .collect();
        assert_eq!(bad.len(), 1);
    }
}
