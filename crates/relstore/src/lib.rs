//! An embedded relational storage engine — the RDBMS substrate under
//! ArchIS.
//!
//! The paper runs ArchIS on DB2 and on ATLaS (a compact RDBMS over
//! BerkeleyDB). Neither is available here, so this crate implements the
//! relevant machinery from scratch:
//!
//! * [`page`] — 4 KiB slotted pages,
//! * [`pager`] — page files (in-memory or on disk),
//! * [`buffer`] — a pinning buffer pool with LRU eviction and logical /
//!   physical I/O counters (the deterministic stand-in for the paper's
//!   cold-cache measurements),
//! * [`btree`] — a B+tree over order-preserving byte-encoded keys, used
//!   both as a secondary index and as clustered primary storage
//!   (BerkeleyDB-style),
//! * [`heap`] — chained heap files (DB2-style base tables),
//! * [`table`] / [`catalog`] — typed tables with automatic index
//!   maintenance,
//! * [`exec`] — an iterator (Volcano-style) executor: scans, filter,
//!   project, sort, sort-merge and nested-loop joins, grouped aggregation,
//! * [`expr`] — row expressions with a scalar UDF registry (the paper's
//!   temporal built-ins plug in here).
//!
//! Two table layouts mirror the paper's two backends: heap storage plus
//! secondary B+tree indexes ("ArchIS-DB2") and clustered B+tree primary
//! storage ("ArchIS-ATLaS"), whose extra storage overhead the paper calls
//! out in its Figure 11.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod btree;
pub mod buffer;

/// Process-wide switch for multi-threaded segment scans.
///
/// Parallel fan-out must produce results identical to the sequential scan
/// order, so callers (the SQL planner, the compressed-store queries) check
/// this flag and fall back to single-threaded scans when it is off —
/// useful for debugging and for apples-to-apples I/O measurements.
pub mod parallel {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Enable or disable parallel segment scans (default: enabled).
    pub fn set_parallel_scans(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether parallel segment scans are currently enabled.
    pub fn parallel_scans_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }
}
pub mod catalog;
pub mod exec;
pub mod expr;
pub mod failpoint;
pub mod heap;
pub mod page;
pub mod pager;
pub mod planner;
pub mod prefetch;
pub mod table;
pub mod value;
pub mod wal;

pub use btree::BTree;
pub use buffer::{BufferPool, IoStats};
pub use catalog::{Database, Snapshot, StorageKind};
pub use exec::{
    Executor, Filter, GroupAggregate, IndexRangeScan, Limit, NestedLoopJoin, Project, Row, SeqScan,
    Sort, SortMergeJoin,
};
pub use expr::{AggFunc, BinOp, Expr, ScalarFn, UnOp};
pub use failpoint::{
    flip_bit_at, BitRot, FailChannel, FailLog, FailPager, Failpoints, FlippedBit, ShipmentFate,
};
pub use heap::{HeapFile, RecordId};
pub use page::{PageId, PAGE_SIZE};
pub use pager::{FilePager, MemPager, PageFileLayout, Pager, SnapshotPager, PAGE_FORMAT_VERSION};
pub use planner::{ForcedPath, PlanEntry, SegStat, TableProfile};
pub use table::{IndexDef, Table, TableCheck};
pub use value::{
    decode_row, decode_row_into, encode_key, encode_row, DataType, Field, Schema, Value,
};
pub use wal::{
    crc32, encode_record, FileLog, LogFile, MemLog, RecordScan, RecoveryInfo, RecoveryStop,
    ScannedRecord, WalConfig, WalPager, WalStats, WAL_HEADER_LEN, WAL_REC_COMMIT, WAL_REC_PAGE,
};

use std::fmt;

/// What kind of on-disk object a [`StoreError::Corrupt`] error refers to.
///
/// Classification lets readers react per object instead of giving up on
/// any decode failure: a corrupt secondary-index page can fall back to a
/// base-storage scan, a corrupt compressed block can be quarantined, and
/// `archis-fsck` can decide between "repairable" (index, counters) and
/// "report-only" (heap, catalog) damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptObject {
    /// A raw page failed its checksum (or basic framing) before any typed
    /// decode was attempted.
    Page,
    /// A heap page or heap record id.
    Heap,
    /// A B+tree node (secondary index or clustered primary storage).
    BTree,
    /// The durable catalog (table roots, schemas, counters).
    Catalog,
    /// A table whose in-memory structure contradicts its declared layout.
    Table,
    /// A secondary index that diverged from its base storage.
    Index,
    /// An encoded row (value codec).
    Row,
    /// A compressed BlockZIP block.
    Block,
}

impl fmt::Display for CorruptObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CorruptObject::Page => "page",
            CorruptObject::Heap => "heap",
            CorruptObject::BTree => "btree",
            CorruptObject::Catalog => "catalog",
            CorruptObject::Table => "table",
            CorruptObject::Index => "index",
            CorruptObject::Row => "row",
            CorruptObject::Block => "block",
        };
        f.write_str(s)
    }
}

/// Unified error type for the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A record or key was larger than a page can hold.
    RecordTooLarge(usize),
    /// Unknown table, column or index name.
    NotFound(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// A row did not match the table schema.
    SchemaMismatch(String),
    /// Corrupted on-disk data, classified by object so callers (query
    /// fallbacks, quarantine, `archis-fsck`) can match on what broke and
    /// where instead of parsing a message string.
    Corrupt {
        /// The page the damage was detected on, when known.
        page_id: Option<page::PageId>,
        /// What kind of object the damaged bytes belong to.
        object: CorruptObject,
        /// Human-readable detail of the specific failure.
        kind: String,
    },
    /// Underlying I/O failure.
    Io(String),
    /// Expression evaluation failure (type error, unknown function, ...).
    Eval(String),
}

impl StoreError {
    /// A [`StoreError::Corrupt`] with no page attribution (the damage was
    /// detected in decoded data, not on a specific page).
    pub fn corrupt(object: CorruptObject, kind: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            page_id: None,
            object,
            kind: kind.into(),
        }
    }

    /// A [`StoreError::Corrupt`] attributed to a specific page.
    pub fn corrupt_at(
        page_id: page::PageId,
        object: CorruptObject,
        kind: impl Into<String>,
    ) -> StoreError {
        StoreError::Corrupt {
            page_id: Some(page_id),
            object,
            kind: kind.into(),
        }
    }

    /// Whether this error reports corruption (of any object kind).
    pub fn is_corrupt(&self) -> bool {
        matches!(self, StoreError::Corrupt { .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds page capacity"),
            StoreError::NotFound(s) => write!(f, "not found: {s}"),
            StoreError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            StoreError::SchemaMismatch(s) => write!(f, "schema mismatch: {s}"),
            StoreError::Corrupt {
                page_id,
                object,
                kind,
            } => match page_id {
                Some(id) => write!(f, "corrupt {object} data at page {id}: {kind}"),
                None => write!(f, "corrupt {object} data: {kind}"),
            },
            StoreError::Io(s) => write!(f, "i/o error: {s}"),
            StoreError::Eval(s) => write!(f, "evaluation error: {s}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
