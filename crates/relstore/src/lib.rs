//! An embedded relational storage engine — the RDBMS substrate under
//! ArchIS.
//!
//! The paper runs ArchIS on DB2 and on ATLaS (a compact RDBMS over
//! BerkeleyDB). Neither is available here, so this crate implements the
//! relevant machinery from scratch:
//!
//! * [`page`] — 4 KiB slotted pages,
//! * [`pager`] — page files (in-memory or on disk),
//! * [`buffer`] — a pinning buffer pool with LRU eviction and logical /
//!   physical I/O counters (the deterministic stand-in for the paper's
//!   cold-cache measurements),
//! * [`btree`] — a B+tree over order-preserving byte-encoded keys, used
//!   both as a secondary index and as clustered primary storage
//!   (BerkeleyDB-style),
//! * [`heap`] — chained heap files (DB2-style base tables),
//! * [`table`] / [`catalog`] — typed tables with automatic index
//!   maintenance,
//! * [`exec`] — an iterator (Volcano-style) executor: scans, filter,
//!   project, sort, sort-merge and nested-loop joins, grouped aggregation,
//! * [`expr`] — row expressions with a scalar UDF registry (the paper's
//!   temporal built-ins plug in here).
//!
//! Two table layouts mirror the paper's two backends: heap storage plus
//! secondary B+tree indexes ("ArchIS-DB2") and clustered B+tree primary
//! storage ("ArchIS-ATLaS"), whose extra storage overhead the paper calls
//! out in its Figure 11.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod btree;
pub mod buffer;

/// Process-wide switch for multi-threaded segment scans.
///
/// Parallel fan-out must produce results identical to the sequential scan
/// order, so callers (the SQL planner, the compressed-store queries) check
/// this flag and fall back to single-threaded scans when it is off —
/// useful for debugging and for apples-to-apples I/O measurements.
pub mod parallel {
    use std::sync::atomic::{AtomicBool, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Enable or disable parallel segment scans (default: enabled).
    pub fn set_parallel_scans(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether parallel segment scans are currently enabled.
    pub fn parallel_scans_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }
}
pub mod catalog;
pub mod exec;
pub mod expr;
pub mod failpoint;
pub mod heap;
pub mod page;
pub mod pager;
pub mod table;
pub mod value;
pub mod wal;

pub use btree::BTree;
pub use buffer::{BufferPool, IoStats};
pub use catalog::{Database, StorageKind};
pub use exec::{
    Executor, Filter, GroupAggregate, IndexRangeScan, Limit, NestedLoopJoin, Project, Row, SeqScan,
    Sort, SortMergeJoin,
};
pub use expr::{AggFunc, BinOp, Expr, ScalarFn, UnOp};
pub use failpoint::{FailLog, FailPager, Failpoints};
pub use heap::{HeapFile, RecordId};
pub use page::{PageId, PAGE_SIZE};
pub use pager::{FilePager, MemPager, Pager};
pub use table::{IndexDef, Table};
pub use value::{decode_row, encode_key, encode_row, DataType, Field, Schema, Value};
pub use wal::{
    FileLog, LogFile, MemLog, RecoveryInfo, RecoveryStop, WalConfig, WalPager, WalStats,
};

use std::fmt;

/// Unified error type for the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A record or key was larger than a page can hold.
    RecordTooLarge(usize),
    /// Unknown table, column or index name.
    NotFound(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// A row did not match the table schema.
    SchemaMismatch(String),
    /// Corrupted on-page data.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(String),
    /// Expression evaluation failure (type error, unknown function, ...).
    Eval(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::RecordTooLarge(n) => write!(f, "record of {n} bytes exceeds page capacity"),
            StoreError::NotFound(s) => write!(f, "not found: {s}"),
            StoreError::AlreadyExists(s) => write!(f, "already exists: {s}"),
            StoreError::SchemaMismatch(s) => write!(f, "schema mismatch: {s}"),
            StoreError::Corrupt(s) => write!(f, "corrupt page data: {s}"),
            StoreError::Io(s) => write!(f, "i/o error: {s}"),
            StoreError::Eval(s) => write!(f, "evaluation error: {s}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
