//! Crash torture for the I/O pipeline (feature `failpoints`): the
//! overlapped WAL commit pipeline, background writeback, and prefetch all
//! move I/O onto background threads — these tests prove the move is
//! invisible to durability. The WAL writer thread performs the same log
//! operations in the same global order as the synchronous path, so a
//! crash armed at the Nth write recovers to the *same* commit-prefix with
//! the pipeline on or off; writeback and prefetch never touch the fault
//! schedule at all (staged page writes stay in memory, reads are not
//! counted), so they cannot shift a seeded crash position. Run via
//! `cargo test -p relstore --features failpoints` (wired into
//! scripts/ci.sh).
#![cfg(feature = "failpoints")]

use relstore::failpoint::{is_crash, FailLog, FailPager, Failpoints};
use relstore::pager::MemPager;
use relstore::value::{DataType, Field, Schema, Value};
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, StorageKind, StoreError};
use std::ops::Bound;
use std::sync::Arc;

const TXNS: i64 = 30;
const CHECKPOINT_AT: i64 = 15;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("v", DataType::Str),
    ])
}

struct Media {
    fp: Arc<Failpoints>,
    base: Arc<FailPager>,
    log: Arc<FailLog>,
}

fn media(seed: u64) -> Media {
    let fp = Failpoints::new(seed);
    let base = Arc::new(FailPager::new(fp.clone(), Arc::new(MemPager::new())));
    let log = Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new())));
    Media { fp, base, log }
}

/// Feature knobs for one workload run.
#[derive(Clone, Copy)]
struct Knobs {
    batch: usize,
    pipeline: bool,
    writeback: bool,
}

/// Same workload as `crash_torture.rs` — one insert + commit per
/// transaction, a checkpoint in the middle and at the end — but with the
/// pipeline/writeback services switchable.
fn workload(m: &Media, k: Knobs) -> Result<(), StoreError> {
    let cfg = WalConfig::with_group_commit(k.batch).pipelined(k.pipeline);
    let pager = Arc::new(WalPager::open(m.base.clone(), m.log.clone(), cfg)?);
    let pool = Arc::new(BufferPool::new(pager, 64));
    if k.writeback {
        pool.enable_writeback();
    }
    let db = Database::open_pool(pool)?;
    let t = db.create_table("t", schema(), StorageKind::Heap, &[])?;
    for i in 0..TXNS {
        t.insert(vec![Value::Int(i), Value::Str(format!("v{i}"))])?;
        db.commit()?;
        if i == CHECKPOINT_AT {
            db.checkpoint()?;
        }
    }
    db.checkpoint()?;
    Ok(())
}

/// Recover (always in plain synchronous mode) and check the store holds a
/// commit-prefix; returns how many transactions survived.
fn assert_prefix_consistent(m: &Media, ctx: &str) -> i64 {
    assert_prefix_consistent_upto(m, ctx, TXNS)
}

fn assert_prefix_consistent_upto(m: &Media, ctx: &str, max_rows: i64) -> i64 {
    let pager = Arc::new(
        WalPager::open(
            m.base.clone(),
            m.log.clone(),
            WalConfig::with_group_commit(1),
        )
        .unwrap_or_else(|e| panic!("{ctx}: recovery open failed: {e}")),
    );
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 64)))
        .unwrap_or_else(|e| panic!("{ctx}: catalog reload failed: {e}"));
    let Ok(t) = db.table("t") else {
        return 0;
    };
    let rows = t
        .scan()
        .unwrap_or_else(|e| panic!("{ctx}: scan failed: {e}"));
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r[0],
            Value::Int(i as i64),
            "{ctx}: rows are not a commit-prefix: {rows:?}"
        );
        assert_eq!(r[1], Value::Str(format!("v{i}")), "{ctx}: torn row content");
    }
    assert!(
        rows.len() as i64 <= max_rows,
        "{ctx}: more rows than ever inserted"
    );
    rows.len() as i64
}

/// The core equivalence claim: the pipelined WAL performs exactly the same
/// fault-injection operations in exactly the same global order as the
/// synchronous WAL — even though they now come from the wal-writer thread
/// — so killing the machine at every write position recovers to the same
/// prefix either way. This also proves the seeded counters are global
/// across threads, not per-thread (the armed positions fire from the
/// worker).
#[test]
fn pipelined_crash_sweep_matches_synchronous_recovery() {
    let sync_knobs = Knobs {
        batch: 1,
        pipeline: false,
        writeback: false,
    };
    let pipe_knobs = Knobs {
        batch: 1,
        pipeline: true,
        writeback: true,
    };

    // Dry runs: identical op counts is the precondition for a 1:1 sweep.
    let dry_sync = media(0);
    workload(&dry_sync, sync_knobs).expect("sync dry run must not crash");
    let dry_pipe = media(0);
    workload(&dry_pipe, pipe_knobs).expect("pipelined dry run must not crash");
    assert_eq!(
        dry_sync.fp.writes(),
        dry_pipe.fp.writes(),
        "pipeline must not add, drop, or reorder write ops"
    );
    assert_eq!(
        dry_sync.fp.syncs(),
        dry_pipe.fp.syncs(),
        "pipeline must not add or drop fsyncs"
    );
    let total_writes = dry_sync.fp.writes();
    assert!(total_writes > 50, "workload too small to be interesting");

    let mut distinct = std::collections::BTreeSet::new();
    for n in 1..=total_writes {
        let ms = media(n);
        ms.fp.crash_after_writes(n);
        let err = workload(&ms, sync_knobs).expect_err("armed crash must fire (sync)");
        assert!(is_crash(&err), "sync write {n}: unexpected error {err}");
        ms.fp.revive();
        let k_sync = assert_prefix_consistent(&ms, &format!("sync crash at write {n}"));

        let mp = media(n);
        mp.fp.crash_after_writes(n);
        let err = workload(&mp, pipe_knobs).expect_err("armed crash must fire (pipelined)");
        assert!(
            is_crash(&err),
            "pipelined write {n}: unexpected error {err}"
        );
        mp.fp.revive();
        let k_pipe = assert_prefix_consistent(&mp, &format!("pipelined crash at write {n}"));

        assert_eq!(
            k_sync, k_pipe,
            "crash at write {n}: pipelined recovery diverged from synchronous"
        );
        distinct.insert(k_pipe);
    }
    assert!(
        distinct.len() > 5,
        "sweep recovered only {distinct:?} distinct prefixes"
    );
    assert!(distinct.contains(&TXNS), "late crashes keep everything");
}

/// Crash-after-fsync sweep with the pipeline on: the Nth fsync now happens
/// on the wal-writer thread, but the durability guarantee is unchanged.
#[test]
fn pipelined_crash_at_every_sync_recovers_to_a_commit_prefix() {
    let knobs = Knobs {
        batch: 1,
        pipeline: true,
        writeback: false,
    };
    let dry = media(0);
    workload(&dry, knobs).expect("dry run must not crash");
    let total_syncs = dry.fp.syncs();
    assert!(
        total_syncs >= TXNS as u64,
        "fsync-per-commit implies one sync per txn"
    );
    for n in 1..=total_syncs {
        let m = media(2000 + n);
        m.fp.crash_after_syncs(n);
        let err = workload(&m, knobs).expect_err("armed crash must fire");
        assert!(is_crash(&err), "sync {n}: unexpected error {err}");
        m.fp.revive();
        assert_prefix_consistent(&m, &format!("pipelined crash at sync {n}"));
    }
}

/// Seeded random sweep with everything on at once: pipeline, background
/// writeback, group commit, and torn writes.
#[test]
fn random_crashes_with_pipeline_writeback_and_tearing() {
    for seed in 0..200u64 {
        let m = media(seed);
        m.fp.set_tear_writes(seed % 3 != 0);
        let knobs = Knobs {
            batch: [1usize, 4, 8][(seed % 3) as usize],
            pipeline: true,
            writeback: seed % 2 == 0,
        };
        let pos = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % 400 + 1;
        m.fp.crash_after_writes(pos);
        match workload(&m, knobs) {
            Ok(()) => {} // crash point landed past the workload's writes
            Err(e) => assert!(is_crash(&e), "seed {seed}: unexpected error {e}"),
        }
        m.fp.revive();
        assert_prefix_consistent(&m, &format!("seed {seed} pos {pos} batch {}", knobs.batch));
    }
}

/// Determinism across reruns: the same seed and the same armed position
/// must reach the same recovered state even with background threads in
/// play (the whole point of routing every op through one global counter).
#[test]
fn pipelined_crashes_replay_bit_for_bit() {
    let run = |seed: u64, pos: u64| -> i64 {
        let m = media(seed);
        m.fp.crash_after_writes(pos);
        let knobs = Knobs {
            batch: 4,
            pipeline: true,
            writeback: true,
        };
        match workload(&m, knobs) {
            Ok(()) => {}
            Err(e) => assert!(is_crash(&e), "seed {seed}: unexpected error {e}"),
        }
        m.fp.revive();
        assert_prefix_consistent(&m, &format!("replay seed {seed} pos {pos}"))
    };
    for seed in [3u64, 17, 99] {
        for pos in [10u64, 60, 150, 300] {
            assert_eq!(run(seed, pos), run(seed, pos), "seed {seed} pos {pos}");
        }
    }
}

/// Build a store with a clustered table and an indexed heap table on the
/// given media; returns nothing — callers reopen it for scanning.
fn build_scan_fixture(m: &Media, rows: i64) {
    let pager = Arc::new(
        WalPager::open(
            m.base.clone(),
            m.log.clone(),
            WalConfig::with_group_commit(8),
        )
        .unwrap(),
    );
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 64))).unwrap();
    let c = db
        .create_table("c", schema(), StorageKind::Clustered, &["id"])
        .unwrap();
    let h = db
        .create_table("h", schema(), StorageKind::Heap, &[])
        .unwrap();
    h.create_index("h_by_id", &["id"]).unwrap();
    for i in 0..rows {
        c.insert(vec![Value::Int(i), Value::Str(format!("c{i:04}"))])
            .unwrap();
        h.insert(vec![Value::Int(i), Value::Str(format!("h{i:04}"))])
            .unwrap();
        if i % 16 == 15 {
            db.commit().unwrap();
        }
    }
    db.commit().unwrap();
    db.checkpoint().unwrap();
}

/// Scan both tables through a small (cold) pool, optionally with prefetch.
/// Returns every row seen, in stream order, plus the write-op count delta.
fn scan_fixture(m: &Media, prefetch: bool) -> (Vec<Vec<Value>>, u64) {
    let writes_before = m.fp.writes();
    let pager = Arc::new(
        WalPager::open(
            m.base.clone(),
            m.log.clone(),
            WalConfig::with_group_commit(8),
        )
        .unwrap(),
    );
    let pool = Arc::new(BufferPool::new(pager, 8));
    if prefetch {
        pool.enable_prefetch();
    }
    let db = Database::open_pool(pool.clone()).unwrap();
    let mut out = Vec::new();
    let c = db.table("c").unwrap();
    for row in c
        .cluster_range_stream(Bound::Unbounded, Bound::Unbounded)
        .unwrap()
    {
        out.push(row.unwrap());
    }
    let h = db.table("h").unwrap();
    let lo = [Value::Int(100)];
    let hi = [Value::Int(900)];
    let stream = h
        .index_range_stream(
            "h_by_id",
            Bound::Included(&lo[..]),
            Bound::Included(&hi[..]),
        )
        .unwrap();
    for row in stream {
        out.push(row.unwrap());
    }
    if prefetch {
        pool.prefetch_quiesce();
        let stats = pool.stats();
        assert!(
            stats.prefetch_issued > 0,
            "cold scans over an 8-frame pool must actually prefetch: {stats:?}"
        );
    }
    (out, m.fp.writes() - writes_before)
}

/// Prefetch identity: the exact same rows in the exact same order with
/// readahead on or off, and — because prefetch reads are not counted by
/// the fault schedule — zero extra write ops, so armed crash positions in
/// other tests can never be shifted by readahead.
#[test]
fn prefetch_is_invisible_to_results_and_crash_schedule() {
    let m_off = media(7);
    build_scan_fixture(&m_off, 1200);
    let (rows_off, writes_off) = scan_fixture(&m_off, false);

    let m_on = media(7);
    build_scan_fixture(&m_on, 1200);
    let (rows_on, writes_on) = scan_fixture(&m_on, true);

    assert_eq!(rows_off.len(), rows_on.len(), "row count diverged");
    assert_eq!(rows_off, rows_on, "prefetch changed scan results");
    assert_eq!(
        writes_off, writes_on,
        "prefetch must not perform write ops visible to the fault schedule"
    );
}

/// Quiesce under load: pause/resume the background flusher repeatedly
/// while a writer thread commits, then verify nothing was lost or torn.
#[test]
fn writeback_quiesce_under_load_loses_nothing() {
    let m = media(23);
    let pager = Arc::new(
        WalPager::open(
            m.base.clone(),
            m.log.clone(),
            WalConfig::with_group_commit(4).pipelined(true),
        )
        .unwrap(),
    );
    let pool = Arc::new(BufferPool::new(pager, 64));
    pool.enable_writeback();
    let db = Arc::new(Database::open_pool(pool.clone()).unwrap());
    let t = db
        .create_table("t", schema(), StorageKind::Heap, &[])
        .unwrap();

    const N: i64 = 400;
    let writer = {
        let db = db.clone();
        let t = t.clone();
        std::thread::spawn(move || {
            for i in 0..N {
                t.insert(vec![Value::Int(i), Value::Str(format!("v{i}"))])
                    .unwrap();
                if i % 4 == 3 {
                    db.commit().unwrap();
                }
            }
            db.commit().unwrap();
        })
    };
    // Hammer the quiesce protocol while the writer runs.
    for _ in 0..50 {
        pool.quiesce_writeback();
        pool.resume_writeback();
        std::thread::yield_now();
    }
    writer.join().expect("writer thread panicked");
    db.checkpoint().unwrap();
    drop(db);
    drop(pool);

    let k = assert_prefix_consistent_upto(&m, "quiesce under load", N);
    assert_eq!(k, N, "every committed row must survive");
}

/// MVCC × pipeline: snapshot readers pin commits while the writer runs
/// with the overlapped WAL pipeline, background writeback, and prefetch
/// all enabled over a deliberately tiny pool (evictions force mid-
/// transaction `write_page` calls — the copy-on-write path). Each commit
/// appends exactly one row, so every consistent view is a contiguous
/// prefix: a reader that ever sees a gap caught a torn or uncommitted
/// frame leaking through writeback or prefetch; a pinned view that
/// changes between two scans caught post-snapshot data reaching a
/// supposedly frozen page.
#[test]
fn background_services_never_leak_post_snapshot_state_into_pins() {
    let m = media(77);
    let pager = Arc::new(
        WalPager::open(
            m.base.clone(),
            m.log.clone(),
            WalConfig::with_group_commit(2).pipelined(true),
        )
        .unwrap(),
    );
    let pool = Arc::new(BufferPool::new(pager, 16));
    pool.enable_writeback();
    pool.enable_prefetch();
    let db = Database::open_pool(pool).unwrap();
    let t = db
        .create_table("t", schema(), StorageKind::Heap, &[])
        .unwrap();
    db.commit().unwrap();

    const N: i64 = 300;
    let done = std::sync::atomic::AtomicBool::new(false);
    let checks = std::sync::atomic::AtomicU64::new(0);
    let dbr = &db;
    let tr = &t;
    let done = &done;
    let checks = &checks;
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(move || {
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let snap = dbr.begin_snapshot().expect("pin on healthy media");
                    let read_prefix = || -> Vec<i64> {
                        let mut ks: Vec<i64> = snap
                            .database()
                            .table("t")
                            .unwrap()
                            .scan()
                            .unwrap()
                            .into_iter()
                            .map(|r| r[0].as_int().unwrap())
                            .collect();
                        ks.sort_unstable();
                        ks
                    };
                    let first = read_prefix();
                    for (i, k) in first.iter().enumerate() {
                        assert_eq!(*k, i as i64, "snapshot saw a non-prefix row set: {first:?}");
                    }
                    // Re-scan through the same pin after the writer has
                    // moved on: must be identical, byte for byte.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    assert_eq!(first, read_prefix(), "pinned view changed underneath us");
                    checks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    drop(snap);
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            });
        }
        for i in 0..N {
            tr.insert(vec![Value::Int(i), Value::Str(format!("v{i}"))])
                .unwrap();
            dbr.commit().unwrap();
            if i == N / 2 {
                dbr.checkpoint().unwrap();
            }
        }
        done.store(true, std::sync::atomic::Ordering::Release);
    });
    assert!(
        checks.load(std::sync::atomic::Ordering::Relaxed) >= 20,
        "readers must have completed a meaningful number of checks"
    );
    // The full store still recovers cleanly afterwards. Tear the writer
    // stack down first so its background threads are quiet before a
    // fresh pager replays the same media.
    db.checkpoint().unwrap();
    drop(t);
    drop(db);
    let k = assert_prefix_consistent_upto(&m, "mvcc pipeline run", N);
    assert_eq!(k, N);
}
