//! Property test: the page-based B+tree behaves like a reference
//! `BTreeMap<Vec<u8>, Vec<Vec<u8>>>` (multimap) under random operation
//! sequences, including range scans at random bounds.

use proptest::prelude::*;
use relstore::{BTree, BufferPool, MemPager};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Action {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>, Vec<u8>),
    Range(Vec<u8>, Vec<u8>),
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..8, 1..5)
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (arb_key(), arb_key()).prop_map(|(k, v)| Action::Insert(k, v)),
        2 => (arb_key(), arb_key()).prop_map(|(k, v)| Action::Delete(k, v)),
        1 => (arb_key(), arb_key()).prop_map(|(a, b)| Action::Range(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_reference_multimap(actions in proptest::collection::vec(arb_action(), 1..300)) {
        let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 128));
        let tree = BTree::create(pool).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
        for action in &actions {
            match action {
                Action::Insert(k, v) => {
                    tree.insert(k, v).unwrap();
                    model.entry(k.clone()).or_default().push(v.clone());
                    model.get_mut(k).unwrap().sort();
                }
                Action::Delete(k, v) => {
                    let removed = tree.delete(k, v).unwrap();
                    let expected = model
                        .get_mut(k)
                        .and_then(|vs| vs.iter().position(|x| x == v).map(|i| {
                            vs.remove(i);
                        }))
                        .is_some();
                    if model.get(k).is_some_and(Vec::is_empty) {
                        model.remove(k);
                    }
                    prop_assert_eq!(removed, expected, "delete({:?},{:?})", k, v);
                }
                Action::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got: Vec<(Vec<u8>, Vec<u8>)> = tree
                        .range(Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
                        .unwrap()
                        .collect();
                    let mut want: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                    for (k, vs) in model.range::<Vec<u8>, _>((
                        Bound::Included(lo),
                        Bound::Excluded(hi),
                    )) {
                        for v in vs {
                            want.push((k.clone(), v.clone()));
                        }
                    }
                    prop_assert_eq!(got, want, "range [{:?}, {:?})", lo, hi);
                }
            }
        }
        // Final full scan agrees.
        let all: Vec<(Vec<u8>, Vec<u8>)> =
            tree.range(Bound::Unbounded, Bound::Unbounded).unwrap().collect();
        let mut want: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (k, vs) in &model {
            for v in vs {
                want.push((k.clone(), v.clone()));
            }
        }
        prop_assert_eq!(all, want);
    }

    #[test]
    fn key_encoding_order_matches_value_order(
        a in proptest::collection::vec(proptest::arbitrary::any::<i64>(), 1..3),
        b in proptest::collection::vec(proptest::arbitrary::any::<i64>(), 1..3),
    ) {
        use relstore::{encode_key, Value};
        let va: Vec<Value> = a.iter().map(|&i| Value::Int(i)).collect();
        let vb: Vec<Value> = b.iter().map(|&i| Value::Int(i)).collect();
        let ka = encode_key(&va);
        let kb = encode_key(&vb);
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b), "encoded order must match int order");
    }
}
