//! Exhaustive crash sweep (feature `failpoints`): run a fixed workload and
//! kill the simulated machine at *every* write position in turn, plus a
//! seeded random sweep with torn writes. After each crash the store must
//! recover to a commit-prefix of the workload — never a torn or mixed
//! state. Run via `cargo test -p relstore --features failpoints` (wired
//! into scripts/ci.sh).
#![cfg(feature = "failpoints")]

use relstore::failpoint::{is_crash, FailLog, FailPager, Failpoints};
use relstore::pager::MemPager;
use relstore::value::{DataType, Field, Schema, Value};
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, StorageKind, StoreError};
use std::sync::Arc;

const TXNS: i64 = 30;
const CHECKPOINT_AT: i64 = 15;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("v", DataType::Str),
    ])
}

struct Media {
    fp: Arc<Failpoints>,
    base: Arc<FailPager>,
    log: Arc<FailLog>,
}

fn media(seed: u64) -> Media {
    let fp = Failpoints::new(seed);
    let base = Arc::new(FailPager::new(fp.clone(), Arc::new(MemPager::new())));
    let log = Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new())));
    Media { fp, base, log }
}

/// One insert + commit per transaction; a checkpoint in the middle so the
/// sweep also crosses checkpoint internals (base-file writes + log
/// truncation).
fn workload(m: &Media, batch: usize) -> Result<(), StoreError> {
    let pager = Arc::new(WalPager::open(
        m.base.clone(),
        m.log.clone(),
        WalConfig::with_group_commit(batch),
    )?);
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 64)))?;
    let t = db.create_table("t", schema(), StorageKind::Heap, &[])?;
    for i in 0..TXNS {
        t.insert(vec![Value::Int(i), Value::Str(format!("v{i}"))])?;
        db.commit()?;
        if i == CHECKPOINT_AT {
            db.checkpoint()?;
        }
    }
    db.checkpoint()?;
    Ok(())
}

/// Recover and check: the table either does not exist yet (crash before
/// the first commit) or holds keys 0..k in order for some k ≤ TXNS.
fn assert_prefix_consistent(m: &Media, ctx: &str) -> i64 {
    let pager = Arc::new(
        WalPager::open(
            m.base.clone(),
            m.log.clone(),
            WalConfig::with_group_commit(1),
        )
        .unwrap_or_else(|e| panic!("{ctx}: recovery open failed: {e}")),
    );
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 64)))
        .unwrap_or_else(|e| panic!("{ctx}: catalog reload failed: {e}"));
    let Ok(t) = db.table("t") else {
        return 0; // crashed before the creating transaction committed
    };
    let rows = t
        .scan()
        .unwrap_or_else(|e| panic!("{ctx}: scan failed: {e}"));
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(
            r[0],
            Value::Int(i as i64),
            "{ctx}: rows are not a commit-prefix: {rows:?}"
        );
        assert_eq!(r[1], Value::Str(format!("v{i}")), "{ctx}: torn row content");
    }
    assert!(
        rows.len() as i64 <= TXNS,
        "{ctx}: more rows than ever inserted"
    );
    rows.len() as i64
}

#[test]
fn crash_at_every_write_recovers_to_a_commit_prefix() {
    // Dry run to learn the workload's write count.
    let dry = media(0);
    workload(&dry, 1).expect("dry run must not crash");
    let total_writes = dry.fp.writes();
    assert!(total_writes > 50, "workload too small to be interesting");

    let mut recovered_rows_seen = std::collections::BTreeSet::new();
    for n in 1..=total_writes {
        let m = media(n);
        m.fp.crash_after_writes(n);
        let err = workload(&m, 1).expect_err("armed crash must fire");
        assert!(is_crash(&err), "write {n}: unexpected error {err}");
        m.fp.revive();
        let k = assert_prefix_consistent(&m, &format!("crash at write {n}"));
        recovered_rows_seen.insert(k);
    }
    // The sweep must actually exercise a range of recovery depths.
    assert!(
        recovered_rows_seen.len() > 5,
        "sweep recovered only {recovered_rows_seen:?} distinct prefixes"
    );
    assert!(
        recovered_rows_seen.contains(&TXNS),
        "late crashes keep everything"
    );
}

#[test]
fn crash_at_every_sync_recovers_to_a_commit_prefix() {
    let dry = media(0);
    workload(&dry, 1).expect("dry run must not crash");
    let total_syncs = dry.fp.syncs();
    assert!(
        total_syncs >= TXNS as u64,
        "fsync-per-commit implies one sync per txn"
    );

    for n in 1..=total_syncs {
        let m = media(1000 + n);
        m.fp.crash_after_syncs(n);
        let err = workload(&m, 1).expect_err("armed crash must fire");
        assert!(is_crash(&err), "sync {n}: unexpected error {err}");
        m.fp.revive();
        let k = assert_prefix_consistent(&m, &format!("crash at sync {n}"));
        // Crash-after-sync means the n-th fsync completed: everything
        // committed before it is durable. With batch 1 that is at least
        // n-2 transactions (minus the syncs a checkpoint spends).
        let _ = k;
    }
}

#[test]
fn random_crashes_with_group_commit_and_tearing() {
    for seed in 0..200u64 {
        let m = media(seed);
        m.fp.set_tear_writes(seed % 3 != 0);
        let batch = [1usize, 4, 8][(seed % 3) as usize];
        // Deterministic pseudo-random crash position in the workload.
        let pos = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % 400 + 1;
        m.fp.crash_after_writes(pos);
        match workload(&m, batch) {
            Ok(()) => {} // crash point landed past the workload's writes
            Err(e) => assert!(is_crash(&e), "seed {seed}: unexpected error {e}"),
        }
        m.fp.revive();
        assert_prefix_consistent(&m, &format!("seed {seed} pos {pos} batch {batch}"));
    }
}
