//! Property tests for MVCC snapshots: a snapshot minted at any commit
//! boundary must stay byte-identical to a shadow model replayed to that
//! same boundary, no matter how far the writer advances afterwards —
//! through further commits, overwrites, deletes, and checkpoints (which
//! fold the WAL into the base file underneath live pins).

use proptest::prelude::*;
use relstore::pager::MemPager;
use relstore::value::{DataType, Field, Schema, Value};
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, Snapshot, StorageKind};
use std::collections::BTreeMap;
use std::sync::Arc;

const TABLES: usize = 3;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ])
}

fn wal_db() -> Database {
    let pager = Arc::new(
        WalPager::open(
            Arc::new(MemPager::new()),
            Arc::new(MemLog::new()),
            WalConfig::with_group_commit(1),
        )
        .unwrap(),
    );
    Database::open_pool(Arc::new(BufferPool::new(pager, 128))).unwrap()
}

/// One committed transaction in the generated workload.
#[derive(Clone, Debug)]
enum Op {
    /// Upsert `k -> v` into table `t`.
    Put(usize, i64, i64),
    /// Delete `k` from table `t` (no-op when absent).
    Del(usize, i64),
    /// Fold the WAL into the base file (runs with pins live).
    Checkpoint,
    /// Pin a snapshot at the current commit and remember what it must say.
    Snapshot,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..TABLES, 0i64..12, -1000i64..1000).prop_map(|(t, k, v)| Op::Put(t, k, v)),
        2 => (0..TABLES, 0i64..12).prop_map(|(t, k)| Op::Del(t, k)),
        1 => Just(Op::Checkpoint),
        3 => Just(Op::Snapshot),
    ]
}

/// Canonical rendering of the shadow model.
fn render_shadow(shadow: &[BTreeMap<i64, i64>]) -> String {
    let mut out = String::new();
    for (t, m) in shadow.iter().enumerate() {
        out.push_str(&format!("t{t}:"));
        for (k, v) in m {
            out.push_str(&format!(" ({k},{v})"));
        }
        out.push('\n');
    }
    out
}

/// Canonical rendering of the live or snapshot database.
fn render_db(db: &Database) -> String {
    let mut out = String::new();
    for t in 0..TABLES {
        let mut rows: Vec<(i64, i64)> = db
            .table(&format!("t{t}"))
            .unwrap()
            .scan()
            .unwrap()
            .into_iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        rows.sort_unstable();
        out.push_str(&format!("t{t}:"));
        for (k, v) in rows {
            out.push_str(&format!(" ({k},{v})"));
        }
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// read(snapshot) ≡ shadow-model replay at the snapshot's commit LSN,
    /// re-checked after every subsequent commit until the run ends.
    #[test]
    fn snapshots_match_shadow_replay(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let db = wal_db();
        for t in 0..TABLES {
            db.create_table(&format!("t{t}"), schema(), StorageKind::Heap, &[]).unwrap();
        }
        db.commit().unwrap();

        let mut shadow: Vec<BTreeMap<i64, i64>> = vec![BTreeMap::new(); TABLES];
        let mut pinned: Vec<(Snapshot, u64, String)> = Vec::new();

        for op in &ops {
            match *op {
                Op::Put(t, k, v) => {
                    let table = db.table(&format!("t{t}")).unwrap();
                    table.delete_where(|r| r[0] == Value::Int(k)).unwrap();
                    table.insert(vec![Value::Int(k), Value::Int(v)]).unwrap();
                    db.commit().unwrap();
                    shadow[t].insert(k, v);
                }
                Op::Del(t, k) => {
                    db.table(&format!("t{t}")).unwrap()
                        .delete_where(|r| r[0] == Value::Int(k)).unwrap();
                    db.commit().unwrap();
                    shadow[t].remove(&k);
                }
                Op::Checkpoint => db.checkpoint().unwrap(),
                Op::Snapshot => {
                    let snap = db.begin_snapshot().unwrap();
                    let lsn = snap.commit_lsn();
                    let want = render_shadow(&shadow);
                    prop_assert_eq!(
                        render_db(snap.database()), want.clone(),
                        "fresh snapshot at LSN {} disagrees with shadow", lsn
                    );
                    pinned.push((snap, lsn, want));
                }
            }
            // Every held snapshot must still read exactly the state it was
            // minted at — the writer's progress must be invisible.
            for (snap, lsn, want) in &pinned {
                prop_assert_eq!(
                    &render_db(snap.database()), want,
                    "snapshot pinned at LSN {} drifted after later commits", lsn
                );
            }
        }

        // The live view agrees with the final shadow state.
        prop_assert_eq!(render_db(&db), render_shadow(&shadow));

        // Dropping pins in mint order exercises the unpin pruning path;
        // survivors must stay intact as earlier pins release.
        while !pinned.is_empty() {
            pinned.remove(0);
            for (snap, lsn, want) in &pinned {
                prop_assert_eq!(
                    &render_db(snap.database()), want,
                    "snapshot at LSN {} drifted after an earlier unpin", lsn
                );
            }
        }
    }
}
