//! Thread-safety smoke tests: tables and the buffer pool are shared
//! behind `Arc` and internal locks; concurrent readers and writers must
//! neither corrupt data nor deadlock.

use crossbeam::thread;
use relstore::{DataType, Database, Field, Schema, StorageKind, Value};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Str),
    ])
}

#[test]
fn concurrent_inserts_land_exactly_once() {
    for kind in [StorageKind::Heap, StorageKind::Clustered] {
        let db = Arc::new(Database::in_memory());
        let t = db.create_table("t", schema(), kind, &["k"]).unwrap();
        t.create_index("by_k", &["k"]).unwrap();
        const THREADS: i64 = 4;
        const PER: i64 = 250;
        thread::scope(|s| {
            for tid in 0..THREADS {
                let t = t.clone();
                s.spawn(move |_| {
                    for i in 0..PER {
                        let k = tid * PER + i;
                        t.insert(vec![Value::Int(k), Value::Str(format!("w{tid}-{i}"))])
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(t.row_count(), (THREADS * PER) as u64);
        assert_eq!(t.scan().unwrap().len(), (THREADS * PER) as usize);
        // Every key findable through the index.
        for k in [0, 1, 499, 999] {
            assert_eq!(
                t.index_lookup("by_k", &[Value::Int(k)]).unwrap().len(),
                1,
                "key {k} under {kind:?}"
            );
        }
    }
}

#[test]
fn readers_run_while_writers_append() {
    let db = Arc::new(Database::in_memory());
    let t = db
        .create_table("t", schema(), StorageKind::Heap, &[])
        .unwrap();
    for i in 0..100 {
        t.insert(vec![Value::Int(i), Value::Str("seed".into())])
            .unwrap();
    }
    thread::scope(|s| {
        let writer = t.clone();
        s.spawn(move |_| {
            for i in 100..400 {
                writer
                    .insert(vec![Value::Int(i), Value::Str("more".into())])
                    .unwrap();
            }
        });
        for _ in 0..3 {
            let reader = t.clone();
            s.spawn(move |_| {
                for _ in 0..20 {
                    let n = reader.scan().unwrap().len();
                    assert!((100..=400).contains(&n), "scan saw {n} rows");
                }
            });
        }
    })
    .unwrap();
    assert_eq!(t.scan().unwrap().len(), 400);
}
