//! Concurrency and eviction-safety tests for the sharded CLOCK buffer pool.
//!
//! The pool is the one structure every layer above hammers from multiple
//! threads once segment scans fan out, so it gets a dedicated stress test
//! (lost-update detection under eviction pressure) and a property test
//! (CLOCK must never evict a frame a caller still holds).

use proptest::prelude::*;
use relstore::pager::MemPager;
use relstore::BufferPool;
use std::collections::HashMap;
use std::sync::Arc;

const THREADS: usize = 8;
const GETS_PER_THREAD: usize = 400;
const PAGES: usize = 256;

/// Eight threads hammer 256 pages through a 128-frame pool (constant
/// eviction on both shards). Each thread owns one byte offset per page and
/// increments it on every visit; evicted dirty frames must be written back,
/// so after the dust settles every increment must still be visible.
#[test]
fn concurrent_gets_lose_no_writes_under_eviction() {
    let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 128));
    assert!(pool.shard_count() > 1, "stress test wants a sharded pool");
    let mut ids = Vec::with_capacity(PAGES);
    for _ in 0..PAGES {
        let (id, frame) = pool.allocate().unwrap();
        frame.write().dirty = true;
        ids.push(id);
    }
    pool.reset_stats();

    let per_thread: Vec<HashMap<u64, u8>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let pool = pool.clone();
                let ids = ids.clone();
                s.spawn(move |_| {
                    // Deterministic per-thread page sequence (xorshift).
                    let mut x = 0x9E37_79B9u64.wrapping_add(tid as u64);
                    let mut counts: HashMap<u64, u8> = HashMap::new();
                    for _ in 0..GETS_PER_THREAD {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let id = ids[(x % PAGES as u64) as usize];
                        let frame = pool.get(id).unwrap();
                        let mut guard = frame.write();
                        guard.data[tid] = guard.data[tid].wrapping_add(1);
                        guard.dirty = true;
                        *counts.entry(id).or_insert(0) += 1;
                    }
                    counts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    let stats = pool.stats();
    assert_eq!(
        stats.logical_reads,
        (THREADS * GETS_PER_THREAD) as u64,
        "every get must count as one logical read"
    );
    assert!(stats.physical_reads <= stats.logical_reads);
    assert!(
        stats.evictions > 0,
        "256 pages through 128 frames must evict"
    );
    assert!(
        stats.writes_evict > 0,
        "dirty victims must be attributed to eviction"
    );
    assert_eq!(
        stats.writes_checkpoint, 0,
        "no explicit flush has run yet, so no checkpoint write-backs"
    );
    assert_eq!(
        stats.physical_writes,
        stats.writes_evict + stats.writes_checkpoint
    );

    pool.flush_all().unwrap();
    let stats = pool.stats();
    assert!(
        stats.writes_checkpoint > 0,
        "flush_all write-backs count as checkpoint writes"
    );
    assert_eq!(
        stats.physical_writes,
        stats.writes_evict + stats.writes_checkpoint,
        "eviction and checkpoint causes must partition total write-backs"
    );
    for &id in &ids {
        let frame = pool.get(id).unwrap();
        let guard = frame.read();
        for (tid, counts) in per_thread.iter().enumerate() {
            let expected = counts.get(&id).copied().unwrap_or(0);
            assert_eq!(
                guard.data[tid], expected,
                "page {id} byte {tid}: lost update under eviction"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CLOCK may only evict unreferenced frames: any frame the caller still
    /// holds an `Arc` to must survive arbitrary allocation pressure, both
    /// as the same in-memory object and with its contents intact.
    #[test]
    fn clock_never_evicts_pinned_frames(
        cap in 8usize..40,
        npin in 1usize..8,
        pressure in 1usize..200,
    ) {
        let pool = BufferPool::new(Arc::new(MemPager::new()), cap);
        let mut pinned = Vec::with_capacity(npin);
        for i in 0..npin {
            let (id, frame) = pool.allocate().unwrap();
            {
                let mut guard = frame.write();
                guard.data[0] = 0xA0 + i as u8;
                guard.dirty = true;
            }
            pinned.push((id, frame)); // keep the Arc alive: the pin
        }
        for _ in 0..pressure {
            let (_, f) = pool.allocate().unwrap();
            drop(f);
        }
        for (i, (id, frame)) in pinned.iter().enumerate() {
            let again = pool.get(*id).unwrap();
            prop_assert!(
                Arc::ptr_eq(frame, &again),
                "pinned frame for page {} was evicted and re-faulted", id
            );
            prop_assert_eq!(again.read().data[0], 0xA0 + i as u8);
        }
    }
}
