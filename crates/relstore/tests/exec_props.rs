//! Property tests for the executor operators against straightforward
//! reference implementations.

use proptest::prelude::*;
use relstore::exec::{collect_rows, Filter, NestedLoopJoin, Row, SeqScan, Sort, SortMergeJoin};
use relstore::expr::{BinOp, Expr, FnRegistry};
use relstore::Value;
use std::sync::Arc;

fn fns() -> Arc<FnRegistry> {
    Arc::new(FnRegistry::new())
}

fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (0i64..8, -50i64..50).prop_map(|(k, v)| vec![Value::Int(k), Value::Int(v)]),
        0..40,
    )
}

proptest! {
    #[test]
    fn filter_matches_retain(rows in arb_rows(), threshold in -50i64..50) {
        let pred = Expr::bin(BinOp::Ge, Expr::col(1), Expr::lit(Value::Int(threshold)));
        let got = collect_rows(Filter::new(
            Box::new(SeqScan::from_rows(rows.clone())),
            pred,
            fns(),
        )).unwrap();
        let want: Vec<Row> = rows
            .into_iter()
            .filter(|r| r[1].as_int().unwrap() >= threshold)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sort_matches_std_sort(rows in arb_rows()) {
        let got = collect_rows(Sort::new(
            Box::new(SeqScan::from_rows(rows.clone())),
            vec![(Expr::col(1), true), (Expr::col(0), false)],
            fns(),
        )).unwrap();
        let mut want = rows;
        want.sort_by(|a, b| {
            a[1].total_cmp(&b[1]).then(b[0].total_cmp(&a[0]))
        });
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sort_merge_join_equals_nested_loop(left in arb_rows(), right in arb_rows()) {
        let smj = collect_rows(SortMergeJoin::new(
            Box::new(SeqScan::from_rows(left.clone())),
            Box::new(SeqScan::from_rows(right.clone())),
            0,
            0,
        )).unwrap();
        let cond = Expr::bin(BinOp::Eq, Expr::col(0), Expr::col(2));
        let nlj = collect_rows(NestedLoopJoin::new(
            Box::new(SeqScan::from_rows(left)),
            Box::new(SeqScan::from_rows(right)),
            cond,
            fns(),
        )).unwrap();
        // Same multiset of output rows (order may differ).
        let norm = |mut v: Vec<Row>| {
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        prop_assert_eq!(norm(smj), norm(nlj));
    }

    #[test]
    fn table_index_agrees_with_scan_filter(
        rows in proptest::collection::vec((0i64..20, 0i64..1000), 1..60),
        probe in 0i64..20,
    ) {
        use relstore::{Database, StorageKind, Schema, Field, DataType};
        for kind in [StorageKind::Heap, StorageKind::Clustered] {
            let db = Database::in_memory();
            let t = db.create_table(
                "t",
                Schema::new(vec![Field::new("k", DataType::Int), Field::new("v", DataType::Int)]),
                kind,
                &["k"],
            ).unwrap();
            t.create_index("by_k", &["k"]).unwrap();
            for (k, v) in &rows {
                t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
            }
            let mut via_index = t.index_lookup("by_k", &[Value::Int(probe)]).unwrap();
            let mut via_scan: Vec<Row> = t
                .scan()
                .unwrap()
                .into_iter()
                .filter(|r| r[0] == Value::Int(probe))
                .collect();
            via_index.sort_by(|a, b| a[1].total_cmp(&b[1]));
            via_scan.sort_by(|a, b| a[1].total_cmp(&b[1]));
            prop_assert_eq!(via_index, via_scan);
        }
    }
}
