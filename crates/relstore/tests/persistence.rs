//! Durable-database tests: create a file-backed database, checkpoint,
//! drop the handle, reopen, and keep working with all data, indexes and
//! counters intact.

use relstore::{DataType, Database, Field, Schema, StorageKind, Value};
use std::ops::Bound;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("relstore-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("name", DataType::Str),
        Field::new("when", DataType::Date),
    ])
}

fn row(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Str(format!("row-{i}")),
        Value::Date(temporal::Date::from_ymd(1995, 1, 1).unwrap() + i as i32),
    ]
}

#[test]
fn checkpoint_and_reopen_heap_and_clustered() {
    let path = tmpfile("mixed.db");
    std::fs::remove_file(&path).ok();
    {
        let db = Database::open_file(&path, 64).unwrap();
        let h = db
            .create_table("heap_t", schema(), StorageKind::Heap, &[])
            .unwrap();
        h.create_index("heap_by_id", &["id"]).unwrap();
        let c = db
            .create_table("clus_t", schema(), StorageKind::Clustered, &["id"])
            .unwrap();
        c.create_index("clus_by_name", &["name"]).unwrap();
        for i in 0..500 {
            h.insert(row(i)).unwrap();
            c.insert(row(i)).unwrap();
        }
        h.delete_where(|r| r[0].as_int().unwrap() % 10 == 0)
            .unwrap();
        db.checkpoint().unwrap();
    }
    {
        let db = Database::open_file(&path, 64).unwrap();
        assert_eq!(
            db.table_names(),
            vec!["clus_t".to_string(), "heap_t".to_string()]
        );
        let h = db.table("heap_t").unwrap();
        let c = db.table("clus_t").unwrap();
        assert_eq!(h.row_count(), 450);
        assert_eq!(c.row_count(), 500);
        // Indexes survived.
        assert_eq!(
            h.index_lookup("heap_by_id", &[Value::Int(11)])
                .unwrap()
                .len(),
            1
        );
        assert!(h
            .index_lookup("heap_by_id", &[Value::Int(10)])
            .unwrap()
            .is_empty());
        assert_eq!(
            c.index_lookup("clus_by_name", &[Value::Str("row-77".into())])
                .unwrap()
                .len(),
            1
        );
        // Clustered range scans still ordered.
        let lo = [Value::Int(100)];
        let hi = [Value::Int(110)];
        let rows = c
            .cluster_range(Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
            .unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0][0], Value::Int(100));
        // Keep writing after reopen, checkpoint again, reopen again.
        for i in 500..600 {
            h.insert(row(i)).unwrap();
            c.insert(row(i)).unwrap();
        }
        db.checkpoint().unwrap();
    }
    {
        let db = Database::open_file(&path, 64).unwrap();
        assert_eq!(db.table("heap_t").unwrap().row_count(), 550);
        assert_eq!(db.table("clus_t").unwrap().row_count(), 600);
        let scanned = db.table("clus_t").unwrap().scan().unwrap();
        assert_eq!(scanned.len(), 600);
        assert_eq!(scanned.last().unwrap()[1], Value::Str("row-599".into()));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_requires_file_backing() {
    let db = Database::in_memory();
    assert!(db.checkpoint().is_err());
}

#[test]
fn unflushed_changes_after_checkpoint_are_lost_but_consistent() {
    let path = tmpfile("partial.db");
    std::fs::remove_file(&path).ok();
    {
        let db = Database::open_file(&path, 64).unwrap();
        let t = db
            .create_table("t", schema(), StorageKind::Heap, &[])
            .unwrap();
        t.insert(row(1)).unwrap();
        db.checkpoint().unwrap();
        // Insert after the checkpoint, then "crash" (drop without
        // checkpoint): the row may or may not reach disk, but reopening
        // must never fail.
        t.insert(row(2)).unwrap();
    }
    {
        let db = Database::open_file(&path, 64).unwrap();
        let t = db.table("t").unwrap();
        let n = t.scan().unwrap().len();
        assert!(n >= 1, "checkpointed row must survive");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_database_roundtrips() {
    let path = tmpfile("empty.db");
    std::fs::remove_file(&path).ok();
    {
        let db = Database::open_file(&path, 64).unwrap();
        db.checkpoint().unwrap();
    }
    {
        let db = Database::open_file(&path, 64).unwrap();
        assert!(db.table_names().is_empty());
    }
    std::fs::remove_file(&path).ok();
}
