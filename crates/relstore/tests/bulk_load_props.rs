//! Property tests: `BTree::bulk_load` over random sorted datasets is
//! observably identical to a tree built by incremental `insert` —
//! byte-identical full scans, point gets, and range scans at random
//! bounds, including duplicate keys — and both trees satisfy the
//! structural invariants (`BTree::verify_structure`).

use proptest::prelude::*;
use relstore::{BTree, BufferPool, MemPager};
use std::ops::Bound;
use std::sync::Arc;

/// Small alphabet + short keys maximize duplicate collisions.
fn arb_entry() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        proptest::collection::vec(0u8..6, 1..4),
        proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..24),
    )
}

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Arc::new(MemPager::new()), 256))
}

fn build_both(entries: &[(Vec<u8>, Vec<u8>)]) -> (BTree, BTree) {
    let mut sorted = entries.to_vec();
    sorted.sort();
    let bulk = BTree::bulk_load(pool(), sorted.clone()).unwrap();
    let inc = BTree::create(pool()).unwrap();
    for (k, v) in &sorted {
        inc.insert(k, v).unwrap();
    }
    (bulk, inc)
}

fn full_scan(t: &BTree) -> Vec<(Vec<u8>, Vec<u8>)> {
    t.range(Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bulk_load_equals_incremental(
        entries in proptest::collection::vec(arb_entry(), 0..600),
        probes in proptest::collection::vec(arb_entry(), 0..8),
    ) {
        let (bulk, inc) = build_both(&entries);
        bulk.verify_structure().unwrap();
        inc.verify_structure().unwrap();

        // Full scans are byte-identical (the sorted input itself).
        let mut want = entries.clone();
        want.sort();
        prop_assert_eq!(full_scan(&bulk), want.clone());
        prop_assert_eq!(full_scan(&inc), want);

        // Point gets and random range scans agree between the two trees.
        for (k, _) in &probes {
            prop_assert_eq!(bulk.get(k).unwrap(), inc.get(k).unwrap(), "get {:?}", k);
        }
        for w in probes.windows(2) {
            let (a, b) = (&w[0].0, &w[1].0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let got: Vec<_> = bulk
                .range(Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
                .unwrap()
                .collect();
            let exp: Vec<_> = inc
                .range(Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
                .unwrap()
                .collect();
            prop_assert_eq!(got, exp, "range [{:?}, {:?})", lo, hi);
        }

        // Packed leaves: bulk never uses more pages than split-built.
        prop_assert!(bulk.page_count().unwrap() <= inc.page_count().unwrap());
    }

    #[test]
    fn bulk_loaded_tree_survives_further_mutation(
        entries in proptest::collection::vec(arb_entry(), 0..300),
        extra in proptest::collection::vec(arb_entry(), 0..100),
    ) {
        let (bulk, inc) = build_both(&entries);
        for (k, v) in &extra {
            bulk.insert(k, v).unwrap();
            inc.insert(k, v).unwrap();
        }
        // Delete half the extras again, from both.
        for (k, v) in extra.iter().step_by(2) {
            prop_assert_eq!(bulk.delete(k, v).unwrap(), inc.delete(k, v).unwrap());
        }
        bulk.verify_structure().unwrap();
        inc.verify_structure().unwrap();
        prop_assert_eq!(full_scan(&bulk), full_scan(&inc));
    }
}
