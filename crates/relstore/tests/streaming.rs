//! Streaming-scan guarantees: early termination bounds physical I/O, and
//! cursors see exactly what a materialized scan sees.

use relstore::exec::SeqScan;
use relstore::{DataType, Database, Field, Schema, StorageKind, Value};

const ROWS: i64 = 10_000;

fn populated(kind: StorageKind) -> Database {
    // Small pool so a full scan cannot hide in cache: pages must be
    // faulted in as the cursor reaches them.
    let db = Database::with_capacity(64);
    let t = db
        .create_table(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("payload", DataType::Str),
            ]),
            kind,
            &["k"],
        )
        .unwrap();
    t.insert_all((0..ROWS).map(|i| vec![Value::Int(i), Value::Str(format!("payload-{i:06}"))]))
        .unwrap();
    db
}

/// `SeqScan` + `take(5)` must not pay full-table cost: the scan pulls
/// pages on demand, so five rows touch a handful of pages, not hundreds.
#[test]
fn seq_scan_with_early_take_does_bounded_io() {
    for kind in [StorageKind::Heap, StorageKind::Clustered] {
        let db = populated(kind);
        let t = db.table("t").unwrap();
        let total_pages = t.page_count().unwrap();
        assert!(
            total_pages > 50,
            "need a multi-page table, got {total_pages}"
        );

        db.pool().flush_all().unwrap();
        db.pool().reset_stats();
        let first5: Vec<_> = SeqScan::new(&t)
            .take(5)
            .collect::<relstore::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(first5.len(), 5);
        let reads = db.pool().stats().physical_reads;
        assert!(
            reads <= 8,
            "{kind:?}: take(5) faulted {reads} pages of a {total_pages}-page table"
        );

        // A full drain from cold really does touch the whole table, so the
        // bound above is meaningful.
        db.pool().flush_all().unwrap();
        db.pool().reset_stats();
        let all: Vec<_> = SeqScan::new(&t)
            .collect::<relstore::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(all.len(), ROWS as usize);
        assert!(db.pool().stats().physical_reads > reads * 4);
    }
}

/// Row-for-row: streaming must be a pure re-expression of the
/// materialized scan, in the same order.
#[test]
fn cursor_iteration_equals_materialized_scan() {
    for kind in [StorageKind::Heap, StorageKind::Clustered] {
        let db = populated(kind);
        let t = db.table("t").unwrap();
        let materialized = t.scan().unwrap();
        let streamed: Vec<_> = t
            .stream()
            .unwrap()
            .collect::<relstore::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(materialized.len(), ROWS as usize);
        assert_eq!(
            streamed, materialized,
            "{kind:?}: stream diverged from scan"
        );
    }
}

/// Index-range streaming agrees with the materialized index range and
/// stays lazy (five rows from a 10k-row range must not drain the index).
#[test]
fn index_stream_matches_index_range() {
    use std::ops::Bound;
    let db = populated(StorageKind::Heap);
    let t = db.table("t").unwrap();
    t.create_index("t_by_k", &["k"]).unwrap();
    let lo = [Value::Int(100)];
    let hi = [Value::Int(9_900)];
    let materialized = t
        .index_range("t_by_k", Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
        .unwrap();
    let streamed: Vec<_> = t
        .index_range_stream("t_by_k", Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
        .unwrap()
        .collect::<relstore::Result<Vec<_>>>()
        .unwrap();
    assert_eq!(streamed, materialized);

    db.pool().flush_all().unwrap();
    db.pool().reset_stats();
    let first5: Vec<_> = t
        .index_range_stream("t_by_k", Bound::Included(&lo[..]), Bound::Excluded(&hi[..]))
        .unwrap()
        .take(5)
        .collect::<relstore::Result<Vec<_>>>()
        .unwrap();
    assert_eq!(first5.len(), 5);
    let reads = db.pool().stats().physical_reads;
    assert!(
        reads <= 16,
        "early-take over index stream faulted {reads} pages"
    );
}
