//! Database-level WAL recovery: committed transactions survive crashes
//! (simulated by dropping the handle without checkpoint, or by injected
//! power-offs), uncommitted work rolls back, and corruption in the log
//! tail is rejected record-by-record instead of poisoning the store.

use relstore::failpoint::{is_crash, FailLog, FailPager, Failpoints};
use relstore::pager::{MemPager, Pager};
use relstore::value::{DataType, Field, Schema, Value};
use relstore::wal::{MemLog, WalConfig, WalPager};
use relstore::{BufferPool, Database, StorageKind};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("v", DataType::Str),
    ])
}

fn row(id: i64, v: &str) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(v.into())]
}

fn wal_db(base: Arc<MemPager>, log: Arc<MemLog>, batch: usize) -> Database {
    let pager = Arc::new(WalPager::open(base, log, WalConfig::with_group_commit(batch)).unwrap());
    Database::open_pool(Arc::new(BufferPool::new(pager, 256))).unwrap()
}

#[test]
fn committed_transactions_survive_unclean_close() {
    let base = Arc::new(MemPager::new());
    let log = Arc::new(MemLog::new());
    {
        let db = wal_db(base.clone(), log.clone(), 1);
        assert!(db.is_transactional());
        let t = db
            .create_table("t", schema(), StorageKind::Heap, &[])
            .unwrap();
        t.insert(row(1, "one")).unwrap();
        t.insert(row(2, "two")).unwrap();
        db.commit().unwrap();
        // No checkpoint: the base page file never saw these pages.
    }
    assert_eq!(base.num_pages(), 0, "all data lives in the log");
    let db = wal_db(base, log, 1);
    let mut rows = db.table("t").unwrap().scan().unwrap();
    rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
    assert_eq!(rows, vec![row(1, "one"), row(2, "two")]);
}

#[test]
fn uncommitted_transaction_rolls_back_on_reopen() {
    let base = Arc::new(MemPager::new());
    let log = Arc::new(MemLog::new());
    {
        let db = wal_db(base.clone(), log.clone(), 1);
        let t = db
            .create_table("t", schema(), StorageKind::Heap, &[])
            .unwrap();
        t.insert(row(1, "committed")).unwrap();
        db.commit().unwrap();
        t.insert(row(2, "lost")).unwrap();
        // Second insert is flushed to the WAL by eviction pressure only if
        // the pool overflows — force it through explicitly, then "crash"
        // before the commit record.
        db.pool().flush_dirty().unwrap();
    }
    let db = wal_db(base, log, 1);
    let rows = db.table("t").unwrap().scan().unwrap();
    assert_eq!(
        rows,
        vec![row(1, "committed")],
        "uncommitted insert discarded"
    );
}

#[test]
fn recovery_state_is_the_last_commit_not_a_mix() {
    // Table roots (B+tree splits) and row counters move between commits;
    // recovery must restore data + catalog from the same commit.
    let base = Arc::new(MemPager::new());
    let log = Arc::new(MemLog::new());
    {
        let db = wal_db(base.clone(), log.clone(), 1);
        let t = db
            .create_table("t", schema(), StorageKind::Clustered, &["id"])
            .unwrap();
        t.create_index("pk_t", &["id"]).unwrap();
        // Enough clustered inserts to split B+tree roots repeatedly.
        for i in 0..500 {
            t.insert(row(i, &format!("v{i}"))).unwrap();
            if i % 50 == 0 {
                db.commit().unwrap();
            }
        }
        db.commit().unwrap();
        for i in 500..600 {
            t.insert(row(i, "uncommitted")).unwrap();
        }
        db.pool().flush_dirty().unwrap(); // images logged, never committed
    }
    let db = wal_db(base, log, 1);
    let t = db.table("t").unwrap();
    let rows = t.scan().unwrap();
    assert_eq!(rows.len(), 500, "exactly the committed prefix");
    // The recovered index works (roots are from the same commit as data).
    let hits = t.index_lookup("pk_t", &[Value::Int(499)]).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0][1], Value::Str("v499".into()));
}

#[test]
fn checkpoint_then_more_commits_recovers_both_layers() {
    let base = Arc::new(MemPager::new());
    let log = Arc::new(MemLog::new());
    {
        let db = wal_db(base.clone(), log.clone(), 1);
        let t = db
            .create_table("t", schema(), StorageKind::Heap, &[])
            .unwrap();
        t.insert(row(1, "in-base")).unwrap();
        db.checkpoint().unwrap();
        assert!(base.num_pages() > 0, "checkpoint reached the base file");
        t.insert(row(2, "in-log")).unwrap();
        db.commit().unwrap();
    }
    let db = wal_db(base, log, 1);
    let mut rows = db.table("t").unwrap().scan().unwrap();
    rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
    assert_eq!(rows, vec![row(1, "in-base"), row(2, "in-log")]);
}

#[test]
fn torn_log_tail_loses_only_the_torn_transaction() {
    let base = Arc::new(MemPager::new());
    let log = Arc::new(MemLog::new());
    let committed_len;
    {
        let db = wal_db(base.clone(), log.clone(), 1);
        let t = db
            .create_table("t", schema(), StorageKind::Heap, &[])
            .unwrap();
        t.insert(row(1, "safe")).unwrap();
        db.commit().unwrap();
        committed_len = log.raw().len();
        t.insert(row(2, "torn")).unwrap();
        db.commit().unwrap();
    }
    // Tear the tail mid-record, as a crash during the final write would.
    let mut raw = log.raw();
    let tear_at = committed_len + (raw.len() - committed_len) / 2;
    raw.truncate(tear_at);
    log.set_raw(raw);

    let db = wal_db(base, log, 1);
    let rows = db.table("t").unwrap().scan().unwrap();
    assert_eq!(rows, vec![row(1, "safe")]);
}

#[test]
fn bit_flip_in_log_is_caught_by_crc() {
    let base = Arc::new(MemPager::new());
    let log = Arc::new(MemLog::new());
    let committed_len;
    {
        let db = wal_db(base.clone(), log.clone(), 1);
        let t = db
            .create_table("t", schema(), StorageKind::Heap, &[])
            .unwrap();
        t.insert(row(1, "safe")).unwrap();
        db.commit().unwrap();
        committed_len = log.raw().len();
        t.insert(row(2, "flipped")).unwrap();
        db.commit().unwrap();
    }
    let mut raw = log.raw();
    let mid = committed_len + (raw.len() - committed_len) / 2;
    raw[mid] ^= 0x40;
    log.set_raw(raw);

    // Recovery must stop cleanly at the corrupt record — no panic, no
    // partial transaction.
    let db = wal_db(base, log, 1);
    let rows = db.table("t").unwrap().scan().unwrap();
    assert_eq!(rows, vec![row(1, "safe")]);
}

#[test]
fn injected_crash_mid_transaction_recovers_to_last_commit() {
    let fp = Failpoints::new(42);
    let durable_base = Arc::new(MemPager::new());
    let durable_log = Arc::new(MemLog::new());
    let base = Arc::new(FailPager::new(fp.clone(), durable_base.clone()));
    let log = Arc::new(FailLog::new(fp.clone(), durable_log.clone()));

    let result = (|| -> relstore::Result<()> {
        let pager = Arc::new(WalPager::open(
            base.clone(),
            log.clone(),
            WalConfig::with_group_commit(1),
        )?);
        let db = Database::open_pool(Arc::new(BufferPool::new(pager, 64)))?;
        let t = db.create_table("t", schema(), StorageKind::Heap, &[])?;
        t.insert(row(1, "first"))?;
        db.commit()?;
        fp.crash_after_writes(3);
        for i in 2..100 {
            t.insert(row(i, "more"))?;
            db.commit()?;
        }
        Ok(())
    })();
    let err = result.unwrap_err();
    assert!(is_crash(&err), "workload died to the injected crash: {err}");
    assert!(fp.crashed());
    fp.revive();

    let pager = Arc::new(WalPager::open(base, log, WalConfig::with_group_commit(1)).unwrap());
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 64))).unwrap();
    let rows = db.table("t").unwrap().scan().unwrap();
    // Some committed prefix survives — at least the synced first commit,
    // never a torn suffix.
    assert!(!rows.is_empty());
    assert_eq!(rows[0], row(1, "first"));
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r[0], Value::Int(i as i64 + 1), "prefix-consistent keys");
    }
}

#[test]
fn group_commit_trades_durability_window_not_consistency() {
    // With batch 8 and a crash before the batch fsync, recent commits may
    // vanish — but recovery still lands exactly on *some* commit boundary.
    let fp = Failpoints::new(7);
    fp.set_tear_writes(false);
    let base = Arc::new(FailPager::new(fp.clone(), Arc::new(MemPager::new())));
    let log = Arc::new(FailLog::new(fp.clone(), Arc::new(MemLog::new())));

    let _ = (|| -> relstore::Result<()> {
        let pager = Arc::new(WalPager::open(
            base.clone(),
            log.clone(),
            WalConfig::with_group_commit(8),
        )?);
        let db = Database::open_pool(Arc::new(BufferPool::new(pager, 64)))?;
        let t = db.create_table("t", schema(), StorageKind::Heap, &[])?;
        for i in 0..20 {
            t.insert(row(i, "x"))?;
            db.commit()?;
        }
        fp.crash_after_writes(1);
        t.insert(row(99, "dead"))?;
        db.commit()?;
        Ok(())
    })();
    fp.revive();

    let pager = Arc::new(WalPager::open(base, log, WalConfig::default()).unwrap());
    let db = Database::open_pool(Arc::new(BufferPool::new(pager, 64))).unwrap();
    match db.table("t") {
        Err(_) => {} // crashed before the first batch fsync: empty store
        Ok(t) => {
            let rows = t.scan().unwrap();
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(r[0], Value::Int(i as i64), "rows form a commit-prefix");
            }
            assert!(rows.len() <= 20);
        }
    }
}

#[test]
fn plain_database_reports_non_transactional() {
    let db = Database::in_memory();
    assert!(!db.is_transactional());
    db.commit().unwrap(); // explicit no-op, never an error
}
