//! Criterion benches for the batched write path: `apply_all` ingest at
//! batch sizes 1 / 64 / 1024 against an in-memory ArchIS (isolating the
//! per-transaction meta-rewrite + commit overhead from disk noise), and
//! `BTree::bulk_load` against incremental insertion.

use archis::{ArchConfig, ArchIS, Change, RelationSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use relstore::{BTree, BufferPool, MemPager, Value};
use std::sync::Arc;
use temporal::Date;

fn hires(n: i64) -> Vec<Change> {
    (1..=n)
        .map(|id| Change::Insert {
            relation: "employee".into(),
            key: id,
            values: vec![
                ("name".into(), Value::Str(format!("employee-{id:06}"))),
                ("salary".into(), Value::Int(40_000 + id)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str(format!("d{:02}", id % 20))),
            ],
            at: Date::from_ymd(
                1985 + (id / 336) as i32,
                1 + ((id % 336) / 28) as u32,
                1 + (id % 28) as u32,
            )
            .unwrap(),
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let changes = hires(1024);
    let mut group = c.benchmark_group("ingest/apply_all/1024-hires");
    group.sample_size(10);
    for batch in [1usize, 64, 1024] {
        group.bench_function(format!("batch-{batch}"), |b| {
            b.iter(|| {
                let mut a = ArchIS::new(ArchConfig::default());
                a.create_relation(RelationSpec::employee()).unwrap();
                for chunk in changes.chunks(batch) {
                    a.apply_all(chunk).unwrap();
                }
                a
            });
        });
    }
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..20_000u32)
        .map(|i| {
            (
                i.to_be_bytes().to_vec(),
                format!("value-{i:08}").into_bytes(),
            )
        })
        .collect();
    let mut group = c.benchmark_group("ingest/btree/20k-entries");
    group.sample_size(10);
    group.bench_function("bulk_load", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 4096));
            BTree::bulk_load(pool, entries.iter().cloned()).unwrap()
        });
    });
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(Arc::new(MemPager::new()), 4096));
            let t = BTree::create(pool).unwrap();
            for (k, v) in &entries {
                t.insert(k, v).unwrap();
            }
            t
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_bulk_load);
criterion_main!(benches);
