//! Criterion benches for the §6 clustering machinery: the archival
//! operation itself (the one-off cost of §8.4) and the snapshot speedup it
//! buys (Figure 9's ablation).

use bench::{base_config, bench_now, load_archis, run_archis_cold};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_segments(c: &mut Criterion) {
    let ops = dataset::generate(&base_config(60));

    // The archival operation: copy the live segment out, carry live rows
    // forward (measured by rebuilding the system each iteration at small
    // scale).
    let small_ops = dataset::generate(&base_config(15));
    let mut group = c.benchmark_group("archival");
    group.sample_size(10);
    group.bench_function("force_archive_all_attrs", |b| {
        b.iter_with_setup(
            || {
                load_archis(
                    archis::ArchConfig::db2_like().with_now(bench_now()),
                    &small_ops,
                    false,
                )
            },
            |a| {
                a.force_archive("employee", small_ops.last().unwrap().at())
                    .unwrap();
                a
            },
        );
    });
    group.finish();

    // Snapshot with and without segment clustering (Figure 9's headline).
    let clustered = load_archis(
        archis::ArchConfig::atlas_like().with_now(bench_now()),
        &ops,
        true,
    );
    let flat = load_archis(
        archis::ArchConfig::atlas_like().with_now(bench_now()),
        &ops,
        false,
    );
    let q = archis::queries::q2_xquery(temporal::Date::from_ymd(1993, 5, 16).unwrap());
    let mut group = c.benchmark_group("snapshot");
    group.sample_size(20);
    group.bench_function("clustered", |b| b.iter(|| run_archis_cold(&clustered, &q)));
    group.bench_function("non-clustered", |b| b.iter(|| run_archis_cold(&flat, &q)));
    group.finish();
}

criterion_group!(benches, bench_segments);
criterion_main!(benches);
