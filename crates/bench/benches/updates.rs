//! Criterion benches for §8.4: a single tracked update on ArchIS versus
//! the whole-document rewrite a native XML database pays.

use bench::{base_config, bench_now, build_xmldb, load_archis};
use criterion::{criterion_group, criterion_main, Criterion};
use relstore::Value;

fn bench_updates(c: &mut Criterion) {
    let ops = dataset::generate(&base_config(60));
    let a = load_archis(
        archis::ArchConfig::db2_like().with_now(bench_now()),
        &ops,
        true,
    );
    let tamino = build_xmldb(&a);
    let current = a.database().table("employee").unwrap().scan().unwrap();
    let probe = current[0][0].as_int().unwrap();
    let mut day = ops.last().unwrap().at();
    let mut salary = 100_000i64;

    let mut group = c.benchmark_group("single-update");
    group.sample_size(20);
    group.bench_function("archis", |b| {
        b.iter(|| {
            day = day.succ();
            salary += 1;
            a.update(
                "employee",
                probe,
                vec![("salary".into(), Value::Int(salary))],
                day,
            )
            .unwrap();
        });
    });
    let mut day2 = day + 100_000;
    let mut salary2 = 200_000i64;
    group.bench_function("tamino (in-place doc rewrite)", |b| {
        b.iter(|| {
            day2 = day2.succ();
            salary2 += 1;
            tamino
                .apply_change(
                    "employees.xml",
                    &xmldb::DocChange::Update {
                        tuple: "employee".into(),
                        key_child: "id".into(),
                        key: probe.to_string(),
                        attr: "salary".into(),
                        value: salary2.to_string(),
                        at: day2,
                    },
                )
                .unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
