//! Criterion benches for Table 3 / Figure 8: the six benchmark queries on
//! the three systems (native XML DB, ArchIS-heap, ArchIS-clustered), cold.

use bench::{
    base_config, bench_now, build_xmldb, load_archis, run_archis_cold, run_xmldb_cold,
    BenchQuerySet,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_queries(c: &mut Criterion) {
    let ops = dataset::generate(&base_config(60));
    let heap = load_archis(
        archis::ArchConfig::db2_like().with_now(bench_now()),
        &ops,
        true,
    );
    let clustered = load_archis(
        archis::ArchConfig::atlas_like().with_now(bench_now()),
        &ops,
        true,
    );
    let tamino = build_xmldb(&heap);
    let qs = BenchQuerySet::standard(ops[0].id());

    for (label, xq) in qs.all() {
        let mut group = c.benchmark_group(label);
        group.sample_size(10);
        group.bench_function("tamino", |b| {
            b.iter(|| run_xmldb_cold(&tamino, xq));
        });
        group.bench_function("archis-db2", |b| {
            b.iter(|| run_archis_cold(&heap, xq));
        });
        group.bench_function("archis-atlas", |b| {
            b.iter(|| run_archis_cold(&clustered, xq));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
