//! Criterion bench for §7.1's translation-cost claim (< 0.1 ms per
//! query): XQuery parse + Algorithm 1 + segment lookup, per benchmark
//! query.

use bench::{base_config, bench_now, load_archis, BenchQuerySet};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_translate(c: &mut Criterion) {
    let ops = dataset::generate(&base_config(40));
    let a = load_archis(
        archis::ArchConfig::db2_like().with_now(bench_now()),
        &ops,
        true,
    );
    let qs = BenchQuerySet::standard(ops[0].id());
    let mut group = c.benchmark_group("translate");
    for (label, xq) in qs.all() {
        group.bench_function(label, |b| {
            b.iter(|| a.translate(std::hint::black_box(xq)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
