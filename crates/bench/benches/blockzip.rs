//! Criterion benches for the BlockZIP codec (paper §8 / Figure 12):
//! compression and decompression throughput on record-shaped data, plus
//! the Algorithm 2 block packer and single-block random access.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn salary_records(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            format!(
                "{}|{}|{:04}-{:02}-01|{:04}-{:02}-01",
                100000 + i / 7,
                40000 + (i * 137) % 30000,
                1988 + i % 15,
                1 + i % 12,
                1989 + i % 15,
                1 + (i + 3) % 12
            )
            .into_bytes()
        })
        .collect()
}

fn bench_blockzip(c: &mut Criterion) {
    let records = salary_records(20_000);
    let joined: Vec<u8> = records
        .iter()
        .flat_map(|r| {
            let mut v = (r.len() as u32).to_le_bytes().to_vec();
            v.extend_from_slice(r);
            v
        })
        .collect();

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(joined.len() as u64));
    group.sample_size(10);
    group.bench_function("compress", |b| {
        b.iter(|| blockzip::compress(std::hint::black_box(&joined)));
    });
    let compressed = blockzip::compress(&joined);
    println!(
        "blockzip ratio on salary records: {:.3}",
        compressed.len() as f64 / joined.len() as f64
    );
    group.throughput(Throughput::Bytes(compressed.len() as u64));
    group.bench_function("decompress", |b| {
        b.iter(|| blockzip::decompress(std::hint::black_box(&compressed)).unwrap());
    });
    group.finish();

    let mut group = c.benchmark_group("algorithm2");
    group.sample_size(10);
    group.bench_function("pack_records_4000", |b| {
        b.iter(|| blockzip::pack_records(std::hint::black_box(&records), 4000));
    });
    let blocks = blockzip::pack_records(&records, 4000);
    group.bench_function("unpack_one_block", |b| {
        let mid = &blocks[blocks.len() / 2];
        b.iter(|| blockzip::unpack_records(std::hint::black_box(&mid.data)).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_blockzip);
criterion_main!(benches);
