//! Engine-level ablations for the design choices DESIGN.md calls out:
//! sort-merge vs nested-loop joins (the paper's "joins execute very fast
//! (in linear time) since every table is already sorted on its id"),
//! index range scan vs full scan + filter, and the canonical-row rewrite's
//! overhead on history queries.

use bench::{base_config, bench_now, load_archis, run_archis_cold, run_sql_cold};
use criterion::{criterion_group, criterion_main, Criterion};
use relstore::exec::{collect_rows, Executor, NestedLoopJoin, SeqScan, SortMergeJoin};
use relstore::expr::{BinOp, Expr, FnRegistry};
use relstore::Value;
use std::sync::Arc;

fn join_inputs(n: i64) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let left: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i % (n / 4).max(1)), Value::Int(i)])
        .collect();
    let right: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i % (n / 4).max(1)), Value::Int(-i)])
        .collect();
    (left, right)
}

fn bench_ablations(c: &mut Criterion) {
    // Sort-merge vs nested-loop equi-join.
    let (left, right) = join_inputs(600);
    let fns = Arc::new(FnRegistry::new());
    let mut group = c.benchmark_group("join");
    group.sample_size(10);
    group.bench_function("sort-merge", |b| {
        b.iter(|| {
            let l: Executor = Box::new(SeqScan::from_rows(left.clone()));
            let r: Executor = Box::new(SeqScan::from_rows(right.clone()));
            collect_rows(SortMergeJoin::new(l, r, 0, 0)).unwrap()
        });
    });
    group.bench_function("nested-loop", |b| {
        let cond = Expr::bin(BinOp::Eq, Expr::col(0), Expr::col(2));
        b.iter(|| {
            let l: Executor = Box::new(SeqScan::from_rows(left.clone()));
            let r: Executor = Box::new(SeqScan::from_rows(right.clone()));
            collect_rows(NestedLoopJoin::new(l, r, cond.clone(), fns.clone())).unwrap()
        });
    });
    group.finish();

    // Index range scan vs seq scan + filter, and the canonical-row
    // rewrite's cost, on real H-tables.
    let ops = dataset::generate(&base_config(60));
    let a = load_archis(
        archis::ArchConfig::db2_like().with_now(bench_now()),
        &ops,
        true,
    );
    let mut group = c.benchmark_group("access-path");
    group.sample_size(10);
    group.bench_function("id index lookup", |b| {
        let probe = ops[0].id();
        let sql = format!("select s.salary from employee_salary s where s.id = {probe}");
        b.iter(|| run_sql_cold(&a, &sql));
    });
    group.bench_function("full scan + filter", |b| {
        let probe = ops[0].id();
        // An opaque predicate the planner cannot push into an index.
        let sql = format!("select s.salary from employee_salary s where s.id + 0 = {probe}");
        b.iter(|| run_sql_cold(&a, &sql));
    });
    group.finish();

    let mut group = c.benchmark_group("canonical-row-rewrite");
    group.sample_size(10);
    group.bench_function("history count (with rewrite, correct)", |b| {
        let q = archis::queries::q4_xquery();
        b.iter(|| run_archis_cold(&a, &q));
    });
    group.bench_function("raw count (no rewrite, overcounts)", |b| {
        b.iter(|| run_sql_cold(&a, "select count(s.salary) from employee_salary s"));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
