//! Criterion benches for the streaming-scan work: sequential-scan
//! throughput (full drain and LIMIT-style early take) and snapshot point
//! lookups, at 1k / 10k / 100k rows on both storage layouts.

use criterion::{criterion_group, criterion_main, Criterion};
use relstore::exec::SeqScan;
use relstore::{DataType, Database, Field, Schema, StorageKind, Value};

fn populated(rows: i64, kind: StorageKind) -> Database {
    let db = Database::with_capacity(4096);
    let t = db
        .create_table(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("payload", DataType::Str),
            ]),
            kind,
            &["k"],
        )
        .unwrap();
    t.create_index("t_by_k", &["k"]).unwrap();
    t.insert_all((0..rows).map(|i| vec![Value::Int(i), Value::Str(format!("payload-{i:08}"))]))
        .unwrap();
    db
}

fn bench_scans(c: &mut Criterion) {
    for rows in [1_000i64, 10_000, 100_000] {
        for kind in [StorageKind::Heap, StorageKind::Clustered] {
            let label = match kind {
                StorageKind::Heap => "heap",
                StorageKind::Clustered => "clustered",
            };
            let db = populated(rows, kind);
            let t = db.table("t").unwrap();

            let mut group = c.benchmark_group(format!("seq-scan/{label}/{rows}"));
            group.sample_size(10);
            group.bench_function("full", |b| {
                b.iter(|| {
                    db.pool().flush_all().unwrap();
                    SeqScan::new(&t).fold(0usize, |n, r| n + r.map(|_| 1).unwrap())
                });
            });
            group.bench_function("take5", |b| {
                b.iter(|| {
                    db.pool().flush_all().unwrap();
                    SeqScan::new(&t)
                        .take(5)
                        .fold(0usize, |n, r| n + r.map(|_| 1).unwrap())
                });
            });
            group.finish();

            let mut group = c.benchmark_group(format!("point-lookup/{label}/{rows}"));
            group.sample_size(10);
            let probe = [Value::Int(rows / 2)];
            group.bench_function("by-index", |b| {
                b.iter(|| {
                    db.pool().flush_all().unwrap();
                    t.index_lookup("t_by_k", &probe).unwrap().len()
                });
            });
            group.finish();
        }
    }
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
