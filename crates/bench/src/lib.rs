//! Shared benchmark harness: workload loading, the three systems under
//! test, cold-run plumbing, and one function per figure/table of the
//! paper's evaluation (§7–§8).
//!
//! Systems:
//! * **Tamino** → [`xmldb::XmlDb`] holding the published H-documents,
//! * **ArchIS-DB2** → ArchIS on heap tables + secondary indexes,
//! * **ArchIS-ATLaS** → ArchIS on clustered B+trees.
//!
//! Cold runs flush the buffer pool / DOM cache first (the paper unmounts
//! the data drive); besides wall time we report the buffer pool's logical
//! page reads — a deterministic I/O proxy that is immune to machine noise.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
pub mod experiments;

use archis::{ArchConfig, ArchIS, Change, RelationSpec};
use dataset::{DatasetConfig, Op};
use relstore::Value;
use std::time::{Duration, Instant};
use temporal::Date;
use xmldb::XmlDb;

/// The pinned `current-date` for all benchmark systems.
pub fn bench_now() -> Date {
    Date::from_ymd(2005, 1, 1).expect("valid")
}

/// Convert a dataset event into an ArchIS change.
pub fn op_to_change(op: &Op) -> Change {
    match op {
        Op::Hire {
            id,
            name,
            salary,
            title,
            deptno,
            at,
        } => Change::Insert {
            relation: "employee".into(),
            key: *id,
            values: vec![
                ("name".into(), Value::Str(name.clone())),
                ("salary".into(), Value::Int(*salary)),
                ("title".into(), Value::Str(title.clone())),
                ("deptno".into(), Value::Str(deptno.clone())),
            ],
            at: *at,
        },
        Op::Raise { id, salary, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("salary".into(), Value::Int(*salary))],
            at: *at,
        },
        Op::TitleChange { id, title, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("title".into(), Value::Str(title.clone()))],
            at: *at,
        },
        Op::DeptChange { id, deptno, at } => Change::Update {
            relation: "employee".into(),
            key: *id,
            changes: vec![("deptno".into(), Value::Str(deptno.clone()))],
            at: *at,
        },
        Op::Leave { id, at } => Change::Delete {
            relation: "employee".into(),
            key: *id,
            at: *at,
        },
    }
}

/// Build an ArchIS instance and replay a workload through it.
/// `archive` enables the usefulness check after every change (paper §6);
/// pass `false` for the "without clustering" baselines.
pub fn load_archis(config: ArchConfig, ops: &[Op], archive: bool) -> ArchIS {
    let mut a = ArchIS::new(config);
    a.create_relation(RelationSpec::employee())
        .expect("create relation");
    for op in ops {
        a.apply(&op_to_change(op)).expect("replay");
        if archive {
            a.maybe_archive("employee", op.at()).expect("archive check");
        }
    }
    a
}

/// Publish the ArchIS history into a fresh native XML database.
pub fn build_xmldb(archis: &ArchIS) -> XmlDb {
    let db = XmlDb::new(bench_now());
    let doc = archis.publish("employee").expect("publish");
    db.store("employees.xml", &doc);
    db
}

/// A standard small workload (laptop-scale stand-in for the paper's
/// 334 MB data set) and its 7× companion for the scalability experiment.
pub fn base_config(employees: usize) -> DatasetConfig {
    DatasetConfig {
        employees,
        years: 17,
        seed: 42,
        ..Default::default()
    }
}

/// Measured result of one query run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCost {
    /// Wall time.
    pub time: Duration,
    /// Buffer-pool page requests (every `get`, hit or miss).
    pub logical_reads: u64,
    /// Pages actually faulted from storage (relational systems) — or
    /// bytes decompressed / 4096 (native XML) — the deterministic I/O
    /// proxy the figures report.
    pub physical_reads: u64,
    /// Decompressed-block cache hits during the run (compressed-store
    /// queries only; zero elsewhere).
    pub cache_hits: u64,
    /// Decompressed-block cache misses — each one is a real BlockZIP
    /// unpack.
    pub cache_misses: u64,
}

impl RunCost {
    /// Milliseconds as f64.
    pub fn ms(&self) -> f64 {
        self.time.as_secs_f64() * 1e3
    }

    /// Buffer-pool hit rate for this run (1.0 when nothing was read).
    pub fn hit_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            return 1.0;
        }
        let misses = self.physical_reads.min(self.logical_reads);
        (self.logical_reads - misses) as f64 / self.logical_reads as f64
    }

    /// Decompressed-block cache hit rate (1.0 when no blocks were
    /// requested).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 1.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// Process-wide I/O accumulator so the `reproduce` binary can print a
/// logical/physical/hit-rate delta after each experiment (the experiments
/// build their pools internally, so the binary can't reach them directly).
pub mod iostat {
    use std::sync::atomic::{AtomicU64, Ordering};

    static LOGICAL: AtomicU64 = AtomicU64::new(0);
    static PHYSICAL: AtomicU64 = AtomicU64::new(0);
    static CRC_VERIFIED: AtomicU64 = AtomicU64::new(0);
    static CRC_FAILED: AtomicU64 = AtomicU64::new(0);

    /// Fold one run's reads into the running totals.
    pub fn record(logical: u64, physical: u64) {
        LOGICAL.fetch_add(logical, Ordering::Relaxed);
        PHYSICAL.fetch_add(physical, Ordering::Relaxed);
    }

    /// Fold one run's page-checksum verifications/failures into the
    /// running totals (file-backed pagers only; in-memory runs report 0).
    pub fn record_checksums(verified: u64, failed: u64) {
        CRC_VERIFIED.fetch_add(verified, Ordering::Relaxed);
        CRC_FAILED.fetch_add(failed, Ordering::Relaxed);
    }

    /// Drain the read totals accumulated since the last call.
    pub fn take() -> (u64, u64) {
        (
            LOGICAL.swap(0, Ordering::Relaxed),
            PHYSICAL.swap(0, Ordering::Relaxed),
        )
    }

    /// Drain the checksum totals accumulated since the last call.
    pub fn take_checksums() -> (u64, u64) {
        (
            CRC_VERIFIED.swap(0, Ordering::Relaxed),
            CRC_FAILED.swap(0, Ordering::Relaxed),
        )
    }
}

/// Run a query cold on an ArchIS system.
pub fn run_archis_cold(archis: &ArchIS, xq: &str) -> RunCost {
    let pool = archis.database().pool();
    pool.flush_all().expect("flush");
    pool.reset_stats();
    let start = Instant::now();
    let out = archis.query(xq).expect("query");
    std::hint::black_box(&out);
    let time = start.elapsed();
    let stats = pool.stats();
    iostat::record(stats.logical_reads, stats.physical_reads);
    iostat::record_checksums(stats.checksum_verifications, stats.checksum_failures);
    RunCost {
        time,
        logical_reads: stats.logical_reads,
        physical_reads: stats.physical_reads,
        ..Default::default()
    }
}

/// Run raw SQL cold on an ArchIS system.
pub fn run_sql_cold(archis: &ArchIS, sql: &str) -> RunCost {
    let pool = archis.database().pool();
    pool.flush_all().expect("flush");
    pool.reset_stats();
    let start = Instant::now();
    let out = archis.execute_sql(sql).expect("query");
    std::hint::black_box(&out);
    let time = start.elapsed();
    let stats = pool.stats();
    iostat::record(stats.logical_reads, stats.physical_reads);
    iostat::record_checksums(stats.checksum_verifications, stats.checksum_failures);
    RunCost {
        time,
        logical_reads: stats.logical_reads,
        physical_reads: stats.physical_reads,
        ..Default::default()
    }
}

/// Run a query cold on the native XML database (cache flushed, so the
/// document is decompressed and parsed as part of the measurement).
pub fn run_xmldb_cold(db: &XmlDb, xq: &str) -> RunCost {
    db.flush_cache();
    let start = Instant::now();
    let out = db.query_xml(xq).expect("query");
    std::hint::black_box(&out);
    let time = start.elapsed();
    let proxy = (db.raw_bytes() / 4096) as u64;
    RunCost {
        time,
        logical_reads: proxy,
        physical_reads: proxy,
        ..Default::default()
    }
}

/// Median of several cold runs (the paper averages 7 runs).
pub fn median_of<F: FnMut() -> RunCost>(runs: usize, mut f: F) -> RunCost {
    let mut costs: Vec<RunCost> = (0..runs).map(|_| f()).collect();
    costs.sort_by_key(|c| c.time);
    costs[costs.len() / 2]
}

/// The six Table-3 benchmark queries instantiated for a workload: the
/// probe id is a mid-population employee, dates sit mid-history.
pub struct BenchQuerySet {
    /// Q1: snapshot, single object.
    pub q1: String,
    /// Q2: snapshot (aggregate).
    pub q2: String,
    /// Q3: history, single object.
    pub q3: String,
    /// Q4: history (aggregate).
    pub q4: String,
    /// Q5: temporal slicing.
    pub q5: String,
    /// Q6: temporal join.
    pub q6: String,
    /// Probe employee.
    pub probe_id: i64,
    /// Snapshot date.
    pub snap: Date,
    /// Slicing window.
    pub window: (Date, Date),
}

impl BenchQuerySet {
    /// Standard instantiation (paper Table 3 dates scaled to the 1985–2002
    /// horizon).
    pub fn standard(probe_id: i64) -> Self {
        let snap = Date::from_ymd(1993, 5, 16).expect("valid");
        let w1 = Date::from_ymd(1993, 5, 16).expect("valid");
        let w2 = Date::from_ymd(1994, 5, 16).expect("valid");
        let j1 = Date::from_ymd(1996, 4, 1).expect("valid");
        let j2 = Date::from_ymd(1998, 4, 1).expect("valid");
        BenchQuerySet {
            q1: archis::queries::q1_xquery(probe_id, snap),
            q2: archis::queries::q2_xquery(snap),
            q3: archis::queries::q3_xquery(probe_id),
            q4: archis::queries::q4_xquery(),
            q5: archis::queries::q5_xquery(60_000, w1, w2),
            q6: archis::queries::q6_xquery(j1, j2),
            probe_id,
            snap,
            window: (w1, w2),
        }
    }

    /// All six queries as `(label, xquery)` pairs.
    pub fn all(&self) -> Vec<(&'static str, &str)> {
        vec![
            ("Q1 snapshot(single)", &self.q1),
            ("Q2 snapshot", &self.q2),
            ("Q3 history(single)", &self.q3),
            ("Q4 history", &self.q4),
            ("Q5 slicing", &self.q5),
            ("Q6 temporal join", &self.q6),
        ]
    }
}

/// Pretty-print a results table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_replays_into_all_three_systems() {
        let ops = dataset::generate(&base_config(30));
        let a = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
        let key_rows = a.database().table("employee_id").unwrap().row_count();
        assert!(key_rows >= 30);
        let x = build_xmldb(&a);
        let n = x
            .query_xml(r#"count(doc("employees.xml")/employees/employee)"#)
            .unwrap()
            .parse::<u64>()
            .unwrap();
        assert_eq!(n, key_rows, "XML view and key table agree");
    }

    #[test]
    fn q2_answers_agree_across_systems() {
        let ops = dataset::generate(&base_config(25));
        let probe = ops[0].id();
        let qs = BenchQuerySet::standard(probe);
        let heap = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
        let clustered = load_archis(ArchConfig::atlas_like().with_now(bench_now()), &ops, true);
        let tamino = build_xmldb(&heap);
        let via = |a: &ArchIS| -> String {
            let rows = a.query(&qs.q2).unwrap().scalar_rows().unwrap();
            format!("{:.4}", rows[0][0].as_f64().unwrap_or(0.0))
        };
        let native: f64 = tamino.query_xml(&qs.q2).unwrap().parse().unwrap();
        assert_eq!(via(&heap), via(&clustered));
        assert_eq!(via(&heap), format!("{native:.4}"));
    }

    #[test]
    fn q5_and_q4_agree_across_systems() {
        let ops = dataset::generate(&base_config(25));
        let qs = BenchQuerySet::standard(ops[0].id());
        let heap = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
        let unclustered = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, false);
        let tamino = build_xmldb(&heap);
        for q in [&qs.q4, &qs.q5] {
            let a = heap.query(q).unwrap().scalar_rows().unwrap()[0][0].clone();
            let b = unclustered.query(q).unwrap().scalar_rows().unwrap()[0][0].clone();
            let t: i64 = tamino.query_xml(q).unwrap().parse().unwrap();
            assert_eq!(a, b, "clustered vs unclustered on {q}");
            assert_eq!(a.as_int().unwrap(), t, "ArchIS vs native XML on {q}");
        }
    }
}
