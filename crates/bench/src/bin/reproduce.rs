//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [-e EXPERIMENT]... [--scale N] [--runs N]
//!
//! EXPERIMENT: fig7 | fig8 | translate | fig9 | snapcur | fig10 |
//!             fig11 | fig13 | fig14 | updates | scan | commit |
//!             ingest | concurrent | scrub | plan | replica | all
//!             (default: all)
//! --scale N   initial employee population (default 100; fig10 also
//!             loads 7N)
//! --runs N    cold runs per query, median reported (default 3)
//! ```
//!
//! After each experiment the harness prints the buffer-pool I/O it
//! accumulated — logical reads, physical reads, and the hit rate — so a
//! change in caching or scan behaviour shows up as a delta even when wall
//! times are noisy.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
use bench::experiments as exp;

/// Run one experiment and report the pool I/O it accumulated.
fn section(name: &str, f: impl FnOnce()) {
    let _ = bench::iostat::take(); // drop anything a prior phase leaked
    let _ = bench::iostat::take_checksums();
    f();
    let (logical, physical) = bench::iostat::take();
    let (verified, failed) = bench::iostat::take_checksums();
    if logical > 0 {
        let hits = logical - physical.min(logical);
        println!(
            "   [{name}] pool I/O: {logical} logical / {physical} physical reads, hit rate {:.1}%",
            100.0 * hits as f64 / logical as f64
        );
    }
    if verified + failed > 0 {
        println!("   [{name}] page checksums: {verified} verified, {failed} failed");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut scale = 100usize;
    let mut runs = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-e" | "--experiment" => {
                if let Some(e) = it.next() {
                    experiments.push(e.clone());
                }
            }
            "--scale" => {
                if let Some(v) = it.next() {
                    scale = v.parse().expect("--scale takes a number");
                }
            }
            "--runs" => {
                if let Some(v) = it.next() {
                    runs = v.parse().expect("--runs takes a number");
                }
            }
            "-h" | "--help" => {
                println!(
                    "reproduce [-e fig7|fig8|translate|fig9|snapcur|fig10|fig11|fig13|fig14|updates|scan|commit|ingest|concurrent|scrub|plan|replica|all] [--scale N] [--runs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    let all = experiments.iter().any(|e| e == "all");
    let want = |name: &str| all || experiments.iter().any(|e| e == name);

    println!("ArchIS reproduction harness — scale {scale} employees, {runs} cold run(s) per query");
    if want("fig7") {
        section("fig7", || {
            exp::fig7(scale);
        });
    }
    if want("fig8") {
        section("fig8", || {
            exp::fig8(scale, runs);
        });
    }
    if want("translate") {
        section("translate", || {
            exp::translate_cost(scale);
        });
    }
    if want("fig9") {
        section("fig9", || {
            exp::fig9(scale, runs);
        });
    }
    if want("snapcur") {
        section("snapcur", || {
            exp::snapshot_vs_current(scale, runs);
        });
    }
    if want("fig10") {
        section("fig10", || {
            exp::fig10(scale, runs);
        });
    }
    if want("fig11") {
        section("fig11", || {
            exp::fig11(scale);
        });
    }
    if want("fig13") {
        section("fig13", || {
            exp::fig13(scale);
        });
    }
    if want("fig14") {
        section("fig14", || {
            exp::fig14(scale, runs);
        });
    }
    if want("updates") {
        section("updates", || {
            exp::updates(scale);
        });
    }
    if want("scan") {
        section("scan", || {
            exp::scan_streaming(100_000, runs);
        });
    }
    if want("commit") {
        section("commit", || {
            exp::commit_throughput(512, runs);
        });
    }
    if want("ingest") {
        section("ingest", || {
            exp::ingest(2048, runs);
        });
    }
    if want("concurrent") {
        section("concurrent", || {
            exp::concurrent(2048, runs);
        });
    }
    if want("scrub") {
        section("scrub", || {
            exp::scrub_bench(scale, runs);
        });
    }
    if want("plan") {
        section("plan", || {
            exp::plan_bench(scale, runs);
        });
    }
    if want("replica") {
        section("replica", || {
            exp::replication(2048, runs);
        });
    }
}
