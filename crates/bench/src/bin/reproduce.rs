//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [-e EXPERIMENT]... [--scale N] [--runs N]
//!
//! EXPERIMENT: fig7 | fig8 | translate | fig9 | snapcur | fig10 |
//!             fig11 | fig13 | fig14 | updates | all   (default: all)
//! --scale N   initial employee population (default 100; fig10 also
//!             loads 7N)
//! --runs N    cold runs per query, median reported (default 3)
//! ```

use bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut scale = 100usize;
    let mut runs = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-e" | "--experiment" => {
                if let Some(e) = it.next() {
                    experiments.push(e.clone());
                }
            }
            "--scale" => {
                if let Some(v) = it.next() {
                    scale = v.parse().expect("--scale takes a number");
                }
            }
            "--runs" => {
                if let Some(v) = it.next() {
                    runs = v.parse().expect("--runs takes a number");
                }
            }
            "-h" | "--help" => {
                println!(
                    "reproduce [-e fig7|fig8|translate|fig9|snapcur|fig10|fig11|fig13|fig14|updates|all] [--scale N] [--runs N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    let all = experiments.iter().any(|e| e == "all");
    let want = |name: &str| all || experiments.iter().any(|e| e == name);

    println!("ArchIS reproduction harness — scale {scale} employees, {runs} cold run(s) per query");
    if want("fig7") {
        exp::fig7(scale);
    }
    if want("fig8") {
        exp::fig8(scale, runs);
    }
    if want("translate") {
        exp::translate_cost(scale);
    }
    if want("fig9") {
        exp::fig9(scale, runs);
    }
    if want("snapcur") {
        exp::snapshot_vs_current(scale, runs);
    }
    if want("fig10") {
        exp::fig10(scale, runs);
    }
    if want("fig11") {
        exp::fig11(scale);
    }
    if want("fig13") {
        exp::fig13(scale);
    }
    if want("fig14") {
        exp::fig14(scale, runs);
    }
    if want("updates") {
        exp::updates(scale);
    }
}
