//! One function per figure/table of the paper's evaluation.
//!
//! Each function loads its workload, runs the measurement, prints a table
//! shaped like the paper's figure, and returns the rows so the `reproduce`
//! binary can archive them. Absolute numbers differ from the paper (our
//! substrate is an embedded engine, not DB2/ATLaS/Tamino on 2005 hardware);
//! the *shape* — who wins and by roughly what factor — is the
//! reproduction target, see EXPERIMENTS.md.

use crate::*;
use archis::queries as q;
use archis::ArchConfig;
use std::time::Instant;

/// Labelled benchmark closures, run in order by the fig14 harness.
type NamedRuns<'a> = Vec<(&'a str, Box<dyn Fn() + 'a>)>;

/// Figure 7: storage size against `Umin` (plus the paper's bound
/// `Nseg/Nnoseg ≤ 1/(1−Umin)`).
pub fn fig7(employees: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let baseline = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, false);
    let base_rows = baseline
        .database()
        .table("employee_salary")
        .unwrap()
        .row_count();
    let mut rows = Vec::new();
    for umin in [0.2, 0.26, 0.36, 0.4] {
        let a = load_archis(
            ArchConfig::db2_like().with_umin(umin).with_now(bench_now()),
            &ops,
            true,
        );
        let seg_rows = a.database().table("employee_salary").unwrap().row_count();
        let nsegs = a.segments_of("employee", "salary").unwrap().len() - 1; // minus live
        rows.push(vec![
            format!("{umin:.2}"),
            nsegs.to_string(),
            format!("{:.3}", seg_rows as f64 / base_rows as f64),
            format!("{:.3}", 1.0 / (1.0 - umin)),
        ]);
    }
    print_table(
        "Figure 7: storage ratio vs Umin (employee_salary tuples)",
        &["Umin", "segments", "Nseg/Nnoseg", "bound 1/(1-Umin)"],
        &rows,
    );
    rows
}

/// Figure 8: Q1–Q6 on Tamino vs ArchIS-DB2 vs ArchIS-ATLaS (segment
/// clustering on, no compression).
pub fn fig8(employees: usize, runs: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let probe = ops[0].id();
    let qs = BenchQuerySet::standard(probe);
    let heap = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    let clustered = load_archis(ArchConfig::atlas_like().with_now(bench_now()), &ops, true);
    let tamino = build_xmldb(&heap);
    let mut rows = Vec::new();
    for (label, xq) in qs.all() {
        let t = median_of(runs, || run_xmldb_cold(&tamino, xq));
        let h = median_of(runs, || run_archis_cold(&heap, xq));
        let c = median_of(runs, || run_archis_cold(&clustered, xq));
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", t.ms()),
            format!("{:.2}", h.ms()),
            format!("{:.2}", c.ms()),
            format!("{:.1}x", t.ms() / h.ms().max(1e-6)),
            format!("{:.1}x", t.ms() / c.ms().max(1e-6)),
            h.physical_reads.to_string(),
            c.physical_reads.to_string(),
        ]);
    }
    print_table(
        "Figure 8: query performance, segment-clustered RDBMS vs native XML DB (cold, ms)",
        &[
            "query",
            "Tamino",
            "ArchIS-DB2",
            "ArchIS-ATLaS",
            "DB2 speedup",
            "ATLaS speedup",
            "DB2 reads",
            "ATLaS reads",
        ],
        &rows,
    );
    rows
}

/// §7.1: query translation cost (paper: < 0.1 ms per query).
pub fn translate_cost(employees: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let a = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    let qs = BenchQuerySet::standard(ops[0].id());
    let mut rows = Vec::new();
    for (label, xq) in qs.all() {
        let n = 200;
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(a.translate(xq).unwrap());
        }
        let per = start.elapsed() / n;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", per.as_secs_f64() * 1e6),
        ]);
    }
    print_table(
        "§7.1: XQuery → SQL/XML translation cost",
        &["query", "µs/translation"],
        &rows,
    );
    rows
}

/// Figure 9: segment clustering on vs off (ArchIS-ATLaS configuration).
pub fn fig9(employees: usize, runs: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let qs = BenchQuerySet::standard(ops[0].id());
    let with = load_archis(ArchConfig::atlas_like().with_now(bench_now()), &ops, true);
    let without = load_archis(ArchConfig::atlas_like().with_now(bench_now()), &ops, false);
    let mut rows = Vec::new();
    for (label, xq) in qs.all() {
        let w = median_of(runs, || run_archis_cold(&with, xq));
        let wo = median_of(runs, || run_archis_cold(&without, xq));
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", w.ms()),
            format!("{:.2}", wo.ms()),
            format!("{:.2}x", wo.ms() / w.ms().max(1e-6)),
            w.physical_reads.to_string(),
            wo.physical_reads.to_string(),
        ]);
    }
    print_table(
        "Figure 9: with vs without segment clustering (cold, ms)",
        &[
            "query",
            "clustered",
            "non-clustered",
            "speedup",
            "reads(c)",
            "reads(nc)",
        ],
        &rows,
    );
    rows
}

/// §7.1: snapshot on the history vs directly on the current database
/// (paper: the history snapshot runs ~27% slower).
pub fn snapshot_vs_current(employees: usize, runs: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let a = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    // A *current* snapshot (today) against the history tables...
    let today_q = q::q2_xquery(bench_now());
    let hist = median_of(runs, || run_archis_cold(&a, &today_q));
    // ... vs the same aggregate on the current table.
    let cur = median_of(runs, || {
        run_sql_cold(&a, "select avg(e.salary) from employee e")
    });
    let rows = vec![vec![
        format!("{:.2}", hist.ms()),
        format!("{:.2}", cur.ms()),
        format!("{:+.0}%", (hist.ms() / cur.ms().max(1e-6) - 1.0) * 100.0),
    ]];
    print_table(
        "§7.1: snapshot on archived history vs current database (Q2, cold, ms)",
        &["history", "current DB", "overhead"],
        &rows,
    );
    rows
}

/// Figure 10: scalability — the same queries on a 7× larger data set.
pub fn fig10(employees: usize, runs: usize) -> Vec<Vec<String>> {
    let small_ops = dataset::generate(&base_config(employees));
    let big_ops = dataset::generate(&base_config(employees * 7));
    let small = load_archis(
        ArchConfig::db2_like().with_now(bench_now()),
        &small_ops,
        true,
    );
    let big = load_archis(ArchConfig::db2_like().with_now(bench_now()), &big_ops, true);
    let qs_small = BenchQuerySet::standard(small_ops[0].id());
    let qs_big = BenchQuerySet::standard(big_ops[0].id());
    let mut rows = Vec::new();
    for ((label, xq_s), (_, xq_b)) in qs_small.all().into_iter().zip(qs_big.all()) {
        let s = median_of(runs, || run_archis_cold(&small, xq_s));
        let b = median_of(runs, || run_archis_cold(&big, xq_b));
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", s.ms()),
            format!("{:.2}", b.ms()),
            format!("{:.1}x", b.ms() / s.ms().max(1e-6)),
            format!(
                "{:.1}x",
                b.physical_reads as f64 / s.physical_reads.max(1) as f64
            ),
        ]);
    }
    print_table(
        "Figure 10: scalability, 7x data (ArchIS-DB2, cold, ms; ~7x or less expected)",
        &["query", "1x", "7x", "time ratio", "reads ratio"],
        &rows,
    );
    rows
}

/// Figure 11: storage (compression) ratios *without* RDBMS compression.
/// Denominator: the serialized H-document size.
pub fn fig11(employees: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let heap = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    let clustered = load_archis(ArchConfig::atlas_like().with_now(bench_now()), &ops, true);
    // REORG after load so page-fill artifacts of the change replay don't
    // pollute the storage comparison (the paper bulk-loads from logs).
    heap.vacuum_relation("employee").unwrap();
    clustered.vacuum_relation("employee").unwrap();
    let tamino = build_xmldb(&heap);
    let hdoc = tamino.raw_bytes() as f64;
    let rows = vec![
        vec![
            "Tamino (auto-compressed)".into(),
            format!("{:.2}", tamino.stored_bytes() as f64 / hdoc),
        ],
        vec![
            "ArchIS-DB2 (heap + indexes)".into(),
            format!("{:.2}", heap.storage_bytes().unwrap() as f64 / hdoc),
        ],
        vec![
            "ArchIS-ATLaS (clustered)".into(),
            format!("{:.2}", clustered.storage_bytes().unwrap() as f64 / hdoc),
        ],
    ];
    print_table(
        "Figure 11: storage ratio vs H-document size (no RDBMS compression)",
        &["system", "ratio"],
        &rows,
    );
    rows
}

/// Figure 13: storage ratios *with* BlockZIP compression of archived
/// segments.
pub fn fig13(employees: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let mut heap = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    let mut clustered = load_archis(ArchConfig::atlas_like().with_now(bench_now()), &ops, true);
    // Archive whatever is still live, then compress.
    let last = ops.last().unwrap().at();
    heap.force_archive("employee", last).unwrap();
    clustered.force_archive("employee", last).unwrap();
    let tamino = build_xmldb(&heap);
    let hdoc = tamino.raw_bytes() as f64;
    heap.compress_archived("employee").unwrap();
    clustered.compress_archived("employee").unwrap();
    heap.vacuum_relation("employee").unwrap();
    clustered.vacuum_relation("employee").unwrap();
    let rows = vec![
        vec![
            "Tamino (compressed)".into(),
            format!("{:.2}", tamino.stored_bytes() as f64 / hdoc),
        ],
        vec!["Tamino (uncompressed H-doc)".into(), "1.00".into()],
        vec![
            "ArchIS-DB2 + BlockZIP".into(),
            format!("{:.2}", heap.storage_bytes().unwrap() as f64 / hdoc),
        ],
        vec![
            "ArchIS-ATLaS + BlockZIP".into(),
            format!("{:.2}", clustered.storage_bytes().unwrap() as f64 / hdoc),
        ],
    ];
    print_table(
        "Figure 13: storage ratio vs H-document size (BlockZIP on archived segments)",
        &["system", "ratio"],
        &rows,
    );
    rows
}

/// Figure 14: Q1–Q6 with compression — BlockZIP'ed ArchIS vs Tamino
/// (which is always compressed).
pub fn fig14(employees: usize, runs: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let probe = ops[0].id();
    let qs = BenchQuerySet::standard(probe);
    let mut heap = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    let uncompressed = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    let last = ops.last().unwrap().at();
    heap.force_archive("employee", last).unwrap();
    let tamino = build_xmldb(&heap);
    heap.compress_archived("employee").unwrap();
    let store = heap.compressed_store("employee").unwrap();

    // `cold` evicts the decompressed-block cache so BlockZIP unpacking is
    // part of the measurement; a warm rerun keeps it, so the hit-rate
    // column shows what the cache buys on repeated queries.
    let time_compressed = |f: &dyn Fn(), cold: bool| -> RunCost {
        if cold {
            store.clear_cache();
        }
        heap.database().pool().flush_all().unwrap();
        heap.database().pool().reset_stats();
        let (h0, m0) = store.cache_stats();
        let start = Instant::now();
        f();
        let time = start.elapsed();
        let stats = heap.database().pool().stats();
        let (h1, m1) = store.cache_stats();
        crate::iostat::record(stats.logical_reads, stats.physical_reads);
        crate::iostat::record_checksums(stats.checksum_verifications, stats.checksum_failures);
        RunCost {
            time,
            logical_reads: stats.logical_reads,
            physical_reads: stats.physical_reads,
            cache_hits: h1 - h0,
            cache_misses: m1 - m0,
        }
    };
    let (w1, w2) = qs.window;
    let (j1, j2) = (
        temporal::Date::from_ymd(1996, 4, 1).unwrap(),
        temporal::Date::from_ymd(1998, 4, 1).unwrap(),
    );
    let compressed_runs: NamedRuns = vec![
        (
            "Q1 snapshot(single)",
            Box::new(|| {
                std::hint::black_box(q::q1_compressed(&heap, store, probe, qs.snap).unwrap());
            }),
        ),
        (
            "Q2 snapshot",
            Box::new(|| {
                std::hint::black_box(q::q2_compressed(&heap, store, qs.snap).unwrap());
            }),
        ),
        (
            "Q3 history(single)",
            Box::new(|| {
                std::hint::black_box(q::q3_compressed(&heap, store, probe).unwrap());
            }),
        ),
        (
            "Q4 history",
            Box::new(|| {
                std::hint::black_box(q::q4_compressed(&heap, store).unwrap());
            }),
        ),
        (
            "Q5 slicing",
            Box::new(|| {
                std::hint::black_box(q::q5_compressed(&heap, store, 60_000, w1, w2).unwrap());
            }),
        ),
        (
            "Q6 temporal join",
            Box::new(|| {
                std::hint::black_box(q::q6_compressed(&heap, store, j1, j2).unwrap());
            }),
        ),
    ];
    let mut rows = Vec::new();
    for ((label, f), (_, xq)) in compressed_runs.iter().zip(qs.all()) {
        let mut cs: Vec<RunCost> = (0..runs)
            .map(|_| time_compressed(f.as_ref(), true))
            .collect();
        cs.sort_by_key(|c| c.time);
        let c = cs[cs.len() / 2];
        // Warm rerun straight after: the block cache still holds whatever
        // the cold run decompressed.
        let w = time_compressed(f.as_ref(), false);
        let t = median_of(runs, || run_xmldb_cold(&tamino, xq));
        let u = median_of(runs, || run_archis_cold(&uncompressed, xq));
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", t.ms()),
            format!("{:.2}", c.ms()),
            format!("{:.2}", u.ms()),
            format!("{:.1}x", t.ms() / c.ms().max(1e-6)),
            format!("{:.2}", w.ms()),
            format!("{:.2}", w.cache_hit_rate()),
        ]);
    }
    print_table(
        "Figure 14: query performance with compression (cold, ms; warm rerun via block cache)",
        &[
            "query",
            "Tamino",
            "ArchIS+BlockZIP",
            "ArchIS uncompressed",
            "speedup vs Tamino",
            "warm ms",
            "cache hit rate",
        ],
        &rows,
    );
    rows
}

/// §8.4: update performance — one raise and a daily batch, ArchIS vs the
/// native XML DB (whole-document rewrite), plus the one-off archival and
/// compression costs.
pub fn updates(employees: usize) -> Vec<Vec<String>> {
    let ops = dataset::generate(&base_config(employees));
    let a = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    let tamino = build_xmldb(&a);
    let day = ops.last().unwrap().at().succ();

    // Single update: +10% raise for one still-current employee.
    let cur = a.database().table("employee").unwrap();
    let first_current = cur
        .scan()
        .unwrap()
        .into_iter()
        .next()
        .expect("someone is employed");
    let probe = first_current[0].as_int().unwrap();
    let cur_salary = first_current[2].as_int().unwrap_or(50_000);
    let start = Instant::now();
    a.update(
        "employee",
        probe,
        vec![(
            "salary".into(),
            relstore::Value::Int(cur_salary + cur_salary / 10),
        )],
        day,
    )
    .unwrap();
    let archis_single = start.elapsed();
    let start = Instant::now();
    tamino
        .apply_change(
            "employees.xml",
            &xmldb::DocChange::Update {
                tuple: "employee".into(),
                key_child: "id".into(),
                key: probe.to_string(),
                attr: "salary".into(),
                value: (cur_salary + cur_salary / 10).to_string(),
                at: day,
            },
        )
        .unwrap();
    let tamino_single = start.elapsed();

    // Daily batch: raises for ~2% of current employees.
    let current_ids: Vec<i64> = a
        .database()
        .table("employee")
        .unwrap()
        .scan()
        .unwrap()
        .iter()
        .filter_map(|r| r[0].as_int())
        .collect();
    // ~5% of the workforce gets a raise on one day.
    let batch: Vec<i64> = current_ids
        .iter()
        .step_by((current_ids.len() / 20).max(1))
        .copied()
        .collect();
    let day2 = day.succ();
    let start = Instant::now();
    for (i, id) in batch.iter().enumerate() {
        a.update(
            "employee",
            *id,
            vec![("salary".into(), relstore::Value::Int(90_000 + i as i64))],
            day2,
        )
        .unwrap();
    }
    let archis_daily = start.elapsed();
    let start = Instant::now();
    for (i, id) in batch.iter().enumerate() {
        tamino
            .apply_change(
                "employees.xml",
                &xmldb::DocChange::Update {
                    tuple: "employee".into(),
                    key_child: "id".into(),
                    key: id.to_string(),
                    attr: "salary".into(),
                    value: (90_000 + i as i64).to_string(),
                    at: day2,
                },
            )
            .unwrap();
    }
    let tamino_daily = start.elapsed();

    // One-off archival + compression of the segment.
    let mut a2 = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, false);
    let start = Instant::now();
    a2.force_archive("employee", day).unwrap();
    let archive_cost = start.elapsed();
    let start = Instant::now();
    a2.compress_archived("employee").unwrap();
    let compress_cost = start.elapsed();

    let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    let rows = vec![
        vec!["single raise".into(), ms(archis_single), ms(tamino_single)],
        vec![
            format!("daily batch ({} updates)", batch.len()),
            ms(archis_daily),
            ms(tamino_daily),
        ],
        vec![
            "segment archival (one-off)".into(),
            ms(archive_cost),
            "-".into(),
        ],
        vec![
            "segment compression (one-off)".into(),
            ms(compress_cost),
            "-".into(),
        ],
    ];
    print_table(
        "§8.4: update performance (ms)",
        &["operation", "ArchIS-DB2", "Tamino"],
        &rows,
    );
    rows
}

/// Streaming-scan microbenchmark: LIMIT-style early termination against
/// the old materialize-everything execution, on a `rows`-row table
/// (default 100k). Prints the table and writes `BENCH_scan.json` next to
/// the working directory so CI can diff the numbers.
pub fn scan_streaming(rows: usize, runs: usize) -> Vec<Vec<String>> {
    use relstore::exec::SeqScan;
    use relstore::{DataType, Database, Field, Schema, StorageKind, Value};

    let db = Database::with_capacity(256);
    let t = db
        .create_table(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("payload", DataType::Str),
            ]),
            StorageKind::Clustered,
            &["k"],
        )
        .unwrap();
    t.insert_all(
        (0..rows as i64).map(|i| vec![Value::Int(i), Value::Str(format!("payload-{i:08}"))]),
    )
    .unwrap();

    let cold = |f: &dyn Fn() -> usize| -> (f64, u64, u64) {
        let mut best = f64::MAX;
        let mut io = (0, 0);
        for _ in 0..runs.max(1) {
            db.pool().flush_all().unwrap();
            db.pool().reset_stats();
            let start = Instant::now();
            std::hint::black_box(f());
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let stats = db.pool().stats();
            crate::iostat::record(stats.logical_reads, stats.physical_reads);
            crate::iostat::record_checksums(stats.checksum_verifications, stats.checksum_failures);
            if ms < best {
                best = ms;
                io = (stats.logical_reads, stats.physical_reads);
            }
        }
        (best, io.0, io.1)
    };

    let take_n = 5usize;
    // Streaming: the executor pulls pages only until the take is satisfied.
    let (s_ms, s_log, s_phys) = cold(&|| {
        SeqScan::new(&t)
            .take(take_n)
            .fold(0usize, |n, r| n + r.map(|_| 1).unwrap())
    });
    // Materialized: what every scan paid before cursors — drain the whole
    // table, then truncate.
    let (m_ms, m_log, m_phys) = cold(&|| {
        let mut all: Vec<_> = t.scan().unwrap();
        all.truncate(take_n);
        all.len()
    });
    // Full drain, both ways (streaming must not regress the full scan).
    let (fs_ms, _, fs_phys) =
        cold(&|| SeqScan::new(&t).fold(0usize, |n, r| n + r.map(|_| 1).unwrap()));
    let (fm_ms, _, fm_phys) = cold(&|| t.scan().unwrap().len());

    // --- I/O pipeline section: a real file behind a cold-device model ---
    //
    // Prefetch: segment-directory readahead only pays when faulting a page
    // actually costs something, so these scans reopen the store with a
    // fresh (cold) pool each run *and* charge every physical page access a
    // fixed device latency — the just-written file otherwise sits in the
    // OS page cache and a "cold" scan measures memcpy, not I/O, hiding
    // exactly the latency readahead exists to overlap. 25µs per page is a
    // conservative model of a fast NVMe random fault (real devices are
    // 80µs+). Writeback: the build dirties far more pages than the pool
    // holds; with the flusher on, evictions find already-cleaned frames
    // and the page writes overlap row encoding instead of stalling it.
    use relstore::pager::{FilePager, Pager};
    use relstore::{BufferPool, PageId};
    use std::ops::Bound;
    use std::sync::Arc;
    use std::time::Duration;

    struct ColdDevice {
        inner: FilePager,
        read: Duration,
        write: Duration,
    }
    impl Pager for ColdDevice {
        // Sleep (not spin) for the device latency: a real page fault
        // parks the thread in the kernel without consuming CPU, which is
        // exactly what lets background readers overlap with foreground
        // work — including on a single-core machine. Timer slack inflates
        // the nominal latency identically for every variant, so the
        // reported ratios are unaffected.
        fn read_page(&self, id: PageId, buf: &mut [u8]) -> relstore::Result<()> {
            std::thread::sleep(self.read);
            self.inner.read_page(id, buf)
        }
        fn write_page(&self, id: PageId, buf: &[u8]) -> relstore::Result<()> {
            std::thread::sleep(self.write);
            // lint:allow(wal-discipline: modeled-device shim — this Pager
            // impl only injects simulated latency and delegates to the
            // inner pager, which owns the WAL protocol)
            self.inner.write_page(id, buf)
        }
        fn allocate(&self) -> relstore::Result<PageId> {
            self.inner.allocate()
        }
        fn num_pages(&self) -> u64 {
            self.inner.num_pages()
        }
        fn sync(&self) -> relstore::Result<()> {
            self.inner.sync()
        }
        fn checkpoint(&self) -> relstore::Result<()> {
            self.inner.checkpoint()
        }
        fn checksum_stats(&self) -> (u64, u64) {
            self.inner.checksum_stats()
        }
        fn reset_checksum_stats(&self) {
            self.inner.reset_checksum_stats();
        }
    }
    const DEVICE_LATENCY: Duration = Duration::from_micros(25);
    let cold_open = |path: &std::path::Path| -> Arc<ColdDevice> {
        Arc::new(ColdDevice {
            inner: FilePager::open(path).expect("open page file"),
            read: DEVICE_LATENCY,
            write: DEVICE_LATENCY,
        })
    };
    let dir = std::env::temp_dir().join(format!("archis-scan-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let wide_n = (rows / 4).max(2_000) as i64;
    let wide_payload = |i: i64| {
        let mut s = format!("wide-{i:08}-");
        while s.len() < 400 {
            s.push_str("abcdefghijklmnopqrstuvwxyz0123456789");
        }
        s.truncate(400);
        s
    };
    let wide_schema = || {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("payload", DataType::Str),
        ])
    };
    let build = |path: &std::path::Path, writeback: bool| -> f64 {
        let _ = std::fs::remove_file(path);
        let pool = Arc::new(BufferPool::new(cold_open(path), 256));
        if writeback {
            pool.enable_writeback();
        }
        let db = Database::open_pool(pool).expect("open file store");
        let w = db
            .create_table("w", wide_schema(), StorageKind::Clustered, &["k"])
            .unwrap();
        let start = Instant::now();
        w.insert_all((0..wide_n).map(|i| vec![Value::Int(i), Value::Str(wide_payload(i))]))
            .unwrap();
        db.checkpoint().unwrap();
        start.elapsed().as_secs_f64() * 1e3
    };
    let scan_path = dir.join("scan-wide-off.db");
    let wb_path = dir.join("scan-wide-on.db");
    let mut wb_off_ms = f64::MAX;
    let mut wb_on_ms = f64::MAX;
    for _ in 0..runs.max(1) {
        wb_off_ms = wb_off_ms.min(build(&scan_path, false));
        wb_on_ms = wb_on_ms.min(build(&wb_path, true));
    }
    let _ = std::fs::remove_file(&wb_path);

    let range = 1024i64;
    let scan_cold = |prefetch: bool| -> (f64, u64, u64) {
        let mut best = f64::MAX;
        let mut hits = 0u64;
        let mut phys = 0u64;
        for _ in 0..runs.max(1) {
            let pool = Arc::new(BufferPool::new(cold_open(&scan_path), 256));
            if prefetch {
                pool.enable_prefetch();
            }
            let db = Database::open_pool(pool).expect("reopen scan fixture");
            let w = db.table("w").unwrap();
            let start = Instant::now();
            let mut seen = 0usize;
            let mut lo = 0i64;
            while lo < wide_n {
                let lo_v = [Value::Int(lo)];
                let hi_v = [Value::Int(lo + range)];
                for r in w
                    .cluster_range_stream(Bound::Included(&lo_v[..]), Bound::Excluded(&hi_v[..]))
                    .unwrap()
                {
                    std::hint::black_box(r.unwrap());
                    seen += 1;
                }
                lo += range;
            }
            if prefetch {
                db.pool().prefetch_quiesce();
            }
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(seen, wide_n as usize, "cold range scan lost rows");
            let stats = db.pool().stats();
            if ms < best {
                best = ms;
                hits = stats.prefetch_hits;
                phys = stats.physical_reads;
            }
        }
        (best, hits, phys)
    };
    let (pf_off_ms, _, pf_off_phys) = scan_cold(false);
    let (pf_on_ms, pf_hits, pf_on_phys) = scan_cold(true);
    let _ = std::fs::remove_file(&scan_path);
    let _ = std::fs::remove_dir(&dir);
    let pf_speedup = pf_off_ms / pf_on_ms.max(1e-6);
    let wb_gain = wb_off_ms / wb_on_ms.max(1e-6);

    let speedup = m_ms / s_ms.max(1e-6);
    let out_rows = vec![
        vec![
            format!("take({take_n}) streaming"),
            format!("{s_ms:.3}"),
            s_log.to_string(),
            s_phys.to_string(),
        ],
        vec![
            format!("take({take_n}) materialized"),
            format!("{m_ms:.3}"),
            m_log.to_string(),
            m_phys.to_string(),
        ],
        vec![
            "full scan streaming".into(),
            format!("{fs_ms:.3}"),
            "-".into(),
            fs_phys.to_string(),
        ],
        vec![
            "full scan materialized".into(),
            format!("{fm_ms:.3}"),
            "-".into(),
            fm_phys.to_string(),
        ],
        vec![
            "early-termination speedup".into(),
            format!("{speedup:.1}x"),
            "-".into(),
            "-".into(),
        ],
        vec![
            format!("cold wide range scan ({wide_n} rows), prefetch off"),
            format!("{pf_off_ms:.3}"),
            "-".into(),
            pf_off_phys.to_string(),
        ],
        vec![
            "cold wide range scan, prefetch on".into(),
            format!("{pf_on_ms:.3}"),
            format!("{pf_hits} hits"),
            pf_on_phys.to_string(),
        ],
        vec![
            "prefetch speedup".into(),
            format!("{pf_speedup:.2}x"),
            "-".into(),
            "-".into(),
        ],
        vec![
            "wide build+flush, writeback off".into(),
            format!("{wb_off_ms:.3}"),
            "-".into(),
            "-".into(),
        ],
        vec![
            "wide build+flush, writeback on".into(),
            format!("{wb_on_ms:.3}"),
            "-".into(),
            "-".into(),
        ],
        vec![
            "writeback overlap gain".into(),
            format!("{wb_gain:.2}x"),
            "-".into(),
            "-".into(),
        ],
    ];
    print_table(
        &format!("Streaming scans: {rows}-row seq scan, cold (ms)"),
        &["variant", "ms", "logical", "physical"],
        &out_rows,
    );
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"take\": {take_n},\n  \"streaming_ms\": {s_ms:.4},\n  \"materialized_ms\": {m_ms:.4},\n  \"speedup\": {speedup:.2},\n  \"streaming_physical_reads\": {s_phys},\n  \"materialized_physical_reads\": {m_phys},\n  \"full_scan_streaming_ms\": {fs_ms:.4},\n  \"full_scan_materialized_ms\": {fm_ms:.4},\n  \"full_scan_physical_reads\": {fs_phys},\n  \"wide_rows\": {wide_n},\n  \"prefetch_off_ms\": {pf_off_ms:.4},\n  \"prefetch_on_ms\": {pf_on_ms:.4},\n  \"prefetch_speedup\": {pf_speedup:.2},\n  \"prefetch_hits\": {pf_hits},\n  \"writeback_off_ms\": {wb_off_ms:.4},\n  \"writeback_on_ms\": {wb_on_ms:.4},\n  \"writeback_gain\": {wb_gain:.2}\n}}\n"
    );
    // lint:allow(wal-discipline: benchmark report artifact, not database
    // state — BENCH_*.json summaries live outside the pager/WAL layer)
    if let Err(e) = std::fs::write("BENCH_scan.json", &json) {
        eprintln!("warning: could not write BENCH_scan.json: {e}");
    }
    out_rows
}

/// Commit-throughput microbenchmark: small transactions against a
/// WAL-backed store on a real filesystem, sweeping the group-commit batch
/// size with the WAL commit pipeline off and on. Batch 1 pays one fsync
/// per commit (DB2's MINCOMMIT=1); larger batches amortize the fsync
/// across the group at the cost of a wider durability window; the
/// pipelined variants additionally overlap the fsync of one sealed batch
/// with forming the next one on a dedicated log-writer thread. Prints the
/// table and writes `BENCH_commit.json`.
///
/// Like the cold-scan experiment, the log lives on a modeled device: this
/// container's fsync hits the OS page cache in ~0.2 ms with heavy jitter,
/// which both understates a real drive's flush latency (NVMe ≈ 0.5–2 ms,
/// SATA ≫ that) and drowns the overlap signal in timer noise. `ColdLog`
/// wraps the real `FileLog` and charges a fixed 500 µs per `sync` via
/// `thread::sleep` — parked in the kernel exactly like a hardware flush,
/// so the sleep lands in whichever thread performs the fsync: serialized
/// with batch formation in synchronous mode, overlapped with it on the
/// log-writer thread in pipelined mode.
pub fn commit_throughput(txns: usize, runs: usize) -> Vec<Vec<String>> {
    use relstore::wal::{FileLog, LogFile, WalConfig, WalPager};
    use relstore::{BufferPool, DataType, Database, Field, FilePager, Schema, StorageKind, Value};
    use std::sync::Arc;
    use std::time::Duration;

    struct ColdLog {
        inner: FileLog,
        sync_latency: Duration,
    }
    impl LogFile for ColdLog {
        fn append(&self, bytes: &[u8]) -> relstore::Result<()> {
            self.inner.append(bytes)
        }
        fn sync(&self) -> relstore::Result<()> {
            self.inner.sync()?;
            std::thread::sleep(self.sync_latency);
            Ok(())
        }
        fn read_all(&self) -> relstore::Result<Vec<u8>> {
            self.inner.read_all()
        }
        fn truncate(&self) -> relstore::Result<()> {
            self.inner.truncate()
        }
        fn len(&self) -> relstore::Result<u64> {
            self.inner.len()
        }
    }
    const SYNC_LATENCY: Duration = Duration::from_micros(500);

    let dir = std::env::temp_dir().join(format!("archis-commit-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let schema = || {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("payload", DataType::Str),
        ])
    };

    // (group size, pipelined): the sync sweep plus pipelined variants of
    // the grouped configurations.
    let configs: [(usize, bool); 5] = [(1, false), (8, false), (64, false), (8, true), (64, true)];
    const ROWS_PER_TXN: usize = 3;
    let mut best_ms = [f64::MAX; 5];
    for run in 0..runs.max(1) {
        for (ci, &(batch, pipelined)) in configs.iter().enumerate() {
            let tag = if pipelined { "p" } else { "s" };
            let path = dir.join(format!("commit-b{batch}{tag}-r{run}.db"));
            let wal = {
                let mut p = path.as_os_str().to_os_string();
                p.push(".wal");
                std::path::PathBuf::from(p)
            };
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&wal);
            let ms = {
                let base = Arc::new(FilePager::open(&path).expect("open base page file"));
                let log = Arc::new(ColdLog {
                    inner: FileLog::open(&wal).expect("open WAL log"),
                    sync_latency: SYNC_LATENCY,
                });
                let pager = Arc::new(
                    WalPager::open(
                        base,
                        log,
                        WalConfig::with_group_commit(batch).pipelined(pipelined),
                    )
                    .expect("open WAL-backed store"),
                );
                let db = Database::open_pool(Arc::new(BufferPool::new(pager, 256)))
                    .expect("open database over WAL pool");
                let t = db
                    .create_table("t", schema(), StorageKind::Heap, &[])
                    .unwrap();
                let start = Instant::now();
                // Each transaction inserts a handful of ~190-byte rows:
                // enough foreground work (encoding + heap staging) that
                // batch formation genuinely overlaps the previous batch's
                // fsync in pipelined mode. The WAL logs one page image per
                // dirty page per batch, so log bytes grow sublinearly with
                // row count while formation work grows linearly — the same
                // shape as real OLTP commit traffic.
                for i in 0..txns as i64 {
                    for r in 0..ROWS_PER_TXN as i64 {
                        let id = i * ROWS_PER_TXN as i64 + r;
                        t.insert(vec![
                            Value::Int(id),
                            Value::Str(format!("payload-{id:08}-{id:0168}")),
                        ])
                        .unwrap();
                    }
                    db.commit().unwrap();
                }
                // The drop drains the pipeline (and flushes any residual
                // batch), so the timed region ends with everything durable
                // for both variants — no hidden deferred work.
                drop(db);
                start.elapsed().as_secs_f64() * 1e3
            };
            if ms < best_ms[ci] {
                best_ms[ci] = ms;
            }
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&wal);
        }
    }
    let _ = std::fs::remove_dir(&dir);

    let cps: Vec<f64> = best_ms.iter().map(|ms| txns as f64 / (ms / 1e3)).collect();
    let speedup = cps[2] / cps[0].max(1e-9);
    let pipeline_speedup_64 = cps[4] / cps[2].max(1e-9);
    let mut rows: Vec<Vec<String>> = configs
        .iter()
        .zip(best_ms.iter())
        .zip(cps.iter())
        .map(|(((b, pipelined), ms), c)| {
            vec![
                format!("batch {b}{}", if *pipelined { " pipelined" } else { "" }),
                format!("{ms:.1}"),
                format!("{c:.0}"),
                format!("{:.0}", (txns as f64 / *b as f64).ceil()),
            ]
        })
        .collect();
    rows.push(vec![
        "batch-64 / batch-1".into(),
        "-".into(),
        format!("{speedup:.1}x"),
        "-".into(),
    ]);
    rows.push(vec![
        "pipelined-64 / batch-64".into(),
        "-".into(),
        format!("{pipeline_speedup_64:.2}x"),
        "-".into(),
    ]);
    print_table(
        &format!(
            "Group commit: {txns} txns x {ROWS_PER_TXN} rows, fsync-per-batch (best of {runs})"
        ),
        &["group size", "total ms", "commits/sec", "fsyncs"],
        &rows,
    );
    let json = format!(
        "{{\n  \"txns\": {txns},\n  \"batch_1\": {{ \"ms\": {:.2}, \"commits_per_sec\": {:.1} }},\n  \"batch_8\": {{ \"ms\": {:.2}, \"commits_per_sec\": {:.1} }},\n  \"batch_64\": {{ \"ms\": {:.2}, \"commits_per_sec\": {:.1} }},\n  \"batch_8_pipelined\": {{ \"ms\": {:.2}, \"commits_per_sec\": {:.1} }},\n  \"batch_64_pipelined\": {{ \"ms\": {:.2}, \"commits_per_sec\": {:.1} }},\n  \"speedup_64_over_1\": {speedup:.2},\n  \"pipeline_speedup_64\": {pipeline_speedup_64:.2}\n}}\n",
        best_ms[0], cps[0], best_ms[1], cps[1], best_ms[2], cps[2], best_ms[3], cps[3], best_ms[4],
        cps[4]
    );
    // lint:allow(wal-discipline: benchmark report artifact, not database
    // state — BENCH_*.json summaries live outside the pager/WAL layer)
    if let Err(e) = std::fs::write("BENCH_commit.json", &json) {
        eprintln!("warning: could not write BENCH_commit.json: {e}");
    }
    rows
}

/// Ingest-throughput microbenchmark: distinct-key hires pushed through
/// `ArchIS::apply_all` against a WAL-backed store on a real filesystem,
/// sweeping the application batch size. Batch 1 pays a meta-table rewrite,
/// a commit record and an fsync per row; larger batches amortize all three
/// across the batch and route the row inserts through sorted
/// `insert_batch` (B+tree bulk-load on empty tables, sorted insertion
/// afterwards). Prints the table and writes `BENCH_ingest.json`.
pub fn ingest(rows: usize, runs: usize) -> Vec<Vec<String>> {
    use archis::Change;
    use relstore::Value;
    use temporal::Date;

    let dir = std::env::temp_dir().join(format!("archis-ingest-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    // Monotone hire dates: one per day on a 28-day-month calendar (every
    // month has 28 days, so no Feb-29 edge cases).
    let at = |id: i64| {
        Date::from_ymd(
            1985 + (id / 336) as i32,
            1 + ((id % 336) / 28) as u32,
            1 + (id % 28) as u32,
        )
        .expect("valid bench date")
    };
    let changes: Vec<Change> = (1..=rows as i64)
        .map(|id| Change::Insert {
            relation: "employee".into(),
            key: id,
            values: vec![
                ("name".into(), Value::Str(format!("employee-{id:06}"))),
                ("salary".into(), Value::Int(40_000 + id)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str(format!("d{:02}", id % 20))),
            ],
            at: at(id),
        })
        .collect();

    let batches = [1usize, 64, 1024];
    let mut best_ms = [f64::MAX; 3];
    for run in 0..runs.max(1) {
        for (bi, &batch) in batches.iter().enumerate() {
            let path = dir.join(format!("ingest-b{batch}-r{run}.db"));
            let wal = {
                let mut p = path.as_os_str().to_os_string();
                p.push(".wal");
                std::path::PathBuf::from(p)
            };
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&wal);
            {
                let mut a = ArchIS::open_file(&path, ArchConfig::default())
                    .expect("open WAL-backed ArchIS");
                a.create_relation(archis::RelationSpec::employee()).unwrap();
                let start = Instant::now();
                for chunk in changes.chunks(batch) {
                    a.apply_all(chunk).expect("ingest batch");
                }
                let ms = start.elapsed().as_secs_f64() * 1e3;
                if ms < best_ms[bi] {
                    best_ms[bi] = ms;
                }
            }
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&wal);
        }
    }
    let _ = std::fs::remove_dir(&dir);

    let rps: Vec<f64> = best_ms.iter().map(|ms| rows as f64 / (ms / 1e3)).collect();
    let speedup = rps[2] / rps[0].max(1e-9);
    let mut out: Vec<Vec<String>> = batches
        .iter()
        .zip(best_ms.iter())
        .zip(rps.iter())
        .map(|((b, ms), r)| {
            vec![
                format!("batch {b}"),
                format!("{ms:.1}"),
                format!("{r:.0}"),
                format!("{:.0}", (rows as f64 / *b as f64).ceil()),
            ]
        })
        .collect();
    out.push(vec![
        "batch-1024 / batch-1".into(),
        "-".into(),
        format!("{speedup:.1}x"),
        "-".into(),
    ]);
    print_table(
        &format!("Batched ingest: {rows} hires via apply_all, txn-per-batch (best of {runs})"),
        &["batch size", "total ms", "rows/sec", "transactions"],
        &out,
    );
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"batch_1\": {{ \"ms\": {:.2}, \"rows_per_sec\": {:.1} }},\n  \"batch_64\": {{ \"ms\": {:.2}, \"rows_per_sec\": {:.1} }},\n  \"batch_1024\": {{ \"ms\": {:.2}, \"rows_per_sec\": {:.1} }},\n  \"speedup_1024_over_1\": {speedup:.2}\n}}\n",
        best_ms[0], rps[0], best_ms[1], rps[1], best_ms[2], rps[2]
    );
    // lint:allow(wal-discipline: benchmark report artifact, not database
    // state — BENCH_*.json summaries live outside the pager/WAL layer)
    if let Err(e) = std::fs::write("BENCH_ingest.json", &json) {
        eprintln!("warning: could not write BENCH_ingest.json: {e}");
    }
    out
}

/// Concurrent MVCC microbenchmark: the batch-64 ingest workload from the
/// `ingest` experiment, re-run with snapshot-reader threads alongside the
/// writer. Each reader loops `begin_snapshot` → Q1 temporal XQuery
/// (salary of one employee at a fixed date) against its frozen commit
/// while `apply_all` commits on the live store. Two numbers fall out:
///
/// * **writer overhead** — ingest wall time with 2 readers vs an
///   *idle-thread control* (acceptance: ≤ 10%), and
/// * **reader scaling** — total snapshot queries/sec at 4 readers vs 2
///   (readers pin independent frozen views, so more readers should answer
///   more queries, not fight the writer).
///
/// Two methodology notes, both consequences of measuring on small hosts:
///
/// 1. Readers are open-loop with a capped duty cycle (each sleeps ~49×
///    its last query's cost between queries, modeling interactive
///    arrivals) — an unthrottled reader loop just time-slices the CPU
///    away from the writer and measures core count, not MVCC behavior.
/// 2. The overhead baseline is the `2 idle` control — 2 threads with the
///    reader's sleep/wake pattern but no database work at all. On a
///    single-core VM the mere presence of periodically-waking threads
///    costs the writer ~25% wall time in scheduler tax (measured:
///    sleep-only threads impose the same slowdown as full query
///    readers); the *marginal* cost of 2r over the control is the MVCC
///    interference actually under test — pin/unpin serialization, WAL
///    state-lock sharing, and pin-forced group-commit flushes. The raw
///    0-reader number is still reported for transparency.
///
/// Prints the table and writes `BENCH_concurrent.json`; ci.sh gates on
/// `writer_overhead_pct_2r` and `reader_scaling_4r_over_2r`.
pub fn concurrent(rows: usize, runs: usize) -> Vec<Vec<String>> {
    use archis::Change;
    use relstore::Value;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use temporal::Date;

    let dir = std::env::temp_dir().join(format!("archis-concurrent-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    // Same monotone 28-day-month hire calendar as the ingest bench.
    let at = |id: i64| {
        Date::from_ymd(
            1985 + (id / 336) as i32,
            1 + ((id % 336) / 28) as u32,
            1 + (id % 28) as u32,
        )
        .expect("valid bench date")
    };
    let changes: Vec<Change> = (1..=rows as i64)
        .map(|id| Change::Insert {
            relation: "employee".into(),
            key: id,
            values: vec![
                ("name".into(), Value::Str(format!("employee-{id:06}"))),
                ("salary".into(), Value::Int(40_000 + id)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str(format!("d{:02}", id % 20))),
            ],
            at: at(id),
        })
        .collect();

    const BATCH: usize = 64;
    // (label, threads, idle): `idle` threads wake on the reader cadence
    // but never touch the database — the scheduler-tax control.
    let reader_cfgs: [(&str, usize, bool); 4] = [
        ("0 readers", 0, false),
        ("2 idle (control)", 2, true),
        ("2 readers", 2, false),
        ("4 readers", 4, false),
    ];
    let mut best_ms = [f64::MAX; 4];
    let mut best_qps = [0f64; 4];
    for run in 0..runs.max(1) {
        for (ci, &(_, threads, idle)) in reader_cfgs.iter().enumerate() {
            let path = dir.join(format!("conc-c{ci}-run{run}.db"));
            let wal = {
                let mut p = path.as_os_str().to_os_string();
                p.push(".wal");
                std::path::PathBuf::from(p)
            };
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&wal);
            {
                let mut a = ArchIS::open_file(&path, ArchConfig::default())
                    .expect("open WAL-backed ArchIS");
                a.create_relation(archis::RelationSpec::employee()).unwrap();
                let a = &a;
                let done = AtomicBool::new(false);
                let queries = AtomicU64::new(0);
                let done = &done;
                let queries = &queries;
                let probe = q::q1_xquery(1, at(rows as i64 / 2));
                let probe = probe.as_str();
                let (ms, answered) = std::thread::scope(|s| {
                    for _ in 0..threads {
                        s.spawn(move || {
                            while !done.load(Ordering::Acquire) {
                                let t0 = Instant::now();
                                if !idle {
                                    let snap = a.begin_snapshot().expect("pin on good media");
                                    snap.query(probe).expect("snapshot query");
                                    drop(snap);
                                    queries.fetch_add(1, Ordering::Relaxed);
                                }
                                let dt = t0.elapsed();
                                // Duty-cycle cap (~2% per reader): see doc
                                // comment — pace the arrivals so overhead
                                // measures interference, not CPU sharing.
                                // Idle control threads sleep the same
                                // ~100ms cadence a paced reader settles on.
                                let pause = if idle {
                                    std::time::Duration::from_millis(100)
                                } else {
                                    (dt * 49)
                                        .max(std::time::Duration::from_millis(2))
                                        .min(std::time::Duration::from_millis(250))
                                };
                                std::thread::sleep(pause);
                            }
                        });
                    }
                    // Release the readers even if an ingest batch panics —
                    // otherwise they spin forever and the bench hangs.
                    struct DoneGuard<'a>(&'a AtomicBool);
                    impl Drop for DoneGuard<'_> {
                        fn drop(&mut self) {
                            self.0.store(true, Ordering::Release);
                        }
                    }
                    let _guard = DoneGuard(done);
                    let start = Instant::now();
                    for chunk in changes.chunks(BATCH) {
                        a.apply_all(chunk).expect("ingest batch");
                    }
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    // Count queries inside the measured window only; the
                    // readers drain on their own after `done` flips.
                    (ms, queries.load(Ordering::Relaxed))
                });
                if ms < best_ms[ci] {
                    best_ms[ci] = ms;
                }
                let qps = answered as f64 / (ms / 1e3);
                if qps > best_qps[ci] {
                    best_qps[ci] = qps;
                }
            }
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&wal);
        }
    }
    let _ = std::fs::remove_dir(&dir);

    // Overhead of real readers is measured against the idle-thread
    // control (index 1): same thread structure, no MVCC work.
    let overhead = |ci: usize| 100.0 * (best_ms[ci] - best_ms[1]) / best_ms[1].max(1e-9);
    let sched_tax = 100.0 * (best_ms[1] - best_ms[0]) / best_ms[0].max(1e-9);
    let scaling = best_qps[3] / best_qps[2].max(1e-9);
    let mut out: Vec<Vec<String>> = reader_cfgs
        .iter()
        .enumerate()
        .map(|(ci, (label, _, idle))| {
            vec![
                (*label).to_string(),
                format!("{:.1}", best_ms[ci]),
                format!("{:.0}", rows as f64 / (best_ms[ci] / 1e3)),
                if ci < 2 {
                    "-".into()
                } else {
                    format!("{:.0}", best_qps[ci])
                },
                if ci == 0 {
                    "-".into()
                } else if *idle {
                    format!("{sched_tax:+.1}% vs 0r (sched tax)")
                } else {
                    format!("{:+.1}% vs control", overhead(ci))
                },
            ]
        })
        .collect();
    out.push(vec![
        "4r / 2r reader scaling".into(),
        "-".into(),
        "-".into(),
        format!("{scaling:.2}x"),
        "-".into(),
    ]);
    print_table(
        &format!(
            "Concurrent MVCC: {rows} hires at batch {BATCH} vs snapshot Q1 readers (best of {runs})"
        ),
        &[
            "config",
            "ingest ms",
            "writer rows/sec",
            "snapshot queries/sec",
            "writer overhead",
        ],
        &out,
    );
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"readers_0\": {{ \"ingest_ms\": {:.2}, \"rows_per_sec\": {:.1} }},\n  \"idle_2_control\": {{ \"ingest_ms\": {:.2}, \"rows_per_sec\": {:.1}, \"sched_tax_pct\": {sched_tax:.2} }},\n  \"readers_2\": {{ \"ingest_ms\": {:.2}, \"rows_per_sec\": {:.1}, \"snapshot_qps\": {:.1} }},\n  \"readers_4\": {{ \"ingest_ms\": {:.2}, \"rows_per_sec\": {:.1}, \"snapshot_qps\": {:.1} }},\n  \"writer_overhead_pct_2r\": {:.2},\n  \"writer_overhead_pct_4r\": {:.2},\n  \"reader_scaling_4r_over_2r\": {scaling:.2}\n}}\n",
        best_ms[0],
        rows as f64 / (best_ms[0] / 1e3),
        best_ms[1],
        rows as f64 / (best_ms[1] / 1e3),
        best_ms[2],
        rows as f64 / (best_ms[2] / 1e3),
        best_qps[2],
        best_ms[3],
        rows as f64 / (best_ms[3] / 1e3),
        best_qps[3],
        overhead(2),
        overhead(3),
    );
    // lint:allow(wal-discipline: benchmark report artifact, not database
    // state — BENCH_*.json summaries live outside the pager/WAL layer)
    if let Err(e) = std::fs::write("BENCH_concurrent.json", &json) {
        eprintln!("warning: could not write BENCH_concurrent.json: {e}");
    }
    out
}

/// Checksum/scrub microbenchmark: how fast the media scrub verifies a
/// real checkpointed ArchIS page file, and what the CRC-32 stamps add to
/// the scan hot path. Builds a file-backed database (employee history +
/// archived segments + compressed blocks, plus a dense 50k-row payload
/// table like the `scan` bench's), then measures
///
/// * the **media scrub** — `FilePager::read_page` over every slot, i.e.
///   exactly what `archis-fsck scrub` does,
/// * a **cold dense scan** of the payload table through the buffer pool
///   (each physical read verifies its page checksum on the way in), and
/// * a **pure CRC-32 pass** over the same page images in memory — the
///   isolated compute the stamps add per physically-read page.
///
/// The acceptance number is the CRC compute attributable to the scan's
/// physical reads as a share of the scan's wall time (target ≤ 5%).
/// Prints the table and writes `BENCH_scrub.json`.
pub fn scrub_bench(employees: usize, runs: usize) -> Vec<Vec<String>> {
    use relstore::pager::page_crc;
    use relstore::{
        DataType, Database, Field, FilePager, PageFileLayout, Pager, Schema, StorageKind, Value,
        PAGE_SIZE,
    };

    const DENSE_ROWS: usize = 50_000;
    let dir = std::env::temp_dir().join(format!("archis-scrub-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let path = dir.join("scrub.db");
    let wal = {
        let mut p = path.as_os_str().to_os_string();
        p.push(".wal");
        std::path::PathBuf::from(p)
    };
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);

    {
        let ops = dataset::generate(&base_config(employees));
        let changes: Vec<_> = ops.iter().map(op_to_change).collect();
        let mut a = ArchIS::open_file(&path, ArchConfig::db2_like().with_now(bench_now()))
            .expect("open file-backed archis");
        a.create_relation(RelationSpec::employee()).unwrap();
        a.apply_all(&changes).unwrap();
        a.force_archive("employee", ops.last().unwrap().at())
            .unwrap();
        a.compress_archived("employee").unwrap();
        a.checkpoint().unwrap();
    }
    {
        // The dense scan target, shaped like the `scan` bench's table.
        let db = Database::open_file(&path, 256).expect("reopen for dense load");
        let t = db
            .create_table(
                "scan_payload",
                Schema::new(vec![
                    Field::new("k", DataType::Int),
                    Field::new("payload", DataType::Str),
                ]),
                StorageKind::Heap,
                &[],
            )
            .unwrap();
        t.insert_all(
            (0..DENSE_ROWS as i64)
                .map(|i| vec![Value::Int(i), Value::Str(format!("payload-{i:08}"))]),
        )
        .unwrap();
        db.checkpoint().unwrap();
    }

    // Media scrub: verify every slot's checksum straight off the pager,
    // exactly the `archis-fsck scrub` read loop.
    let pager = FilePager::open(&path).expect("reopen page file");
    let pages = pager.num_pages();
    let mut scrub_ms = f64::MAX;
    for _ in 0..runs.max(1) {
        pager.reset_checksum_stats();
        let mut buf = [0u8; PAGE_SIZE];
        let start = Instant::now();
        for id in 0..pages {
            pager.read_page(id, &mut buf).expect("scrub read");
        }
        scrub_ms = scrub_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let (scrub_verified, scrub_failed) = pager.checksum_stats();
    drop(pager);

    // Pure CRC-32 pass over the same page images in memory: the isolated
    // compute the stamps add to each physical read.
    let bytes = std::fs::read(&path).expect("read page file");
    let layout = PageFileLayout::of_file(&path).expect("layout");
    let mut crc_ms = f64::MAX;
    let mut sink = 0u32;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        for id in 0..pages {
            let off = layout.slot_offset(id) as usize;
            sink ^= page_crc(id, &bytes[off..off + PAGE_SIZE]);
        }
        crc_ms = crc_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    std::hint::black_box(sink);
    let crc_us_per_page = crc_ms * 1e3 / pages as f64;

    // Cold dense scan through the buffer pool (pool far smaller than the
    // table so every page is a physical read, each verifying its stamp).
    let db = Database::open_file(&path, 64).expect("reopen database");
    let t = db.table("scan_payload").unwrap();
    let mut scan_ms = f64::MAX;
    let mut scanned_rows = 0usize;
    for _ in 0..runs.max(1) {
        db.pool().flush_all().unwrap();
        db.pool().reset_stats();
        let start = Instant::now();
        scanned_rows = 0;
        for r in t.stream().unwrap() {
            r.unwrap();
            scanned_rows += 1;
        }
        scan_ms = scan_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let stats = db.pool().stats();
    crate::iostat::record(stats.logical_reads, stats.physical_reads);
    crate::iostat::record_checksums(stats.checksum_verifications, stats.checksum_failures);
    drop(t);
    drop(db);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_dir(&dir);

    let scrub_pps = pages as f64 / (scrub_ms / 1e3).max(1e-9);
    let crc_mbps = (pages as f64 * PAGE_SIZE as f64 / 1e6) / (crc_ms / 1e3).max(1e-9);
    // CRC compute attributable to the scan's physical reads, as a share
    // of the scan's wall time: the stamps' overhead on the scan hot path.
    let scan_crc_ms = crc_us_per_page * stats.physical_reads as f64 / 1e3;
    let overhead_pct = 100.0 * scan_crc_ms / scan_ms.max(1e-9);
    let rows = vec![
        vec![
            "media scrub (read+verify)".into(),
            format!("{scrub_ms:.2}"),
            format!("{scrub_pps:.0} pages/s"),
        ],
        vec![
            "pure CRC-32 pass".into(),
            format!("{crc_ms:.2}"),
            format!("{crc_mbps:.0} MB/s"),
        ],
        vec![
            "cold dense scan".into(),
            format!("{scan_ms:.2}"),
            format!("{scanned_rows} rows / {} pages", stats.physical_reads),
        ],
        vec![
            "CRC share of scan".into(),
            format!("{scan_crc_ms:.2}"),
            format!("{overhead_pct:.2}%"),
        ],
    ];
    print_table(
        &format!(
            "Scrub/checksum microbench: {pages} pages, best of {runs} (target CRC share <= 5%)"
        ),
        &["pass", "ms", "rate"],
        &rows,
    );
    let json = format!(
        "{{\n  \"pages\": {pages},\n  \"scrub_ms\": {scrub_ms:.3},\n  \"scrub_pages_per_sec\": {scrub_pps:.0},\n  \"scrub_verified\": {scrub_verified},\n  \"scrub_failed\": {scrub_failed},\n  \"crc_pass_ms\": {crc_ms:.3},\n  \"crc_mb_per_sec\": {crc_mbps:.0},\n  \"crc_us_per_page\": {crc_us_per_page:.3},\n  \"dense_scan_ms\": {scan_ms:.3},\n  \"dense_scan_pages\": {},\n  \"crc_share_of_scan_pct\": {overhead_pct:.2}\n}}\n",
        stats.physical_reads
    );
    // lint:allow(wal-discipline: benchmark report artifact, not database
    // state — BENCH_*.json summaries live outside the pager/WAL layer)
    if let Err(e) = std::fs::write("BENCH_scrub.json", &json) {
        eprintln!("warning: could not write BENCH_scrub.json: {e}");
    }
    rows
}

/// An instance built to punish rule-based access-path choice:
///
/// * a **dead era** — everyone hired in 1985 is gone by 1990, but the
///   first archived segment's catalog interval stretches to 1994, so an
///   interval-only (rule) snapshot inside 1990–1994 scans the whole
///   segment while the statistics prove it holds nothing;
/// * a second archived generation (1995–1999) and a live tail (2000+), so
///   unselective range predicates (`id >= 0`, `segno >= 1`) span enough
///   rows that an index walk costs far more page requests than one
///   sequential pass.
fn adversarial_archis(employees: usize) -> ArchIS {
    use relstore::Value;
    use temporal::Date;
    let d = |s: &str| Date::parse(s).expect("valid bench date");
    let mut a = ArchIS::new(ArchConfig::db2_like().with_now(bench_now()));
    a.create_relation(RelationSpec::employee()).unwrap();
    let n = employees.max(8) as i64;
    let hire = |a: &ArchIS, id: i64, at: &str, salary: i64| {
        a.insert(
            "employee",
            id,
            vec![
                ("name".into(), Value::Str(format!("emp-{id:05}"))),
                ("salary".into(), Value::Int(salary)),
                ("title".into(), Value::Str("Engineer".into())),
                ("deptno".into(), Value::Str(format!("d{:02}", id % 10))),
            ],
            d(at),
        )
        .unwrap();
    };
    // First generation: hired 1985, raises through 1989, all gone by 1990.
    for id in 1..=n {
        hire(&a, id, "1985-03-01", 40_000 + id);
    }
    for year in 1986..=1989 {
        for id in 1..=n {
            a.update(
                "employee",
                id,
                vec![(
                    "salary".into(),
                    Value::Int(40_000 + id + (year - 1985) * 1_000),
                )],
                d(&format!("{year}-02-01")),
            )
            .unwrap();
        }
    }
    for id in 1..=n {
        a.delete("employee", id, d("1990-01-01")).unwrap();
    }
    // Archive well past the last death: segment 1's interval covers the
    // 1990-1994 era even though no row inside survives past 1989.
    a.force_archive("employee", d("1994-12-31")).unwrap();
    // Second generation: rehired 1995, raises through 1999, archived.
    for id in 1..=n {
        hire(&a, id + n, "1995-03-01", 60_000 + id);
    }
    for year in 1996..=1999 {
        for id in 1..=n {
            a.update(
                "employee",
                id + n,
                vec![(
                    "salary".into(),
                    Value::Int(60_000 + id + (year - 1995) * 1_000),
                )],
                d(&format!("{year}-02-01")),
            )
            .unwrap();
        }
    }
    a.force_archive("employee", d("1999-12-31")).unwrap();
    // A live tail so the LIVE segment is non-trivial.
    for id in 1..=n {
        a.update(
            "employee",
            id + n,
            vec![("salary".into(), Value::Int(70_000 + id))],
            d("2000-02-01"),
        )
        .unwrap();
    }
    a
}

/// Planner microbenchmark: Q1–Q6 plus four adversarial queries, each run
/// with the cost-based planner, with `ARCHIS_FORCE_PATH=rule` (the
/// pre-statistics hand-wired choice) and with `ARCHIS_FORCE_PATH=seq`
/// (every scan a full pass). The reported "pages" are buffer-pool
/// *logical* reads — a deterministic I/O proxy immune to machine noise —
/// and the cost-mode run also prints the EXPLAIN plan log with estimated
/// vs actual pages. Writes `BENCH_plan.json`; ci.sh gates on the minimum
/// rule/planner ratio over Q1–Q6 (≥ 0.95: the planner never loses to the
/// hand-wired choice) and over A1–A4 (≥ 2.0: it wins big where the rule
/// is wrong).
pub fn plan_bench(employees: usize, runs: usize) -> Vec<Vec<String>> {
    use relstore::planner::{explain, set_forced_path, take_plan_log, ForcedPath};

    let ops = dataset::generate(&base_config(employees));
    let probe = ops[0].id();
    let qs = BenchQuerySet::standard(probe);
    let standard = load_archis(ArchConfig::db2_like().with_now(bench_now()), &ops, true);
    let adv = adversarial_archis(employees);
    let mid = employees.max(8) as i64 + 4; // a second-generation, still-live id

    // (label, instance, query text, is_sql, adversarial)
    let a1 = q::q2_xquery(temporal::Date::from_ymd(1992, 6, 1).expect("valid"));
    let a2 = "select s.id, s.salary from employee_salary s where s.id >= 0".to_string();
    let a3 = "select s.id, s.salary from employee_salary s where s.segno >= 1".to_string();
    let a4 = format!(
        "select s.salary from employee_salary s where s.segno = {} and s.id = {mid}",
        archis::htable::LIVE_SEGNO
    );
    let mut queries: Vec<(&str, &ArchIS, &str, bool, bool)> = qs
        .all()
        .into_iter()
        .map(|(label, xq)| (label, &standard, xq, false, false))
        .collect();
    queries.push(("A1 dead-era snapshot", &adv, &a1, false, true));
    queries.push(("A2 id>=0 index trap", &adv, &a2, true, true));
    queries.push(("A3 segno>=1 range trap", &adv, &a3, true, true));
    queries.push(("A4 eq-order trap", &adv, &a4, true, true));

    let run_mode = |a: &ArchIS, text: &str, sql: bool, mode: Option<ForcedPath>| -> RunCost {
        set_forced_path(mode);
        let cost = median_of(runs, || {
            if sql {
                run_sql_cold(a, text)
            } else {
                run_archis_cold(a, text)
            }
        });
        set_forced_path(None);
        cost
    };

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut min_standard = f64::MAX;
    let mut min_adversarial = f64::MAX;
    for (label, a, text, sql, adversarial) in queries {
        // Cost-mode measurement plus exactly one logged run for EXPLAIN
        // (run_mode repeats `runs` times, which would sum the estimates).
        let planner = run_mode(a, text, sql, None);
        let _ = take_plan_log();
        let logged = if sql {
            run_sql_cold(a, text)
        } else {
            run_archis_cold(a, text)
        };
        let entries = take_plan_log();
        let est_pages: f64 = entries.iter().map(|e| e.est_pages).sum();
        println!("-- {label}\n{}", explain(&entries));
        set_forced_path(Some(ForcedPath::Rule));
        let _ = if sql {
            run_sql_cold(a, text)
        } else {
            run_archis_cold(a, text)
        };
        println!("-- {label} (rule)\n{}", explain(&take_plan_log()));
        let rule = run_mode(a, text, sql, Some(ForcedPath::Rule));
        let seq = run_mode(a, text, sql, Some(ForcedPath::Seq));
        let ratio = rule.logical_reads as f64 / (planner.logical_reads as f64).max(1.0);
        if adversarial {
            min_adversarial = min_adversarial.min(ratio);
        } else {
            min_standard = min_standard.min(ratio);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.2}", planner.ms()),
            planner.logical_reads.to_string(),
            format!("{est_pages:.1}"),
            logged.logical_reads.to_string(),
            rule.logical_reads.to_string(),
            seq.logical_reads.to_string(),
            format!("{ratio:.2}x"),
        ]);
        json_rows.push(format!(
            "    \"{}\": {{ \"planner_ms\": {:.3}, \"planner_pages\": {}, \"est_pages\": {:.1}, \"rule_ms\": {:.3}, \"rule_pages\": {}, \"seq_pages\": {}, \"ratio_rule_over_planner\": {:.3}, \"adversarial\": {} }}",
            label.split(' ').next().unwrap_or(label),
            planner.ms(),
            planner.logical_reads,
            est_pages,
            rule.ms(),
            rule.logical_reads,
            seq.logical_reads,
            ratio,
            adversarial,
        ));
    }
    print_table(
        "Planner: cost-based vs hand-wired rule vs forced seq (pages = logical reads)",
        &[
            "query",
            "planner ms",
            "planner pages",
            "est pages",
            "actual pages",
            "rule pages",
            "seq pages",
            "rule/planner",
        ],
        &rows,
    );
    let json = format!(
        "{{\n  \"employees\": {employees},\n  \"queries\": {{\n{}\n  }},\n  \"min_ratio_standard\": {min_standard:.3},\n  \"min_ratio_adversarial\": {min_adversarial:.3}\n}}\n",
        json_rows.join(",\n")
    );
    // lint:allow(wal-discipline: benchmark report artifact, not database
    // state — BENCH_*.json summaries live outside the pager/WAL layer)
    if let Err(e) = std::fs::write("BENCH_plan.json", &json) {
        eprintln!("warning: could not write BENCH_plan.json: {e}");
    }
    rows
}

/// Replication microbenchmark: how fast a cold replica catches up on a
/// shipped history, how far it trails a live batch-64 ingest when polled
/// once per batch, and how replica snapshot scans scale with readers.
/// All file-backed (real fsyncs on both ends: the primary ships what its
/// WAL made durable; the replica publishes commit-by-commit). Prints the
/// table and writes `BENCH_replica.json`; ci.sh gates on catch-up
/// throughput, post-poll lag, and reader scaling.
pub fn replication(rows: usize, runs: usize) -> Vec<Vec<String>> {
    use archis::Change;
    use relstore::Value;
    use replica::{LocalTransport, Primary, Replica, RetryPolicy};
    use temporal::Date;

    let dir = std::env::temp_dir().join(format!("archis-replica-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let ppath = dir.join("primary.db");
    let _ = std::fs::remove_file(&ppath);
    let _ = std::fs::remove_file(dir.join("primary.db.wal"));
    let _ = std::fs::remove_dir_all(dir.join("primary.db.ship"));

    // Same monotone 28-day-month hire calendar as the ingest bench.
    let at = |id: i64| {
        Date::from_ymd(
            1985 + (id / 336) as i32,
            1 + ((id % 336) / 28) as u32,
            1 + (id % 28) as u32,
        )
        .expect("valid bench date")
    };
    let change = |id: i64| Change::Insert {
        relation: "employee".into(),
        key: id,
        values: vec![
            ("name".into(), Value::Str(format!("employee-{id:06}"))),
            ("salary".into(), Value::Int(40_000 + id)),
            ("title".into(), Value::Str("Engineer".into())),
            ("deptno".into(), Value::Str(format!("d{:02}", id % 20))),
        ],
        at: at(id),
    };
    const BATCH: usize = 64;

    // Every batch flushes as one WAL commit unit — so shipped commits,
    // replica publishes, and the lag metric all count the same thing.
    let (primary, db) = Primary::open_file(&ppath, 512, relstore::WalConfig::with_group_commit(1))
        .expect("open shipping primary");
    let mut a = archis::ArchIS::open_with_database(db, ArchConfig::default())
        .expect("ArchIS over shipping primary");
    a.create_relation(archis::RelationSpec::employee()).unwrap();
    let history: Vec<Change> = (1..=rows as i64).map(change).collect();
    for chunk in history.chunks(BATCH) {
        a.apply_all(chunk).expect("primary ingest batch");
    }

    // --- Catch-up throughput: a cold replica replays the whole stream.
    let mut best_ms = f64::MAX;
    let mut pages = 0u64;
    let mut commits = 0u64;
    let mut last = None;
    for run in 0..runs.max(1) {
        let rpath = dir.join(format!("replica-r{run}.db"));
        for suffix in ["", ".wal", ".pos"] {
            let mut p = rpath.as_os_str().to_os_string();
            p.push(suffix);
            let _ = std::fs::remove_file(std::path::PathBuf::from(p));
        }
        let rep = Replica::open_file(
            &rpath,
            LocalTransport::new(primary.ship()),
            RetryPolicy::default(),
        )
        .expect("open cold replica");
        let start = Instant::now();
        let (mut p, mut c) = (0u64, 0u64);
        loop {
            let prog = rep.poll().expect("replica poll");
            p += prog.pages;
            c += prog.commits;
            if prog.at_head {
                break;
            }
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            pages = p;
            commits = c;
        }
        last = Some(rep);
    }
    let rep = last.expect("at least one catch-up run");
    let pages_per_sec = pages as f64 / (best_ms / 1e3);

    // --- Steady-state lag: batch-64 ingest continues on the primary;
    // the replica polls once per batch. Pre-poll lag is the window a
    // reader could be stale by between polls; post-poll lag is what one
    // pull leaves behind (0 unless a batch outgrew a single fetch).
    let more: Vec<Change> = (rows as i64 + 1..=rows as i64 + (rows / 4).max(BATCH) as i64)
        .map(change)
        .collect();
    let mut pre = Vec::new();
    let mut post = Vec::new();
    for chunk in more.chunks(BATCH) {
        a.apply_all(chunk).expect("primary steady batch");
        pre.push(rep.lag().expect("lag").commits as f64);
        while !rep.poll().expect("steady poll").at_head {}
        post.push(rep.lag().expect("lag").commits as f64);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0f64, f64::max);
    let (pre_mean, pre_max, post_max) = (mean(&pre), max(&pre), max(&post));

    // --- Snapshot-read scaling: pinned replica snapshots, one per
    // reader thread, each scanning the employee history.
    let scans_per_thread = 40usize;
    let mut scan_rows_per_sec = [0f64; 3];
    let thread_cfgs = [1usize, 2, 4];
    for (ci, &threads) in thread_cfgs.iter().enumerate() {
        let snaps: Vec<_> = (0..threads)
            .map(|_| rep.begin_snapshot().expect("replica snapshot"))
            .collect();
        let start = Instant::now();
        let scanned: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = snaps
                .iter()
                .map(|snap| {
                    s.spawn(move || {
                        let mut n = 0u64;
                        for _ in 0..scans_per_thread {
                            n += snap
                                .database()
                                .table("employee")
                                .expect("employee table")
                                .scan()
                                .expect("snapshot scan")
                                .len() as u64;
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("reader")).sum()
        });
        scan_rows_per_sec[ci] = scanned as f64 / start.elapsed().as_secs_f64();
    }
    let scaling = scan_rows_per_sec[2] / scan_rows_per_sec[0].max(1e-9);

    let out = vec![
        vec![
            "catch-up".to_string(),
            format!("{best_ms:.1} ms"),
            format!("{pages} pages / {commits} commits"),
            format!("{pages_per_sec:.0} pages/s"),
        ],
        vec![
            "steady lag (batch 64)".to_string(),
            format!("pre-poll mean {pre_mean:.2}"),
            format!("pre-poll max {pre_max:.0}"),
            format!("post-poll max {post_max:.0} commits"),
        ],
        vec![
            "snapshot scans".to_string(),
            format!("1r {:.0} rows/s", scan_rows_per_sec[0]),
            format!("4r {:.0} rows/s", scan_rows_per_sec[2]),
            format!("scaling {scaling:.2}x"),
        ],
    ];
    print_table(
        "replication: catch-up, steady-state lag, snapshot reads",
        &["metric", "", "", ""],
        &out,
    );
    // Gate-relevant scalars are duplicated as flat top-level keys so the
    // ci.sh awk extractors stay one-line (same style as the other BENCH
    // files).
    let json = format!(
        "{{\n  \"rows\": {rows},\n  \"catch_up\": {{ \"ms\": {best_ms:.2}, \"pages\": {pages}, \"commits\": {commits} }},\n  \"steady_lag\": {{ \"batches\": {}, \"pre_poll_mean_commits\": {pre_mean:.2}, \"pre_poll_max_commits\": {pre_max:.1} }},\n  \"snapshot_scan\": {{ \"replica_1r_rows_per_sec\": {:.1}, \"replica_2r_rows_per_sec\": {:.1}, \"replica_4r_rows_per_sec\": {:.1} }},\n  \"catch_up_pages_per_sec\": {pages_per_sec:.1},\n  \"post_poll_max_commits\": {post_max:.1},\n  \"scan_scaling_4r_over_1r\": {scaling:.2}\n}}\n",
        pre.len(),
        scan_rows_per_sec[0],
        scan_rows_per_sec[1],
        scan_rows_per_sec[2],
    );
    // lint:allow(wal-discipline: benchmark report artifact, not database
    // state — BENCH_*.json summaries live outside the pager/WAL layer)
    if let Err(e) = std::fs::write("BENCH_replica.json", &json) {
        eprintln!("warning: could not write BENCH_replica.json: {e}");
    }
    drop(rep);
    drop(a);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests: each experiment runs end-to-end at a tiny scale.
    #[test]
    fn fig7_runs() {
        let rows = fig7(12);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            let ratio: f64 = r[2].parse().unwrap();
            let bound: f64 = r[3].parse().unwrap();
            assert!(
                ratio <= bound + 0.35,
                "ratio {ratio} far above bound {bound}"
            );
            assert!(ratio >= 1.0, "segmentation never shrinks data");
        }
    }

    #[test]
    fn fig8_runs_and_archis_wins_snapshots() {
        let rows = fig8(12, 1);
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn translate_cost_is_small() {
        let rows = translate_cost(8);
        for r in &rows {
            let us: f64 = r[1].parse().unwrap();
            assert!(us < 5_000.0, "{} took {us}µs", r[0]);
        }
    }

    #[test]
    fn fig9_fig10_fig11_run() {
        assert_eq!(fig9(10, 1).len(), 6);
        assert_eq!(fig10(6, 1).len(), 6);
        let f11 = fig11(10);
        assert_eq!(f11.len(), 3);
        // Tamino compresses below 1.0 of the H-doc.
        let tamino_ratio: f64 = f11[0][1].parse().unwrap();
        assert!(tamino_ratio < 1.0);
    }

    #[test]
    fn fig13_compression_shrinks_storage() {
        // Needs a non-trivial scale: at tiny data sizes the per-attribute
        // blob/segrange table floor (one page each) dominates.
        let rows = fig13(40);
        let db2: f64 = rows[2][1].parse().unwrap();
        let f11 = fig11(40);
        let db2_uncompressed: f64 = f11[1][1].parse().unwrap();
        assert!(
            db2 < db2_uncompressed,
            "BlockZIP must shrink ArchIS storage: {db2} vs {db2_uncompressed}"
        );
    }

    #[test]
    fn fig14_and_updates_run() {
        let f14 = fig14(10, 1);
        assert_eq!(f14.len(), 6);
        // Warm reruns must be served out of the decompressed-block cache:
        // at smoke scale every block a query touches fits, so the hit-rate
        // column reads 1.00 for all of Q1–Q6.
        for r in &f14 {
            let hit_rate: f64 = r[6].parse().unwrap();
            assert!(
                hit_rate >= 0.99,
                "{}: warm cache hit rate only {hit_rate}",
                r[0]
            );
        }
        let rows = updates(10);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn ingest_rewards_batching() {
        let rows = ingest(96, 1);
        assert_eq!(rows.len(), 4);
        for r in &rows[..3] {
            let rps: f64 = r[2].parse().unwrap();
            assert!(rps > 0.0, "{}: nonpositive throughput", r[0]);
        }
        // Loose bound for debug builds / fast disks; the release run
        // recorded in BENCH_ingest.json is held to the ≥5x target by CI.
        let speedup: f64 = rows[3][2].trim_end_matches('x').parse().unwrap();
        assert!(
            speedup >= 1.2,
            "batched ingest only {speedup}x over row-at-a-time"
        );
        let _ = std::fs::remove_file("BENCH_ingest.json");
    }

    #[test]
    fn streaming_scan_terminates_early_and_wins() {
        let rows = scan_streaming(20_000, 3);
        assert_eq!(rows.len(), 11);
        let s_phys: u64 = rows[0][3].parse().unwrap();
        let m_phys: u64 = rows[1][3].parse().unwrap();
        assert!(
            s_phys * 10 < m_phys,
            "take(5) must fault far fewer pages than a drain: {s_phys} vs {m_phys}"
        );
        let speedup: f64 = rows[4][1].trim_end_matches('x').parse().unwrap();
        assert!(speedup >= 2.0, "early termination only {speedup}x faster");
        // Prefetch must actually fire on the cold wide scans; the timing
        // gate (≥1.5x) applies to the release run recorded in
        // BENCH_scan.json, not this debug smoke run.
        let hits: u64 = rows[6][2]
            .trim_end_matches(" hits")
            .parse()
            .expect("prefetch hits cell");
        assert!(hits > 0, "cold wide scans produced no prefetch hits");
        let pf: f64 = rows[7][1].trim_end_matches('x').parse().unwrap();
        assert!(pf.is_finite() && pf > 0.0, "prefetch ratio not sane: {pf}");
        let wb: f64 = rows[10][1].trim_end_matches('x').parse().unwrap();
        assert!(wb.is_finite() && wb > 0.0, "writeback ratio not sane: {wb}");
        let _ = std::fs::remove_file("BENCH_scan.json");
    }

    #[test]
    fn plan_bench_never_loses_and_wins_adversarial() {
        let rows = plan_bench(12, 1);
        assert_eq!(rows.len(), 10, "Q1-Q6 plus A1-A4");
        // At toy scale the stats-catalog reads (a dozen pages) are a
        // visible fraction of query I/O; the release run in ci.sh holds
        // the >= 0.95 line at scale 100 where they amortize.
        for r in &rows {
            let ratio: f64 = r[7].trim_end_matches('x').parse().unwrap();
            assert!(
                ratio >= 0.75,
                "{}: planner loses to the hand-wired rule ({ratio}x)",
                r[0]
            );
        }
        // The adversarial rows must show a decisive win even at smoke
        // scale (the release gate in ci.sh demands >= 2.0 too).
        for r in &rows[6..] {
            let ratio: f64 = r[7].trim_end_matches('x').parse().unwrap();
            assert!(
                ratio >= 2.0,
                "{}: adversarial win only {ratio}x over the rule",
                r[0]
            );
        }
        // EXPLAIN estimates must exist for the planner runs.
        for r in &rows {
            let est: f64 = r[3].parse().unwrap();
            assert!(est >= 0.0, "{}: no estimate recorded", r[0]);
        }
        let _ = std::fs::remove_file("BENCH_plan.json");
    }

    #[test]
    fn scrub_bench_runs_and_checksums_hold() {
        let rows = scrub_bench(20, 1);
        assert_eq!(rows.len(), 4);
        // A pristine checkpointed file must verify with zero failures.
        let (verified, failed) = crate::iostat::take_checksums();
        assert!(verified > 0, "cold scan verified no pages");
        assert_eq!(failed, 0, "pristine file reported checksum failures");
        let pct: f64 = rows[3][2].trim_end_matches('%').parse().unwrap();
        assert!(pct.is_finite() && pct >= 0.0);
        let _ = std::fs::remove_file("BENCH_scrub.json");
    }

    #[test]
    fn commit_throughput_rewards_group_commit() {
        let rows = commit_throughput(96, 1);
        assert_eq!(rows.len(), 7);
        for r in &rows[..5] {
            let cps: f64 = r[2].parse().unwrap();
            assert!(cps > 0.0, "{}: nonpositive throughput", r[0]);
        }
        // Loose bound for debug builds / fast disks; the release run
        // recorded in BENCH_commit.json is held to the ≥5x target.
        let speedup: f64 = rows[5][2].trim_end_matches('x').parse().unwrap();
        assert!(
            speedup >= 1.2,
            "group commit only {speedup}x over fsync-per-commit"
        );
        // Pipelining must at least produce a sane, positive ratio here;
        // the release run in BENCH_commit.json is held to ≥1.3x by CI.
        let pipe: f64 = rows[6][2].trim_end_matches('x').parse().unwrap();
        assert!(
            pipe.is_finite() && pipe > 0.0,
            "pipelined-64 ratio not sane: {pipe}"
        );
        let _ = std::fs::remove_file("BENCH_commit.json");
    }
}
