//! The employee temporal workload generator.
//!
//! The paper evaluates on the TimeCenter *employee temporal data set*,
//! which "models the history of employees over 17 years, and simulates the
//! increases of salaries, changes of titles, and changes of departments".
//! That data set is distributed as a generator, so this crate implements an
//! equivalent one: a seeded, deterministic stream of hire / raise / title /
//! department / termination events over a configurable horizon and
//! population. The benchmark harness replays the stream through ArchIS
//! (trigger or log mode) and through the native XML database.
//!
//! ```
//! use dataset::{DatasetConfig, Op};
//! let ops = dataset::generate(&DatasetConfig { employees: 50, ..Default::default() });
//! assert!(matches!(ops[0], Op::Hire { .. }));
//! // Deterministic: same seed, same stream.
//! let again = dataset::generate(&DatasetConfig { employees: 50, ..Default::default() });
//! assert_eq!(ops.len(), again.len());
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temporal::Date;

/// One event in the employee history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A new employee.
    Hire {
        /// Employee id (stable key).
        id: i64,
        /// Name.
        name: String,
        /// Starting salary.
        salary: i64,
        /// Starting title.
        title: String,
        /// Starting department.
        deptno: String,
        /// Hire date.
        at: Date,
    },
    /// A salary change.
    Raise {
        /// Employee id.
        id: i64,
        /// New salary.
        salary: i64,
        /// Effective date.
        at: Date,
    },
    /// A title change.
    TitleChange {
        /// Employee id.
        id: i64,
        /// New title.
        title: String,
        /// Effective date.
        at: Date,
    },
    /// A department change.
    DeptChange {
        /// Employee id.
        id: i64,
        /// New department.
        deptno: String,
        /// Effective date.
        at: Date,
    },
    /// Termination.
    Leave {
        /// Employee id.
        id: i64,
        /// Last day + 1 (transaction date).
        at: Date,
    },
}

impl Op {
    /// The event date.
    pub fn at(&self) -> Date {
        match self {
            Op::Hire { at, .. }
            | Op::Raise { at, .. }
            | Op::TitleChange { at, .. }
            | Op::DeptChange { at, .. }
            | Op::Leave { at, .. } => *at,
        }
    }

    /// The employee the event concerns.
    pub fn id(&self) -> i64 {
        match self {
            Op::Hire { id, .. }
            | Op::Raise { id, .. }
            | Op::TitleChange { id, .. }
            | Op::DeptChange { id, .. }
            | Op::Leave { id, .. } => *id,
        }
    }
}

/// Generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Employees hired in year one (the population then grows slowly).
    pub employees: usize,
    /// First day of the history.
    pub start: Date,
    /// Horizon in years (the paper's data set covers 17).
    pub years: u32,
    /// Departments (`d001`, `d002`, ...).
    pub departments: usize,
    /// Yearly probability of a title change.
    pub title_change_prob: f64,
    /// Yearly probability of a department change.
    pub dept_change_prob: f64,
    /// Yearly attrition probability.
    pub attrition_prob: f64,
    /// Yearly growth of the workforce (fraction of initial size hired).
    pub growth: f64,
    /// RNG seed (same seed ⇒ identical stream).
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            employees: 100,
            start: Date::from_ymd(1985, 1, 1).expect("valid"),
            years: 17,
            departments: 9,
            title_change_prob: 0.25,
            dept_change_prob: 0.2,
            attrition_prob: 0.05,
            growth: 0.04,
            seed: 42,
        }
    }
}

const TITLES: &[&str] = &[
    "Engineer",
    "Sr Engineer",
    "TechLeader",
    "Manager",
    "Sr Manager",
    "Staff",
    "Sr Staff",
    "Assistant",
];

const FIRST: &[&str] = &[
    "Bob", "Alice", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi", "Ivan", "Judy", "Ken",
    "Lena", "Mallory", "Niaj", "Olivia", "Peggy", "Quent", "Rupert", "Sybil", "Trent",
];

const LAST: &[&str] = &[
    "Smith", "Jones", "Chen", "Garcia", "Patel", "Kim", "Okafor", "Novak", "Silva", "Dubois",
    "Ivanov", "Tanaka", "Olsen", "Russo", "Kaur", "Weber",
];

/// Generate the event stream, ordered by date (ties by employee id).
pub fn generate(config: &DatasetConfig) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut ops: Vec<Op> = Vec::new();
    let mut next_id: i64 = 100_001;
    // (id, hire anniversary day-of-year offset, salary, title idx, dept, active)
    struct Emp {
        id: i64,
        salary: i64,
        title: usize,
        dept: usize,
        active: bool,
    }
    let mut emps: Vec<Emp> = Vec::new();
    let year_days = 365;

    let mut hire = |rng: &mut StdRng, ops: &mut Vec<Op>, emps: &mut Vec<Emp>, at: Date| {
        let id = next_id;
        next_id += 1;
        let salary = 30_000 + rng.gen_range(0..400) * 100;
        let title = rng.gen_range(0..TITLES.len().min(3)); // start junior-ish
        let dept = rng.gen_range(0..config.departments.max(1));
        let name = format!(
            "{} {}",
            FIRST[rng.gen_range(0..FIRST.len())],
            LAST[rng.gen_range(0..LAST.len())]
        );
        ops.push(Op::Hire {
            id,
            name,
            salary,
            title: TITLES[title].to_string(),
            deptno: format!("d{:03}", dept + 1),
            at,
        });
        emps.push(Emp {
            id,
            salary,
            title,
            dept,
            active: true,
        });
    };

    // Year 0: the initial population, hired through the year.
    for _ in 0..config.employees {
        let day = config.start + rng.gen_range(0..year_days);
        hire(&mut rng, &mut ops, &mut emps, day);
    }

    for year in 1..config.years {
        let year_start = config.start + (year as i32) * year_days;
        // Growth hires.
        let hires = ((config.employees as f64) * config.growth).round() as usize;
        for _ in 0..hires {
            let day = year_start + rng.gen_range(0..year_days);
            hire(&mut rng, &mut ops, &mut emps, day);
        }
        for e in emps.iter_mut() {
            if !e.active {
                continue;
            }
            // Attrition.
            if rng.gen_bool(config.attrition_prob) {
                let day = year_start + rng.gen_range(0..year_days);
                ops.push(Op::Leave { id: e.id, at: day });
                e.active = false;
                continue;
            }
            // Annual raise (2–9%), rounded to a new distinct value.
            let pct = rng.gen_range(2..10) as f64 / 100.0;
            let new_salary = ((e.salary as f64) * (1.0 + pct)).round() as i64;
            if new_salary != e.salary {
                e.salary = new_salary;
                let day = year_start + rng.gen_range(0..year_days);
                ops.push(Op::Raise {
                    id: e.id,
                    salary: e.salary,
                    at: day,
                });
            }
            // Title change.
            if rng.gen_bool(config.title_change_prob) {
                let next = (e.title + 1).min(TITLES.len() - 1);
                if next != e.title {
                    e.title = next;
                    let day = year_start + rng.gen_range(0..year_days);
                    ops.push(Op::TitleChange {
                        id: e.id,
                        title: TITLES[e.title].to_string(),
                        at: day,
                    });
                }
            }
            // Department change.
            if config.departments > 1 && rng.gen_bool(config.dept_change_prob) {
                let mut next = rng.gen_range(0..config.departments);
                if next == e.dept {
                    next = (next + 1) % config.departments;
                }
                e.dept = next;
                let day = year_start + rng.gen_range(0..year_days);
                ops.push(Op::DeptChange {
                    id: e.id,
                    deptno: format!("d{:03}", e.dept + 1),
                    at: day,
                });
            }
        }
    }
    // Order by date; a hire must precede same-day events of the same
    // employee, so break ties with (id, hire-first).
    ops.sort_by_key(|op| (op.at(), op.id(), !matches!(op, Op::Hire { .. })));
    // Drop events that race their own hire/leave on the same day in the
    // wrong order (rare with daily granularity): keep the stream replayable.
    sanitize(ops)
}

/// Remove events that would not replay (before hire, after leave, same-day
/// duplicates on one attribute).
fn sanitize(ops: Vec<Op>) -> Vec<Op> {
    use std::collections::HashMap;
    #[derive(Default, Clone)]
    struct S {
        hired: Option<Date>,
        left: Option<Date>,
        last_raise: Option<Date>,
        last_title: Option<Date>,
        last_dept: Option<Date>,
    }
    let mut state: HashMap<i64, S> = HashMap::new();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let s = state.entry(op.id()).or_default();
        let alive =
            |s: &S, at: Date| s.hired.is_some_and(|h| h <= at) && s.left.is_none_or(|l| at < l);
        match &op {
            Op::Hire { at, .. } => {
                if s.hired.is_some() {
                    continue;
                }
                s.hired = Some(*at);
                out.push(op);
            }
            Op::Raise { at, .. } => {
                if !alive(s, *at) || s.last_raise == Some(*at) || s.hired == Some(*at) {
                    continue;
                }
                s.last_raise = Some(*at);
                out.push(op);
            }
            Op::TitleChange { at, .. } => {
                if !alive(s, *at) || s.last_title == Some(*at) || s.hired == Some(*at) {
                    continue;
                }
                s.last_title = Some(*at);
                out.push(op);
            }
            Op::DeptChange { at, .. } => {
                if !alive(s, *at) || s.last_dept == Some(*at) || s.hired == Some(*at) {
                    continue;
                }
                s.last_dept = Some(*at);
                out.push(op);
            }
            Op::Leave { at, .. } => {
                if !alive(s, *at) {
                    continue;
                }
                s.left = Some(*at);
                out.push(op);
            }
        }
    }
    out
}

/// Summary statistics of a stream (used by benches to report workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Hires.
    pub hires: usize,
    /// Salary changes.
    pub raises: usize,
    /// Title changes.
    pub title_changes: usize,
    /// Department changes.
    pub dept_changes: usize,
    /// Terminations.
    pub leaves: usize,
}

/// Compute [`StreamStats`].
pub fn stats(ops: &[Op]) -> StreamStats {
    let mut s = StreamStats::default();
    for op in ops {
        match op {
            Op::Hire { .. } => s.hires += 1,
            Op::Raise { .. } => s.raises += 1,
            Op::TitleChange { .. } => s.title_changes += 1,
            Op::DeptChange { .. } => s.dept_changes += 1,
            Op::Leave { .. } => s.leaves += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> DatasetConfig {
        DatasetConfig {
            employees: 40,
            years: 10,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a, b);
        let c = generate(&DatasetConfig { seed: 8, ..small() });
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_date_ordered() {
        let ops = generate(&small());
        for w in ops.windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }

    #[test]
    fn stream_replays_consistently() {
        // Every op references a hired, not-yet-left employee; no same-day
        // duplicate changes of one attribute.
        let ops = generate(&small());
        let mut hired: HashMap<i64, Date> = HashMap::new();
        let mut left: HashMap<i64, Date> = HashMap::new();
        for op in &ops {
            match op {
                Op::Hire { id, at, .. } => {
                    assert!(!hired.contains_key(id), "double hire of {id}");
                    hired.insert(*id, *at);
                }
                Op::Leave { id, at } => {
                    assert!(hired[id] <= *at);
                    assert!(!left.contains_key(id), "double leave of {id}");
                    left.insert(*id, *at);
                }
                other => {
                    let id = other.id();
                    assert!(hired[&id] < other.at(), "op before hire for {id}");
                    if let Some(l) = left.get(&id) {
                        assert!(other.at() < *l, "op after leave for {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn workload_shape_matches_paper() {
        // 17 years, raises dominate (yearly), title/dept changes sparser.
        let ops = generate(&DatasetConfig::default());
        let s = stats(&ops);
        assert!(s.hires >= 100);
        assert!(s.raises > s.title_changes);
        assert!(s.raises > s.dept_changes);
        assert!(
            s.raises as f64 > s.hires as f64 * 5.0,
            "many raises over 17 years"
        );
        assert!(s.leaves > 0);
        // Horizon respected.
        let last = ops.iter().map(Op::at).max().unwrap();
        assert!(last < Date::from_ymd(1985, 1, 1).unwrap() + 17 * 365);
    }

    #[test]
    fn scaling_the_population_scales_the_stream() {
        let small_n = generate(&DatasetConfig {
            employees: 50,
            ..Default::default()
        })
        .len();
        let big_n = generate(&DatasetConfig {
            employees: 350,
            ..Default::default()
        })
        .len();
        let ratio = big_n as f64 / small_n as f64;
        assert!(
            (5.0..=9.0).contains(&ratio),
            "7x population should give roughly 7x events, got {ratio:.1}"
        );
    }

    #[test]
    fn salaries_are_positive_and_rising_on_average() {
        let ops = generate(&small());
        let mut last: HashMap<i64, i64> = HashMap::new();
        let mut ups = 0usize;
        let mut downs = 0usize;
        for op in &ops {
            match op {
                Op::Hire { id, salary, .. } => {
                    assert!(*salary > 0);
                    last.insert(*id, *salary);
                }
                Op::Raise { id, salary, .. } => {
                    if *salary > last[id] {
                        ups += 1;
                    } else {
                        downs += 1;
                    }
                    last.insert(*id, *salary);
                }
                _ => {}
            }
        }
        assert!(ups > downs * 10, "raises go up: {ups} vs {downs}");
    }
}
