//! Property tests: SQL execution against reference (in-Rust) semantics on
//! random data, for both storage layouts.

use proptest::prelude::*;
use relstore::expr::FnRegistry;
use relstore::{DataType, Database, Field, Schema, StorageKind, Value};
use std::sync::Arc;

fn fns() -> Arc<FnRegistry> {
    Arc::new(FnRegistry::new())
}

fn setup(rows: &[(i64, i64)], kind: StorageKind) -> Database {
    let db = Database::in_memory();
    let t = db
        .create_table(
            "t",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
            ]),
            kind,
            &["k"],
        )
        .unwrap();
    t.create_index("t_by_k", &["k"]).unwrap();
    for (k, v) in rows {
        t.insert(vec![Value::Int(*k), Value::Int(*v)]).unwrap();
    }
    db
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..30, -100i64..100), 0..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn range_filters_match_reference(rows in arb_rows(), lo in 0i64..30, hi in 0i64..30) {
        for kind in [StorageKind::Heap, StorageKind::Clustered] {
            let db = setup(&rows, kind);
            let sql = format!("select t.v from t where t.k >= {lo} and t.k < {hi}");
            let mut got: Vec<i64> = sqlxml::execute(&db, &sql, &fns())
                .unwrap()
                .scalar_rows()
                .unwrap()
                .iter()
                .map(|r| r[0].as_int().unwrap())
                .collect();
            let mut want: Vec<i64> = rows
                .iter()
                .filter(|(k, _)| *k >= lo && *k < hi)
                .map(|(_, v)| *v)
                .collect();
            got.sort();
            want.sort();
            prop_assert_eq!(got, want, "kind {:?}", kind);
        }
    }

    #[test]
    fn group_by_aggregates_match_reference(rows in arb_rows()) {
        let db = setup(&rows, StorageKind::Heap);
        let out = sqlxml::execute(
            &db,
            "select t.k, count(*), sum(t.v), min(t.v), max(t.v) from t group by t.k order by t.k",
            &fns(),
        )
        .unwrap()
        .scalar_rows()
        .unwrap();
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for (k, v) in &rows {
            groups.entry(*k).or_default().push(*v);
        }
        prop_assert_eq!(out.len(), groups.len());
        for (row, (k, vs)) in out.iter().zip(groups.iter()) {
            prop_assert_eq!(row[0].as_int().unwrap(), *k);
            prop_assert_eq!(row[1].as_int().unwrap(), vs.len() as i64);
            prop_assert_eq!(row[2].as_int().unwrap(), vs.iter().sum::<i64>());
            prop_assert_eq!(row[3].as_int().unwrap(), *vs.iter().min().unwrap());
            prop_assert_eq!(row[4].as_int().unwrap(), *vs.iter().max().unwrap());
        }
    }

    #[test]
    fn count_distinct_matches_reference(rows in arb_rows()) {
        let db = setup(&rows, StorageKind::Heap);
        let out = sqlxml::execute(&db, "select count(distinct t.v) from t", &fns())
            .unwrap()
            .scalar_rows()
            .unwrap();
        let distinct: std::collections::HashSet<i64> = rows.iter().map(|(_, v)| *v).collect();
        prop_assert_eq!(out[0][0].as_int().unwrap(), distinct.len() as i64);
    }

    #[test]
    fn self_join_matches_reference(rows in arb_rows()) {
        let db = setup(&rows, StorageKind::Heap);
        let out = sqlxml::execute(
            &db,
            "select a.v, b.v from t a, t b where a.k = b.k",
            &fns(),
        )
        .unwrap();
        let mut expected = 0usize;
        for (k1, _) in &rows {
            for (k2, _) in &rows {
                if k1 == k2 {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(out.rows.len(), expected);
    }

    #[test]
    fn xmlagg_orders_and_counts(rows in arb_rows()) {
        let db = setup(&rows, StorageKind::Heap);
        let out = sqlxml::execute(
            &db,
            r#"select XMLElement(Name "all", XMLAgg(XMLElement(Name "v", t.v))) from t"#,
            &fns(),
        )
        .unwrap();
        let xml = out.xml_fragments().join("");
        let opens = xml.matches("<v>").count() + xml.matches("<v/>").count();
        prop_assert_eq!(opens, rows.len());
    }
}
