//! Planner and executor for SQL/XML selects.
//!
//! Planning mirrors what the paper relies on from DB2 / ATLaS:
//!
//! 1. WHERE conjuncts referencing one table are pushed below the join;
//!    bounded indexed columns become access-path candidates that
//!    [`relstore::planner`] costs against a sequential scan using the
//!    per-segment statistics catalog (the paper's `segno = sn` segment
//!    restriction, §6.3, rides in as a candidate bound; set
//!    `ARCHIS_FORCE_PATH` to pin or A/B the decision),
//! 2. equality join conditions (`N.id = T.id`) execute as sort-merge
//!    joins — "very fast (in linear time) since every table is already
//!    sorted on its id attribute" (§5.3),
//! 3. the select list is evaluated per row, or per group when `GROUP BY`
//!    or aggregates are present; `XMLElement` / `XMLAgg` construct XML
//!    inside the engine.

use crate::parser::{parse_sql, SelectStmt, SqlExpr};
use crate::{Result, SqlError};
use relstore::exec::{AggSpec, Executor, Filter, NestedLoopJoin, Row, SeqScan, SortMergeJoin};
use relstore::expr::{BinOp, Expr, FnRegistry};
use relstore::planner;
use relstore::value::{DataType, Field, Value};
use relstore::{Database, Table};
use std::collections::HashMap;
use std::ops::Bound;
use std::sync::Arc;

/// A half-open composite-key interval as the index/cluster scans take it.
type KeyRange = (Bound<Vec<Value>>, Bound<Vec<Value>>);
use temporal::Date;
use xmldom::{Element, Node};

/// A value produced by the select list: relational or XML.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// A plain SQL value.
    Rel(Value),
    /// An XML forest (one or more nodes).
    Xml(Vec<Node>),
}

impl SqlValue {
    /// The relational value, or an error for XML.
    pub fn rel(&self) -> Result<&Value> {
        match self {
            SqlValue::Rel(v) => Ok(v),
            SqlValue::Xml(_) => Err(SqlError::Xml("expected a scalar, found XML".into())),
        }
    }

    /// Serialize: XML as markup, scalars via `Display`.
    pub fn render(&self) -> String {
        match self {
            SqlValue::Rel(v) => v.to_string(),
            SqlValue::Xml(nodes) => nodes.iter().map(Node::to_xml).collect::<String>(),
        }
    }
}

/// The result of a select: column names plus rows of [`SqlValue`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<SqlValue>>,
}

impl QueryResult {
    /// All XML values, serialized, row-major (the published document
    /// fragments of an SQL/XML query).
    pub fn xml_fragments(&self) -> Vec<String> {
        let mut out = Vec::new();
        for row in &self.rows {
            for v in row {
                if let SqlValue::Xml(nodes) = v {
                    for n in nodes {
                        out.push(n.to_xml());
                    }
                }
            }
        }
        out
    }

    /// Rows as plain values (errors if any cell is XML).
    pub fn scalar_rows(&self) -> Result<Vec<Vec<Value>>> {
        self.rows
            .iter()
            .map(|r| r.iter().map(|v| v.rel().cloned()).collect())
            .collect()
    }
}

/// Parse and execute a select against `db`.
pub fn execute(db: &Database, sql: &str, fns: &Arc<FnRegistry>) -> Result<QueryResult> {
    let stmt = parse_sql(sql)?;
    execute_stmt(db, &stmt, fns)
}

/// Execute a parsed select.
pub fn execute_stmt(
    db: &Database,
    stmt: &SelectStmt,
    fns: &Arc<FnRegistry>,
) -> Result<QueryResult> {
    execute_stmt_with(db, stmt, fns, &HashMap::new())
}

/// Execute with **scan overrides**: tables named in `overrides` read the
/// supplied rows instead of their base storage (predicates are applied on
/// top; index selection is skipped). This is how ArchIS plugs in its
/// uncompression table functions (paper §8.2: "user-defined uncompression
/// table functions are used to extract records from each BLOB") — the
/// caller materializes live + decompressed rows for the referenced
/// history tables.
pub fn execute_stmt_with(
    db: &Database,
    stmt: &SelectStmt,
    fns: &Arc<FnRegistry>,
    overrides: &HashMap<String, Vec<Row>>,
) -> Result<QueryResult> {
    let scope = Scope::build(db, stmt)?;
    let exec = run_from_where(db, stmt, &scope, fns, overrides)?;
    project(stmt, &scope, exec, fns)
}

/// Name-resolution scope: the concatenated schema of the FROM tables.
struct Scope {
    /// `(alias, field)` in row order.
    fields: Vec<(String, Field)>,
    /// alias → (start offset, arity).
    tables: HashMap<String, (usize, usize)>,
}

impl Scope {
    fn build(db: &Database, stmt: &SelectStmt) -> Result<Scope> {
        let mut fields = Vec::new();
        let mut tables = HashMap::new();
        for (tname, alias) in &stmt.from {
            let t = db.table(tname)?;
            if tables.contains_key(alias) {
                return Err(SqlError::Unresolved(format!("duplicate alias {alias}")));
            }
            let start = fields.len();
            for f in &t.schema().fields {
                fields.push((alias.clone(), f.clone()));
            }
            tables.insert(alias.clone(), (start, t.schema().arity()));
        }
        Ok(Scope { fields, tables })
    }

    /// Resolve a column reference to its row offset.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let hits: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, (a, f))| f.name == name && qualifier.is_none_or(|q| q == a))
            .map(|(i, _)| i)
            .collect();
        match hits.len() {
            1 => Ok(hits[0]),
            0 => Err(SqlError::Unresolved(format!(
                "column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            _ => Err(SqlError::Unresolved(format!("ambiguous column {name}"))),
        }
    }

    fn dtype(&self, idx: usize) -> DataType {
        self.fields[idx].1.dtype
    }

    /// Aliases referenced by an expression.
    fn aliases_in(&self, e: &SqlExpr, out: &mut Vec<String>) -> Result<()> {
        match e {
            SqlExpr::Col { qualifier, name } => {
                let idx = self.resolve(qualifier.as_deref(), name)?;
                let alias = self.fields[idx].0.clone();
                if !out.contains(&alias) {
                    out.push(alias);
                }
            }
            SqlExpr::Lit(_) => {}
            SqlExpr::Bin(_, l, r) => {
                self.aliases_in(l, out)?;
                self.aliases_in(r, out)?;
            }
            SqlExpr::Un(_, x) => self.aliases_in(x, out)?,
            SqlExpr::Call(_, args) => {
                for a in args {
                    self.aliases_in(a, out)?;
                }
            }
            SqlExpr::Agg(_, a, _) | SqlExpr::AggDistinct(_, a) => self.aliases_in(a, out)?,
            SqlExpr::XmlAgg(a) => self.aliases_in(a, out)?,
            SqlExpr::XmlElement { attrs, content, .. } => {
                for (_, a) in attrs {
                    self.aliases_in(a, out)?;
                }
                for c in content {
                    self.aliases_in(c, out)?;
                }
            }
        }
        Ok(())
    }
}

/// Compile a scalar SqlExpr to a relstore row expression over the scope
/// (with an optional column offset shift for single-table compilation).
fn compile(e: &SqlExpr, scope: &Scope, shift: usize) -> Result<Expr> {
    Ok(match e {
        SqlExpr::Lit(v) => Expr::Lit(v.clone()),
        SqlExpr::Col { qualifier, name } => {
            let idx = scope.resolve(qualifier.as_deref(), name)?;
            Expr::Col(idx - shift)
        }
        SqlExpr::Bin(op, l, r) => {
            // Coerce date-typed comparisons with string literals.
            let (l2, r2) = coerce_dates(op, l, r, scope);
            Expr::Bin(
                *op,
                Box::new(compile(&l2, scope, shift)?),
                Box::new(compile(&r2, scope, shift)?),
            )
        }
        SqlExpr::Un(op, x) => Expr::Un(*op, Box::new(compile(x, scope, shift)?)),
        SqlExpr::Call(name, args) => {
            let compiled = args
                .iter()
                .map(|a| compile(a, scope, shift))
                .collect::<Result<Vec<_>>>()?;
            Expr::Call(name.clone(), compiled)
        }
        SqlExpr::Agg(..)
        | SqlExpr::AggDistinct(..)
        | SqlExpr::XmlAgg(..)
        | SqlExpr::XmlElement { .. } => {
            return Err(SqlError::Xml(
                "aggregates and XML constructors are only allowed in the select list".into(),
            ))
        }
    })
}

/// Rewrite `typed_col <op> 'literal'` so string literals compared against
/// Date or Int columns become typed values (SQL string literals are the
/// only literal form the paper's translated queries use for dates).
fn coerce_dates(op: &BinOp, l: &SqlExpr, r: &SqlExpr, scope: &Scope) -> (SqlExpr, SqlExpr) {
    if !matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    ) {
        return (l.clone(), r.clone());
    }
    let col_type = |e: &SqlExpr| -> Option<DataType> {
        if let SqlExpr::Col { qualifier, name } = e {
            if let Ok(idx) = scope.resolve(qualifier.as_deref(), name) {
                return Some(scope.dtype(idx));
            }
        }
        None
    };
    let coerce = |e: &SqlExpr, ty: DataType| -> Option<SqlExpr> {
        if let SqlExpr::Lit(Value::Str(s)) = e {
            match ty {
                DataType::Date => Date::parse(s).ok().map(|d| SqlExpr::Lit(Value::Date(d))),
                DataType::Int => s
                    .trim()
                    .parse::<i64>()
                    .ok()
                    .map(|i| SqlExpr::Lit(Value::Int(i))),
                _ => None,
            }
        } else {
            None
        }
    };
    if let Some(ty) = col_type(l) {
        if let Some(r2) = coerce(r, ty) {
            return (l.clone(), r2);
        }
    }
    if let Some(ty) = col_type(r) {
        if let Some(l2) = coerce(l, ty) {
            return (l2, r.clone());
        }
    }
    (l.clone(), r.clone())
}

/// Split a condition into AND-connected conjuncts.
fn conjuncts(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    if let SqlExpr::Bin(BinOp::And, l, r) = e {
        conjuncts(l, out);
        conjuncts(r, out);
    } else {
        out.push(e.clone());
    }
}

/// Run FROM + WHERE, returning a streaming executor of joined rows over
/// the scope's schema. Single-table plans stream all the way from the
/// base scan; joins materialize inside the join operators as before.
fn run_from_where(
    db: &Database,
    stmt: &SelectStmt,
    scope: &Scope,
    fns: &Arc<FnRegistry>,
    overrides: &HashMap<String, Vec<Row>>,
) -> Result<Executor> {
    let mut table_preds: HashMap<String, Vec<SqlExpr>> = HashMap::new();
    let mut join_conds: Vec<(String, String, SqlExpr)> = Vec::new();
    let mut residual: Vec<SqlExpr> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        let mut cs = Vec::new();
        conjuncts(w, &mut cs);
        for c in cs {
            let mut aliases = Vec::new();
            scope.aliases_in(&c, &mut aliases)?;
            match aliases.len() {
                0 | 1 => {
                    let key = aliases
                        .first()
                        .cloned()
                        .unwrap_or_else(|| stmt.from[0].1.clone());
                    table_preds.entry(key).or_default().push(c);
                }
                2 if is_col_eq_col(&c) => {
                    join_conds.push((aliases[0].clone(), aliases[1].clone(), c));
                }
                _ => residual.push(c),
            }
        }
    }

    // Per-table access paths (streaming executors).
    let mut sources: HashMap<String, Executor> = HashMap::new();
    for (tname, alias) in &stmt.from {
        let t = db.table(tname)?;
        let preds = table_preds.remove(alias).unwrap_or_default();
        let exec = match overrides.get(tname) {
            Some(provided) => filter_rows(provided.clone(), alias, &preds, scope, fns)?,
            None => scan_table(db, &t, alias, &preds, scope, fns)?,
        };
        sources.insert(alias.clone(), exec);
    }

    // Left-deep joins in FROM order.
    let mut joined: Option<Executor> = None;
    let mut joined_aliases: Vec<String> = Vec::new();
    for (i, (_tname, alias)) in stmt.from.iter().enumerate() {
        let right_exec = sources.remove(alias).expect("scanned above");
        if i == 0 {
            joined = Some(right_exec);
            joined_aliases.push(alias.clone());
            continue;
        }
        // Find an equality join condition connecting `alias` to the set.
        let mut key_pair: Option<(usize, usize)> = None;
        let mut used = usize::MAX;
        for (ci, (a1, a2, cond)) in join_conds.iter().enumerate() {
            let connects = (joined_aliases.contains(a1) && a2 == alias)
                || (joined_aliases.contains(a2) && a1 == alias);
            if !connects {
                continue;
            }
            if let SqlExpr::Bin(BinOp::Eq, l, r) = cond {
                let li = col_index(l, scope)?;
                let ri = col_index(r, scope)?;
                // Which side belongs to the new table?
                let (left_idx, right_idx) = if scope.fields[li].0 == *alias {
                    (ri, li)
                } else {
                    (li, ri)
                };
                let right_off = scope.tables[alias].0;
                key_pair = Some((left_idx, right_idx - right_off));
                used = ci;
                break;
            }
        }
        let left_exec: Executor = joined.take().expect("first table seeds the join");
        let out: Executor = if let Some((lk, rk)) = key_pair {
            join_conds.remove(used);
            Box::new(SortMergeJoin::new(left_exec, right_exec, lk, rk))
        } else {
            // Cross / theta join with any conds that connect now.
            let mut conds = Vec::new();
            let mut keep = Vec::new();
            for (a1, a2, cond) in join_conds.drain(..) {
                let connects = (joined_aliases.contains(&a1) && a2 == *alias)
                    || (joined_aliases.contains(&a2) && a1 == *alias);
                if connects {
                    conds.push(cond);
                } else {
                    keep.push((a1, a2, cond));
                }
            }
            join_conds = keep;
            // NB: the right table's columns sit at their scope offsets only
            // if FROM order matches scope order, which it does.
            let cond_expr = if conds.is_empty() {
                Expr::Lit(Value::Int(1))
            } else {
                let compiled = conds
                    .iter()
                    .map(|c| compile(c, scope, 0))
                    .collect::<Result<Vec<_>>>()?;
                Expr::and_all(compiled)
            };
            Box::new(NestedLoopJoin::new(
                left_exec,
                right_exec,
                cond_expr,
                fns.clone(),
            ))
        };
        joined = Some(out);
        joined_aliases.push(alias.clone());
    }
    let mut result: Executor = joined.unwrap_or_else(|| Box::new(SeqScan::from_rows(Vec::new())));

    // Residual predicates (multi-table non-equi, or join conds that never
    // connected — e.g. a condition between tables 1 and 3 joined crosswise).
    let mut residual_all = residual;
    residual_all.extend(join_conds.into_iter().map(|(_, _, c)| c));
    if !residual_all.is_empty() {
        let compiled = residual_all
            .iter()
            .map(|c| compile(c, scope, 0))
            .collect::<Result<Vec<_>>>()?;
        let pred = Expr::and_all(compiled);
        result = Box::new(Filter::new(result, pred, fns.clone()));
    }
    Ok(result)
}

fn is_col_eq_col(e: &SqlExpr) -> bool {
    matches!(
        e,
        SqlExpr::Bin(BinOp::Eq, l, r)
            if matches!(**l, SqlExpr::Col { .. }) && matches!(**r, SqlExpr::Col { .. })
    )
}

fn col_index(e: &SqlExpr, scope: &Scope) -> Result<usize> {
    match e {
        SqlExpr::Col { qualifier, name } => scope.resolve(qualifier.as_deref(), name),
        _ => Err(SqlError::Unresolved("expected a column".into())),
    }
}

/// Apply pushed-down predicates to already-materialized rows (the scan
/// path for override-provided tables).
fn filter_rows(
    rows: Vec<Row>,
    alias: &str,
    preds: &[SqlExpr],
    scope: &Scope,
    fns: &Arc<FnRegistry>,
) -> Result<Executor> {
    let base: Executor = Box::new(SeqScan::from_rows(rows));
    if preds.is_empty() {
        return Ok(base);
    }
    let (offset, _arity) = scope.tables[alias];
    let compiled = preds
        .iter()
        .map(|p| compile(p, scope, offset))
        .collect::<Result<Vec<_>>>()?;
    let pred = Expr::and_all(compiled);
    Ok(Box::new(Filter::new(base, pred, fns.clone())))
}

/// Scan one table with pushed-down predicates.
///
/// Every bounded indexed (or cluster-leading) column becomes a
/// [`planner::ScanCandidate`]; [`planner::choose_path`] costs them against
/// a sequential scan using the table's per-segment statistics and records
/// the decision in the EXPLAIN plan log. Returns a streaming executor:
/// base scans pull pages on demand, so a downstream LIMIT stops the scan
/// early.
fn scan_table(
    db: &Database,
    table: &Table,
    alias: &str,
    preds: &[SqlExpr],
    scope: &Scope,
    fns: &Arc<FnRegistry>,
) -> Result<Executor> {
    let (offset, _arity) = scope.tables[alias];
    // Collect bounds per indexable column, in first-appearance order (the
    // old fixed rule's tie-break order, which `ARCHIS_FORCE_PATH=rule`
    // reproduces).
    let mut bounded: Vec<(String, Vec<(BinOp, Value)>)> = Vec::new();
    for p in preds {
        if let SqlExpr::Bin(op, l, r) = p {
            if !matches!(
                op,
                BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) {
                continue;
            }
            // Normalize literal-side.
            let (l2, r2) = coerce_dates(op, l, r, scope);
            let (col, op, lit) = match (&l2, &r2) {
                (SqlExpr::Col { name, .. }, SqlExpr::Lit(v)) => (name.clone(), *op, v.clone()),
                (SqlExpr::Lit(v), SqlExpr::Col { name, .. }) => {
                    (name.clone(), flip(*op), v.clone())
                }
                _ => continue,
            };
            if table.index_on(&col).is_none() {
                continue;
            }
            match bounded.iter_mut().find(|(c, _)| *c == col) {
                Some((_, bounds)) => bounds.push((op, lit)),
                None => bounded.push((col, vec![(op, lit)])),
            }
        }
    }
    // Turn each bounded column into a planner candidate with merged bounds.
    let cluster_lead = if table.kind() == relstore::StorageKind::Clustered {
        table.cluster_columns().first().cloned()
    } else {
        None
    };
    let mut candidates: Vec<planner::ScanCandidate> = Vec::new();
    let mut ranges: Vec<KeyRange> = Vec::new();
    for (col, bounds) in bounded {
        let mut lo: Bound<Vec<Value>> = Bound::Unbounded;
        let mut hi: Bound<Vec<Value>> = Bound::Unbounded;
        let mut eq = false;
        for (op, v) in bounds {
            match op {
                BinOp::Eq => {
                    eq = true;
                    lo = Bound::Included(vec![v.clone()]);
                    hi = Bound::Included(vec![v]);
                }
                BinOp::Ge => lo = tighten_lo(lo, Bound::Included(vec![v])),
                BinOp::Gt => lo = tighten_lo(lo, Bound::Excluded(vec![v])),
                BinOp::Le => hi = tighten_hi(hi, Bound::Included(vec![v])),
                BinOp::Lt => hi = tighten_hi(hi, Bound::Excluded(vec![v])),
                _ => {}
            }
        }
        // On a clustered table whose leading cluster column is the bounded
        // column, range-scanning the primary B+tree beats per-row point
        // fetches through a secondary index (this is why the paper's
        // segment restriction pays off on ATLaS/BerkeleyDB).
        let kind = if cluster_lead.as_deref() == Some(col.as_str()) {
            planner::PathKind::Cluster
        } else {
            planner::PathKind::Index
        };
        candidates.push(planner::ScanCandidate {
            kind,
            index: table.index_on(&col),
            column: col,
            eq,
            lo: single_bound(&lo),
            hi: single_bound(&hi),
        });
        ranges.push((lo, hi));
    }

    let profile = planner::TableProfile::of(db, table);
    let choice = planner::choose_path(&profile, &candidates);
    let base: Executor = match choice.candidate {
        None => relstore::exec::build_scan(
            table,
            planner::PathKind::Seq,
            None,
            Bound::Unbounded,
            Bound::Unbounded,
        )?,
        Some(i) => {
            let (lo, hi) = &ranges[i];
            let cand = &candidates[i];
            if cand.kind == planner::PathKind::Cluster {
                match parallel_cluster_scan(table, lo, hi)? {
                    Some(rows) => Box::new(SeqScan::from_rows(rows)),
                    None => relstore::exec::build_scan(
                        table,
                        planner::PathKind::Cluster,
                        None,
                        as_slice(lo),
                        as_slice(hi),
                    )?,
                }
            } else {
                relstore::exec::build_scan(
                    table,
                    planner::PathKind::Index,
                    cand.index.as_deref(),
                    as_slice(lo),
                    as_slice(hi),
                )?
            }
        }
    };
    // Apply ALL pushed predicates (the access-path bound is a superset
    // filter; re-checking is cheap and keeps correctness independent of
    // planning).
    if preds.is_empty() {
        return Ok(base);
    }
    let compiled = preds
        .iter()
        .map(|p| compile(p, scope, offset))
        .collect::<Result<Vec<_>>>()?;
    let pred = Expr::and_all(compiled);
    Ok(Box::new(Filter::new(base, pred, fns.clone())))
}

/// First element of a composite bound (candidates bound one column).
fn single_bound(b: &Bound<Vec<Value>>) -> Bound<Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => v
            .first()
            .map_or(Bound::Unbounded, |x| Bound::Included(x.clone())),
        Bound::Excluded(v) => v
            .first()
            .map_or(Bound::Unbounded, |x| Bound::Excluded(x.clone())),
    }
}

/// Fan a multi-segment cluster-range scan across threads.
///
/// The translator's segment restriction (`segno >= lo and segno <= hi`,
/// paper §6.3) bounds the leading cluster column to a small set of
/// integers. Each segment occupies a contiguous cluster-key range, so
/// scanning every segment in its own thread and concatenating the results
/// in ascending segment order is byte-identical to the sequential primary
/// range scan. Returns `None` (caller falls back to the sequential scan)
/// unless both bounds are inclusive integers spanning 2..=64 segments and
/// [`relstore::parallel`] is enabled.
fn parallel_cluster_scan(
    table: &Table,
    lo: &Bound<Vec<Value>>,
    hi: &Bound<Vec<Value>>,
) -> Result<Option<Vec<Row>>> {
    if !relstore::parallel::parallel_scans_enabled() {
        return Ok(None);
    }
    let one_int = |b: &Bound<Vec<Value>>| -> Option<i64> {
        match b {
            Bound::Included(v) => match v.as_slice() {
                [Value::Int(i)] => Some(*i),
                _ => None,
            },
            _ => None,
        }
    };
    let (Some(a), Some(b)) = (one_int(lo), one_int(hi)) else {
        return Ok(None);
    };
    if !(a < b && b - a < 64) {
        return Ok(None); // single segment or implausibly wide range
    }
    let segnos: Vec<i64> = (a..=b).collect();
    let results: Vec<relstore::Result<Vec<Row>>> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = segnos
            .iter()
            .map(|&sn| {
                s.spawn(move |_| {
                    let key = [Value::Int(sn)];
                    // lint:allow(planner-routed: reached only from scan_table
                    // after choose_path picked the clustered range; this is
                    // the parallel executor for that chosen plan)
                    table.cluster_range(Bound::Included(&key[..]), Bound::Included(&key[..]))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("segment scan thread panicked"))
            .collect()
    })
    .expect("scoped segment scan threads");
    let mut out = Vec::new();
    for r in results {
        out.extend(r?);
    }
    Ok(Some(out))
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn tighten_lo(a: Bound<Vec<Value>>, b: Bound<Vec<Value>>) -> Bound<Vec<Value>> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x[0].total_cmp(&y[0]) {
                std::cmp::Ordering::Less => b,
                std::cmp::Ordering::Greater => a,
                std::cmp::Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn tighten_hi(a: Bound<Vec<Value>>, b: Bound<Vec<Value>>) -> Bound<Vec<Value>> {
    match (&a, &b) {
        (Bound::Unbounded, _) => b,
        (_, Bound::Unbounded) => a,
        (Bound::Included(x) | Bound::Excluded(x), Bound::Included(y) | Bound::Excluded(y)) => {
            match x[0].total_cmp(&y[0]) {
                std::cmp::Ordering::Greater => b,
                std::cmp::Ordering::Less => a,
                std::cmp::Ordering::Equal => {
                    if matches!(a, Bound::Excluded(_)) {
                        a
                    } else {
                        b
                    }
                }
            }
        }
    }
}

fn as_slice(b: &Bound<Vec<Value>>) -> Bound<&[Value]> {
    match b {
        Bound::Included(v) => Bound::Included(v.as_slice()),
        Bound::Excluded(v) => Bound::Excluded(v.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

// ---------------------------------------------------------------------------
// Projection: per-row / per-group select-list evaluation with XML support
// ---------------------------------------------------------------------------

fn project(
    stmt: &SelectStmt,
    scope: &Scope,
    input: Executor,
    fns: &Arc<FnRegistry>,
) -> Result<QueryResult> {
    let grouped = !stmt.group_by.is_empty() || stmt.items.iter().any(|i| i.expr.has_aggregate());
    let columns: Vec<String> = stmt
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            item.alias.clone().unwrap_or_else(|| match &item.expr {
                SqlExpr::Col { name, .. } => name.clone(),
                SqlExpr::XmlElement { name, .. } => name.clone(),
                _ => format!("col{}", i + 1),
            })
        })
        .collect();

    // LIMIT without grouping or ordering can stop pulling from the pipeline
    // as soon as enough rows have arrived — with streaming scans underneath,
    // this bounds physical I/O by the limit, not the table size.
    let rows: Vec<Row> = if !grouped && stmt.order_by.is_empty() {
        match stmt.limit {
            Some(n) => input.take(n).collect::<relstore::Result<Vec<Row>>>()?,
            None => input.collect::<relstore::Result<Vec<Row>>>()?,
        }
    } else {
        input.collect::<relstore::Result<Vec<Row>>>()?
    };

    let groups: Vec<Vec<Row>> = if grouped {
        if stmt.group_by.is_empty() {
            vec![rows] // single global group (kept even when empty)
        } else {
            let keys = stmt
                .group_by
                .iter()
                .map(|g| compile(g, scope, 0))
                .collect::<Result<Vec<_>>>()?;
            let mut index: HashMap<String, usize> = HashMap::new();
            let mut out: Vec<Vec<Row>> = Vec::new();
            for row in rows {
                let kv = keys
                    .iter()
                    .map(|k| k.eval(&row, fns))
                    .collect::<relstore::Result<Vec<_>>>()?;
                let fp = format!("{kv:?}");
                let gi = *index.entry(fp).or_insert_with(|| {
                    out.push(Vec::new());
                    out.len() - 1
                });
                out[gi].push(row);
            }
            out
        }
    } else {
        rows.into_iter().map(|r| vec![r]).collect()
    };

    let mut out_rows = Vec::with_capacity(groups.len());
    let mut order_keys: Vec<Vec<Value>> = Vec::with_capacity(groups.len());
    for group in &groups {
        if group.is_empty() && !stmt.group_by.is_empty() {
            continue;
        }
        let mut row_out = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            row_out.push(eval_item(&item.expr, group, scope, fns)?);
        }
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for (e, _) in &stmt.order_by {
                match eval_item(e, group, scope, fns)? {
                    SqlValue::Rel(v) => keys.push(v),
                    SqlValue::Xml(_) => {
                        return Err(SqlError::Xml("cannot ORDER BY an XML value".into()))
                    }
                }
            }
            order_keys.push(keys);
        }
        out_rows.push(row_out);
    }

    if !stmt.order_by.is_empty() {
        let mut idx: Vec<usize> = (0..out_rows.len()).collect();
        idx.sort_by(|&a, &b| {
            for (k, (_, asc)) in stmt.order_by.iter().enumerate() {
                let ord = order_keys[a][k].total_cmp(&order_keys[b][k]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        out_rows = idx.into_iter().map(|i| out_rows[i].clone()).collect();
    }
    if let Some(n) = stmt.limit {
        out_rows.truncate(n);
    }
    Ok(QueryResult {
        columns,
        rows: out_rows,
    })
}

/// Evaluate one select item over a group of rows. Scalar leaves read the
/// first row; aggregates fold over all rows.
fn eval_item(e: &SqlExpr, group: &[Row], scope: &Scope, fns: &Arc<FnRegistry>) -> Result<SqlValue> {
    match e {
        SqlExpr::Agg(func, arg, _star) => {
            let compiled = compile(arg, scope, 0)?;
            let spec = AggSpec {
                func: *func,
                arg: compiled,
            };
            let agg = relstore::exec::GroupAggregate::new(
                Box::new(SeqScan::from_rows(group.to_vec())),
                vec![],
                vec![spec],
                fns.clone(),
            )
            .collect::<relstore::Result<Vec<Row>>>()?;
            Ok(SqlValue::Rel(agg[0][0].clone()))
        }
        SqlExpr::AggDistinct(func, arg) => {
            let compiled = compile(arg, scope, 0)?;
            // Deduplicate argument values, then aggregate the survivors.
            let mut seen: Vec<Value> = Vec::new();
            for row in group {
                let v = compiled.eval(row, fns).map_err(SqlError::from)?;
                if v.is_null() {
                    continue;
                }
                if !seen
                    .iter()
                    .any(|s| s.total_cmp(&v) == std::cmp::Ordering::Equal)
                {
                    seen.push(v);
                }
            }
            let distinct_rows: Vec<Row> = seen.into_iter().map(|v| vec![v]).collect();
            let spec = AggSpec {
                func: *func,
                arg: Expr::Col(0),
            };
            let agg = relstore::exec::GroupAggregate::new(
                Box::new(SeqScan::from_rows(distinct_rows)),
                vec![],
                vec![spec],
                fns.clone(),
            )
            .collect::<relstore::Result<Vec<Row>>>()?;
            Ok(SqlValue::Rel(agg[0][0].clone()))
        }
        SqlExpr::XmlAgg(arg) => {
            let mut nodes = Vec::new();
            for row in group {
                match eval_item(arg, std::slice::from_ref(row), scope, fns)? {
                    SqlValue::Xml(ns) => nodes.extend(ns),
                    SqlValue::Rel(Value::Null) => {}
                    SqlValue::Rel(v) => nodes.push(Node::Text(v.to_string())),
                }
            }
            Ok(SqlValue::Xml(nodes))
        }
        SqlExpr::XmlElement {
            name,
            attrs,
            content,
        } => {
            let mut elem = Element::new(name.clone());
            for (aname, aexpr) in attrs {
                match eval_item(aexpr, group, scope, fns)? {
                    SqlValue::Rel(Value::Null) => {} // NULL attrs omitted
                    SqlValue::Rel(v) => elem.set_attr(aname.clone(), v.to_string()),
                    SqlValue::Xml(_) => {
                        return Err(SqlError::Xml("attribute value cannot be XML".into()))
                    }
                }
            }
            for c in content {
                match eval_item(c, group, scope, fns)? {
                    SqlValue::Rel(Value::Null) => {}
                    SqlValue::Rel(v) => elem.children.push(Node::Text(v.to_string())),
                    SqlValue::Xml(ns) => elem.children.extend(ns),
                }
            }
            Ok(SqlValue::Xml(vec![Node::Element(elem)]))
        }
        // Scalar expressions: evaluate over the group's first row (SQL
        // requires these to be grouping columns; we follow SQLite in not
        // enforcing that).
        _ => {
            let compiled = compile(e, scope, 0)?;
            let row: &[Value] = group.first().map(|r| r.as_slice()).unwrap_or(&[]);
            let v = compiled.eval(row, fns).map_err(SqlError::from)?;
            Ok(SqlValue::Rel(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::value::{DataType, Field, Schema};
    use relstore::StorageKind;

    fn fns() -> Arc<FnRegistry> {
        Arc::new(FnRegistry::new())
    }

    fn d(s: &str) -> Value {
        Value::Date(Date::parse(s).unwrap())
    }

    /// The paper's H-table fixture: employee_name + employee_title.
    fn setup() -> Database {
        let db = Database::in_memory();
        let name = db
            .create_table(
                "employee_name",
                Schema::new(vec![
                    Field::new("id", DataType::Int),
                    Field::new("name", DataType::Str),
                    Field::new("tstart", DataType::Date),
                    Field::new("tend", DataType::Date),
                ]),
                StorageKind::Heap,
                &[],
            )
            .unwrap();
        name.create_index("emp_name_id", &["id"]).unwrap();
        let title = db
            .create_table(
                "employee_title",
                Schema::new(vec![
                    Field::new("id", DataType::Int),
                    Field::new("title", DataType::Str),
                    Field::new("tstart", DataType::Date),
                    Field::new("tend", DataType::Date),
                ]),
                StorageKind::Heap,
                &[],
            )
            .unwrap();
        title.create_index("emp_title_id", &["id"]).unwrap();
        name.insert(vec![
            Value::Int(1001),
            Value::Str("Bob".into()),
            d("1995-01-01"),
            d("9999-12-31"),
        ])
        .unwrap();
        name.insert(vec![
            Value::Int(1002),
            Value::Str("Alice".into()),
            d("1994-03-01"),
            d("1996-06-30"),
        ])
        .unwrap();
        title
            .insert(vec![
                Value::Int(1001),
                Value::Str("Engineer".into()),
                d("1995-01-01"),
                d("1995-09-30"),
            ])
            .unwrap();
        title
            .insert(vec![
                Value::Int(1001),
                Value::Str("Sr Engineer".into()),
                d("1995-10-01"),
                d("9999-12-31"),
            ])
            .unwrap();
        title
            .insert(vec![
                Value::Int(1002),
                Value::Str("Manager".into()),
                d("1994-03-01"),
                d("1996-06-30"),
            ])
            .unwrap();
        db
    }

    #[test]
    fn paper_query1_translation_executes() {
        let db = setup();
        let out = execute(
            &db,
            r#"select XMLElement (Name "title_history",
                   XMLAgg (XMLElement (Name "title",
                       XMLAttributes (T.tstart as "tstart", T.tend as "tend"), T.title)))
               from employee_title as T, employee_name as N
               where N.id = T.id and N.name = "Bob"
               group by N.id"#,
            &fns(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        let xml = out.xml_fragments().join("");
        assert_eq!(
            xml,
            "<title_history>\
             <title tstart=\"1995-01-01\" tend=\"1995-09-30\">Engineer</title>\
             <title tstart=\"1995-10-01\" tend=\"9999-12-31\">Sr Engineer</title>\
             </title_history>"
        );
    }

    #[test]
    fn paper_new_employees_example() {
        // The §5.3 example: employees hired after a date.
        let db = setup();
        let out = execute(
            &db,
            r#"select XMLElement (Name "new_employees",
                   XMLAttributes ("1995-01-01" as "start"),
                   XMLAgg (XMLElement (Name "employee", e.name)))
               from employee_name as e
               where e.tstart >= "1995-01-01""#,
            &fns(),
        )
        .unwrap();
        assert_eq!(
            out.xml_fragments().join(""),
            r#"<new_employees start="1995-01-01"><employee>Bob</employee></new_employees>"#
        );
    }

    #[test]
    fn plain_select_with_index_range() {
        let db = setup();
        let out = execute(
            &db,
            "select t.title from employee_title t where t.id = 1001",
            &fns(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 2);
        let vals = out.scalar_rows().unwrap();
        assert_eq!(vals[0][0], Value::Str("Engineer".into()));
    }

    #[test]
    fn date_coercion_in_where() {
        let db = setup();
        // Snapshot predicate with string literals against Date columns.
        let out = execute(
            &db,
            "select t.title from employee_title t \
             where t.tstart <= '1995-05-06' and t.tend >= '1995-05-06'",
            &fns(),
        )
        .unwrap();
        let titles: Vec<String> = out
            .scalar_rows()
            .unwrap()
            .into_iter()
            .map(|r| r[0].to_string())
            .collect();
        assert_eq!(titles, vec!["Engineer".to_string(), "Manager".to_string()]);
    }

    #[test]
    fn sort_merge_join_on_ids() {
        let db = setup();
        let out = execute(
            &db,
            "select n.name, t.title from employee_name n, employee_title t \
             where n.id = t.id order by t.tstart",
            &fns(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn group_by_with_plain_aggregates() {
        let db = setup();
        let out = execute(
            &db,
            "select t.id, count(*), min(t.tstart) from employee_title t group by t.id \
             order by t.id",
            &fns(),
        )
        .unwrap();
        let rows = out.scalar_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::Int(2));
        assert_eq!(rows[1][1], Value::Int(1));
        assert_eq!(rows[0][2], d("1995-01-01"));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let db = setup();
        let out = execute(
            &db,
            "select count(*), avg(n.id) from employee_name n",
            &fns(),
        )
        .unwrap();
        let rows = out.scalar_rows().unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2), Value::Double(1001.5)]]);
    }

    #[test]
    fn scalar_udf_in_where() {
        let db = setup();
        let mut reg = FnRegistry::new();
        reg.register("is_senior", |args| {
            Ok(Value::Int(
                args[0].as_str().map_or(0, |s| s.starts_with("Sr") as i64),
            ))
        });
        let out = execute(
            &db,
            "select t.title from employee_title t where is_senior(t.title)",
            &Arc::new(reg),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn unresolved_names_error() {
        let db = setup();
        assert!(matches!(
            execute(&db, "select nope from employee_name n", &fns()),
            Err(SqlError::Unresolved(_))
        ));
        assert!(matches!(
            execute(&db, "select n.id from missing n", &fns()),
            Err(SqlError::Exec(_))
        ));
        // Ambiguous column.
        assert!(matches!(
            execute(
                &db,
                "select tstart from employee_name a, employee_title b where a.id = b.id",
                &fns()
            ),
            Err(SqlError::Unresolved(_))
        ));
    }

    #[test]
    fn xml_in_where_is_rejected() {
        let db = setup();
        assert!(matches!(
            execute(
                &db,
                r#"select n.id from employee_name n where XMLElement(Name "x") = 1"#,
                &fns()
            ),
            Err(SqlError::Xml(_))
        ));
    }

    #[test]
    fn limit_and_order() {
        let db = setup();
        let out = execute(
            &db,
            "select t.title from employee_title t order by t.title limit 2",
            &fns(),
        )
        .unwrap();
        let titles: Vec<String> = out
            .scalar_rows()
            .unwrap()
            .into_iter()
            .map(|r| r[0].to_string())
            .collect();
        assert_eq!(titles, vec!["Engineer".to_string(), "Manager".to_string()]);
    }

    #[test]
    fn empty_group_yields_empty_xmlagg() {
        let db = setup();
        let out = execute(
            &db,
            r#"select XMLElement(Name "all", XMLAgg(XMLElement(Name "t", t.title)))
               from employee_title t where t.id = 9999"#,
            &fns(),
        )
        .unwrap();
        assert_eq!(out.xml_fragments().join(""), "<all/>");
    }
}
